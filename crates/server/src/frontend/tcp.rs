//! The TCP listener, connection handlers, and the bounded line reader.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use ecm::StreamEvent;

use crate::config::ServerConfig;
use crate::engine::{Engine, EngineError};
use crate::protocol::{
    parse_command, parse_data_line, response, wire_view_def, CmdError, Command, MAX_LINE,
};

/// Why [`Server::start`] failed.
#[derive(Debug)]
pub enum StartError {
    /// The engine could not start (bad spec/config, failed restore).
    Engine(EngineError),
    /// The listener socket could not be bound.
    Io(std::io::Error),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Engine(e) => write!(f, "engine start failed: {e}"),
            StartError::Io(e) => write!(f, "listener bind failed: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<EngineError> for StartError {
    fn from(e: EngineError) -> Self {
        StartError::Engine(e)
    }
}

impl From<std::io::Error> for StartError {
    fn from(e: std::io::Error) -> Self {
        StartError::Io(e)
    }
}

/// Lock a registry mutex, recovering from poison: the guarded state is a
/// plain registry (socket map, join-handle list) whose invariants hold
/// after any partial mutation, so a handler that panicked while holding
/// the lock must not cascade into every `.lock().expect(..)` taking down
/// the acceptor and all healthy connections.
fn registry<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// State shared between the acceptor, the connection handlers and the
/// [`Server`] handle.
struct Shared {
    stop: AtomicBool,
    active: AtomicUsize,
    next_id: AtomicU64,
    /// Socket clones of live connections, so shutdown can unblock handler
    /// threads stuck in a read.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    max_connections: usize,
    read_timeout: Duration,
    write_timeout: Duration,
}

/// A running `sketchd` instance: an engine plus a TCP acceptor.
///
/// Stops when a client sends `SHUTDOWN`, or programmatically via
/// [`Server::stop`]; [`Server::join`] then waits for the acceptor and all
/// connection handlers to exit.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind the listen socket, start the engine (restoring from the
    /// snapshot directory if it holds a manifest), and spawn the acceptor.
    ///
    /// # Errors
    /// Engine validation/restore errors, or socket bind failures.
    pub fn start(cfg: ServerConfig) -> Result<Server, StartError> {
        let engine = Arc::new(Engine::start(&cfg)?);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            max_connections: cfg.max_connections,
            read_timeout: cfg.read_timeout,
            write_timeout: cfg.write_timeout,
        });
        let acceptor = {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sketchd-acceptor".to_string())
                .spawn(move || accept_loop(listener, engine, shared))
                .map_err(StartError::Io)?
        };
        Ok(Server {
            addr,
            engine,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0 to the OS-chosen ephemeral
    /// port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the socket, for in-process inspection (tests,
    /// embedding).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Programmatic equivalent of a client `SHUTDOWN`: drain and stop the
    /// engine, stop accepting, and unblock every connection handler.
    /// Idempotent.
    ///
    /// # Errors
    /// The engine's final-checkpoint error, if any (the server still
    /// stops).
    pub fn stop(&self) -> Result<(), EngineError> {
        let outcome = self.engine.shutdown();
        halt_frontend(&self.shared);
        outcome
    }

    /// Wait for the acceptor and every connection handler to exit. Call
    /// after `SHUTDOWN` has been sent (or [`Server::stop`]); the engine is
    /// drained and stopped by then.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers = std::mem::take(&mut *registry(&self.shared.handlers));
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("engine", &self.engine)
            .finish()
    }
}

impl Drop for Server {
    /// Best-effort stop, so a dropped handle (test unwinding) never leaks
    /// the acceptor thread or a bound port.
    fn drop(&mut self) {
        let _ = self.stop();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Flag the front-end down and force every live socket closed, unblocking
/// handler threads stuck in `read`.
fn halt_frontend(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    let conns = registry(&shared.conns);
    for stream in conns.values() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Undo one connection's registration when its handler exits — by return
/// *or* by panic. Running in `Drop` keeps the connection cap and the
/// socket map honest even when a handler unwinds: a leaked `active` slot
/// would silently shrink the cap forever.
struct Deregister {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for Deregister {
    fn drop(&mut self) {
        registry(&self.shared.conns).remove(&self.id);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, engine: Arc<Engine>, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => spawn_handler(stream, &engine, &shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_handler(mut stream: TcpStream, engine: &Arc<Engine>, shared: &Arc<Shared>) {
    if shared.active.load(Ordering::SeqCst) >= shared.max_connections {
        // Refuse, don't queue: the cap bounds handler threads.
        let refusal = response::error("too_many_connections", "connection cap reached");
        let _ = stream.write_all(refusal.as_bytes());
        let _ = stream.write_all(b"\n");
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.write_timeout));
    let _ = stream.set_nodelay(true);
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        registry(&shared.conns).insert(id, clone);
    }
    shared.active.fetch_add(1, Ordering::SeqCst);
    let engine = Arc::clone(engine);
    let shared_for_conn = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("sketchd-conn-{id}"))
        .spawn(move || {
            let deregister = Deregister {
                shared: Arc::clone(&shared_for_conn),
                id,
            };
            handle_connection(stream, &engine, &shared_for_conn);
            drop(deregister);
        });
    match handle {
        Ok(h) => registry(&shared.handlers).push(h),
        Err(_) => {
            // Thread spawn failed; roll the registration back.
            registry(&shared.conns).remove(&id);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// One line from the bounded reader.
enum Line {
    /// A complete line (without its newline).
    Data(Vec<u8>),
    /// A line longer than [`MAX_LINE`]; its bytes were discarded up to the
    /// next newline, so the stream is re-synchronized.
    TooLong,
    /// Peer closed (or the read timed out).
    Eof,
}

/// Newline framing over a raw stream with a hard per-line byte bound —
/// `BufReader::read_line` would buffer an attacker-length line in full.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            buf: Vec::new(),
            pos: 0,
            eof: false,
        }
    }

    fn next_line(&mut self) -> Line {
        if self.eof {
            return Line::Eof;
        }
        let mut line: Vec<u8> = Vec::new();
        let mut overlong = false;
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let chunk = &self.buf[self.pos..self.pos + nl];
                let fits = !overlong && line.len() + chunk.len() <= MAX_LINE;
                if fits {
                    line.extend_from_slice(chunk);
                }
                self.pos += nl + 1;
                return if fits {
                    Line::Data(line)
                } else {
                    Line::TooLong
                };
            }
            // No newline buffered: absorb what's there and read more.
            let chunk = &self.buf[self.pos..];
            if !overlong {
                if line.len() + chunk.len() > MAX_LINE {
                    overlong = true;
                    line.clear();
                } else {
                    line.extend_from_slice(chunk);
                }
            }
            self.buf.clear();
            self.pos = 0;
            let mut read_buf = [0u8; 4096];
            match self.stream.read(&mut read_buf) {
                Ok(0) | Err(_) => {
                    // EOF (or timeout/reset). A final unterminated line
                    // still counts as a line.
                    self.eof = true;
                    return if !overlong && !line.is_empty() {
                        Line::Data(line)
                    } else {
                        Line::Eof
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&read_buf[..n]),
            }
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &Engine, shared: &Shared) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut reader = LineReader::new(stream);
    loop {
        let line = match reader.next_line() {
            Line::Eof => return,
            Line::TooLong => {
                let resp = response::error(
                    "line_too_long",
                    &CmdError::LineTooLong { limit: MAX_LINE }.to_string(),
                );
                if respond(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Line::Data(line) => line,
        };
        // Blank lines are ignored rather than answered: a trailing newline
        // must not desynchronize a pipelining client's reply counting.
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        // Fault injection, armed only by SKETCHD_TEST_PANIC (and compiled
        // out of plain release builds, like the engine's fault hooks):
        // panic while holding the connection registry, poisoning the mutex
        // — the worst spot a real handler bug could die in, and exactly
        // what the poison-recovering `registry` path must survive.
        #[cfg(any(debug_assertions, feature = "fault-injection"))]
        if std::env::var_os("SKETCHD_TEST_PANIC").is_some() && line.as_slice() == b"__PANIC__" {
            let _poisoner = shared.conns.lock();
            panic!("test-injected connection handler panic");
        }
        let resp = match parse_command(&line) {
            Err(e) => response::error(e.code(), &e.to_string()),
            Ok(Command::Batch { n }) => match read_batch(&mut reader, n) {
                None => return, // connection died mid-batch
                Some(Err(resp)) => resp,
                Some(Ok(triples)) => ingest(engine, &triples),
            },
            Ok(cmd) => match dispatch(cmd, engine, shared, &mut writer) {
                Some(resp) => resp,
                None => return, // SHUTDOWN: reply already written
            },
        };
        if respond(&mut writer, &resp).is_err() {
            return;
        }
    }
}

fn respond(writer: &mut TcpStream, resp: &str) -> std::io::Result<()> {
    writer.write_all(resp.as_bytes())?;
    writer.write_all(b"\n")
}

/// Read the `n` data lines of a `BATCH` body. The frame is atomic: on a
/// bad line the remaining lines are still consumed (framing survives) and
/// the whole batch is rejected with one error naming the first bad line.
/// `None` means the connection died mid-body.
#[allow(clippy::type_complexity)]
fn read_batch(
    reader: &mut LineReader,
    n: usize,
) -> Option<Result<Vec<(String, StreamEvent, u64)>, String>> {
    let mut triples = Vec::with_capacity(n.min(4096));
    let mut bad: Option<(usize, CmdError)> = None;
    for i in 0..n {
        match reader.next_line() {
            Line::Eof => return None,
            Line::TooLong => {
                bad.get_or_insert((i, CmdError::LineTooLong { limit: MAX_LINE }));
            }
            Line::Data(line) => {
                if bad.is_none() {
                    match parse_data_line(&line) {
                        Ok(triple) => triples.push(triple),
                        Err(e) => bad = Some((i, e)),
                    }
                }
            }
        }
    }
    Some(match bad {
        Some((i, e)) => Err(response::error(e.code(), &format!("batch line {i}: {e}"))),
        None => Ok(triples),
    })
}

/// Render an [`EngineError`] as a response line. Transient errors that
/// are safe to retry verbatim get the `retryable` form with a backoff
/// hint; everything else (including `shard_timeout`, whose request may
/// still apply) is a plain error the client interprets by code.
fn engine_error(e: &EngineError) -> String {
    if e.is_retryable() {
        let retry_after_ms = match e {
            EngineError::Overloaded { retry_after_ms, .. } => *retry_after_ms,
            _ => 50,
        };
        response::retry_error(e.code(), &e.to_string(), retry_after_ms)
    } else {
        response::error(e.code(), &e.to_string())
    }
}

fn ingest(engine: &Engine, triples: &[(String, StreamEvent, u64)]) -> String {
    match engine.ingest(triples) {
        Ok(n) => response::ingested(n),
        Err(e) => engine_error(&e),
    }
}

/// Handle every command except `BATCH`. Returns the response line, or
/// `None` after `SHUTDOWN` (which writes its own ack and ends the
/// connection).
fn dispatch(
    cmd: Command,
    engine: &Engine,
    shared: &Shared,
    writer: &mut TcpStream,
) -> Option<String> {
    Some(match cmd {
        Command::Ping => response::pong(),
        Command::Store {
            key,
            ts,
            item,
            count,
        } => ingest(engine, &[(key, StreamEvent::new(item, ts), count)]),
        Command::Batch { .. } => unreachable!("BATCH handled by the caller"),
        Command::Query { key, query, window } => match engine.query_served(&key, &query, window) {
            Err(e) => engine_error(&e),
            Ok(served) => match served.answer {
                None => response::error("unknown_key", &format!("no sketch for key {key:?}")),
                Some(Err(e)) => response::query_error(&e),
                Some(Ok(answer)) => response::answer_at(query.name(), &answer, served.clock),
            },
        },
        Command::TopK { k, window } => match engine.top_k(k, window) {
            Ok(rows) => response::topk(&rows),
            Err(e) => engine_error(&e),
        },
        Command::Stats => match engine.stats() {
            Ok(rows) => {
                let views = engine.views_summary(&rows);
                response::stats(&rows, &views)
            }
            Err(e) => engine_error(&e),
        },
        Command::ViewCreate { def } => {
            let name = def.name.clone();
            match engine.view_create(def) {
                Ok(()) => response::view_created(&name),
                Err(e) => engine_error(&e),
            }
        }
        Command::ViewRead { name } => match engine.view_read(&name) {
            Ok(readout) => response::view_read(&name, &readout),
            Err(e) => engine_error(&e),
        },
        Command::ViewDrop { name } => match engine.view_drop(&name) {
            Ok(()) => response::view_dropped(&name),
            Err(e) => engine_error(&e),
        },
        Command::ViewList => {
            let rows: Vec<(String, &'static str, String)> = engine
                .view_list()
                .iter()
                .map(|d| (d.name.clone(), d.kind(), wire_view_def(d)))
                .collect();
            response::view_list(&rows)
        }
        Command::Subscribe { view } => {
            if !engine.view_list().iter().any(|d| d.name == view) {
                response::error("unknown_view", &format!("no view named {view:?}"))
            } else {
                subscribe_loop(&view, engine, shared, writer);
                return None; // push-only from here; the connection is done
            }
        }
        Command::Flush { ts } => match engine.flush(ts) {
            Ok(()) => response::flushed(ts),
            Err(e) => engine_error(&e),
        },
        Command::Snapshot { dir, incremental } => {
            match engine.snapshot(Path::new(&dir), incremental) {
                Ok(report) => response::snapshot(&report),
                Err(e) => engine_error(&e),
            }
        }
        Command::Shutdown => {
            // Drain + final checkpoint + worker join happen *before* the
            // ack, so a client that saw the ack knows every prior ack is
            // durable.
            let resp = match engine.shutdown() {
                Ok(()) => response::shutdown(),
                Err(e) => engine_error(&e),
            };
            let _ = respond(writer, &resp);
            halt_frontend(shared);
            return None;
        }
    })
}

/// Turn the connection push-only: ack the subscription, then forward every
/// notification the hub publishes for `view` until the server stops, the
/// view is dropped (the hub disconnects its subscribers), or the peer
/// stops reading. A 5-second idle gap emits a `ping` notification so a
/// half-dead peer is detected by the write instead of lingering forever.
fn subscribe_loop(view: &str, engine: &Engine, shared: &Shared, writer: &mut TcpStream) {
    let hub = engine.hub();
    let (id, rx) = hub.subscribe(view);
    // A subscription is a declaration of interest: warm the view out of its
    // cold partial state now, otherwise a subscribe-only client would never
    // see a notification (cold views are skipped by maintenance until some
    // read materializes them). `NoData` is fine — the first write will
    // materialize it.
    let _ = engine.view_read(view);
    if respond(writer, &response::subscribed(view)).is_err() {
        hub.unsubscribe(id);
        return;
    }
    let tick = Duration::from_millis(100);
    let mut idle = Duration::ZERO;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(tick) {
            Ok(line) => {
                idle = Duration::ZERO;
                if respond(writer, &line).is_err() {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                idle += tick;
                if idle >= Duration::from_secs(5) {
                    idle = Duration::ZERO;
                    if respond(writer, &response::heartbeat()).is_err() {
                        break;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    hub.unsubscribe(id);
}
