//! `sketchd` — a sharded network front-end over the workspace's sketch
//! library, turning the keyed [`SketchStore`](ecm::SketchStore) into a
//! standalone service (ROADMAP item 1).
//!
//! The paper's sketches summarize streams that arrive *from the network*;
//! after PRs 1–5 the system could only be driven as a library. This crate
//! adds the missing socket, in three layers:
//!
//! * **Engine** ([`engine`]) — N long-lived shard workers, each owning a
//!   `SketchStore<String>` partition built from one
//!   [`SketchSpec`]. Keys are routed by FNV-1a hash, typed
//!   [`ShardMsg`](engine::ShardMsg)s travel over **bounded** mailboxes
//!   (`std::sync::mpsc::sync_channel`), so a hot shard applies backpressure
//!   to its senders without stalling sibling shards. Mailboxes carry
//!   *writes*; queries are served wait-free from each shard's published
//!   left-right epoch ([`ecm::publish`]) — per-key queries pin the owning
//!   shard's epoch, cross-key queries pin all N concurrently and merge —
//!   with a freshness gate that falls back to the worker mailbox whenever
//!   the published copy trails the shard's accepted writes, preserving
//!   read-your-writes. `Snapshot` messages reuse the PR-5 checkpoint
//!   machinery per shard.
//! * **Protocol + front-end** ([`protocol`], [`frontend`]) — a
//!   newline-delimited command language (`STORE`, `BATCH`, `QUERY`, `TOPK`,
//!   `STATS`, `FLUSH`, `SNAPSHOT`, `PING`, `SHUTDOWN`) with a hand-rolled
//!   zero-dependency parser returning typed [`CmdError`](protocol::CmdError)s,
//!   JSON responses that carry every estimate **with** its (ε, δ)
//!   guarantee, served over threaded TCP with per-connection read/write
//!   timeouts and a connection cap.
//! * **Client + load generator** ([`client`], [`loadgen`]) — a pipelining
//!   `sketch-client` library and a `loadgen` binary that replays
//!   `stream-gen` bursty-Zipf scenarios over M connections against a live
//!   server and reports *client-observed* ingest throughput and query
//!   latency percentiles into the schema-validated `BENCH_server.json`.
//!
//! # Quick start
//!
//! ```
//! use sketch_server::config::ServerConfig;
//! use sketch_server::frontend::Server;
//! use sketch_server::client::Client;
//! use ecm::SketchSpec;
//!
//! let cfg = ServerConfig::new(SketchSpec::time(1_000).seed(7)).shards(2);
//! let server = Server::start(cfg).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.call("STORE alice 10 7").unwrap();
//! let resp = client.call("QUERY alice point 7 time 10 100").unwrap();
//! assert!(resp.contains("\"ok\":true"));
//! client.call("SHUTDOWN").unwrap();
//! server.join();
//! ```

pub mod client;
pub mod config;
pub mod engine;
pub mod fault;
pub mod frontend;
pub mod loadgen;
pub mod protocol;

pub use client::{answer_now, Client, ClientError, RetryPolicy};
pub use config::ServerConfig;
pub use engine::{Engine, EngineError};
pub use frontend::Server;

// Re-export the seams a server caller needs, so driving `sketchd`
// programmatically does not require depending on `ecm` directly.
pub use ecm::{Answer, Estimate, Guarantee, Query, SketchSpec, StreamEvent, WindowSpec};
