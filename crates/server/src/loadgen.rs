//! Load generation against a live `sketchd`: replay a `stream-gen`
//! bursty-Zipf trace over M connections, then measure query round-trips.
//!
//! The numbers reported are **client-observed** — they include the parser,
//! the shard mailboxes, the TCP stack and the JSON rendering, unlike the
//! in-process `crates/bench` suites. Each site of the trace becomes one
//! tenant key (`site-<s>`); sites are partitioned across connections by
//! `site % connections`, which keeps every tenant's events on one
//! connection in trace order — time-based sketches require per-key
//! non-decreasing ticks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use stream_gen::worldcup_like;

use crate::client::{Client, ClientError};
use crate::protocol::response::is_ok;

/// What to replay, and against whom.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent ingest connections (default 4).
    pub connections: usize,
    /// Trace length in events (default 200 000).
    pub events: usize,
    /// Events per `BATCH` frame (default 1 024).
    pub batch: usize,
    /// Point-query round-trips to measure (default 2 000).
    pub queries: usize,
    /// Window range (ticks) used by the measured queries (default 1 000 —
    /// safely inside any realistic spec window).
    pub query_range: u64,
    /// Trace seed (default 42).
    pub seed: u64,
    /// Standing views to register before ingest (default 0 = off). With
    /// views on, a subscriber drains one view's notification stream during
    /// ingest and the query phase additionally measures `VIEW READ`
    /// round-trips.
    pub views: usize,
}

impl LoadgenConfig {
    /// Defaults against `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            connections: 4,
            events: 200_000,
            batch: 1_024,
            queries: 2_000,
            query_range: 1_000,
            seed: 42,
            views: 0,
        }
    }
}

/// Client-observed results of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Event occurrences acked by the server.
    pub events: u64,
    /// Ingest connections used.
    pub connections: usize,
    /// Events per `BATCH` frame.
    pub batch: usize,
    /// Distinct tenant keys in the trace.
    pub tenants: usize,
    /// Wall-clock seconds of the ingest phase.
    pub ingest_secs: f64,
    /// Client-observed ingest throughput, million events per second.
    pub ingest_meps: f64,
    /// Query round-trips measured.
    pub queries: u64,
    /// Median query round-trip, microseconds.
    pub query_p50_us: f64,
    /// 95th-percentile query round-trip, microseconds.
    pub query_p95_us: f64,
    /// 99th-percentile query round-trip, microseconds.
    pub query_p99_us: f64,
    /// Standing views registered for this run (0 = views mode off).
    pub views: usize,
    /// `VIEW READ` round-trips measured (views mode only).
    pub view_reads: u64,
    /// Median `VIEW READ` round-trip, microseconds (views mode only).
    pub view_read_p50_us: f64,
    /// 95th-percentile `VIEW READ` round-trip, microseconds (views mode
    /// only).
    pub view_read_p95_us: f64,
    /// Notification lines the subscriber drained during ingest (views mode
    /// only; includes heartbeats and drop markers).
    pub notifications: u64,
    /// Client-side retries absorbed across all connections (transport
    /// failures and `"retryable":true` server errors).
    pub retries: u64,
    /// `overloaded` (admission-shed) responses absorbed across all
    /// connections.
    pub sheds: u64,
}

/// Client-observed numbers for the degraded-mode pass: the same workload
/// driven while one shard is killed and supervised back up mid-ingest.
#[derive(Debug, Clone)]
pub struct DegradedReport {
    /// Event occurrences acked during the degraded pass.
    pub events: u64,
    /// Client-observed ingest throughput with the restart in the middle,
    /// million events per second.
    pub ingest_meps: f64,
    /// 99th-percentile query round-trip measured right after the restart,
    /// microseconds.
    pub query_p99_us: f64,
    /// Degraded ingest throughput relative to the fault-free baseline
    /// (1.0 = no cost).
    pub relative: f64,
    /// Client-side retries absorbed during the degraded pass.
    pub retries: u64,
    /// Admission sheds absorbed during the degraded pass.
    pub sheds: u64,
}

fn io_err(detail: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail)
}

/// Replay the trace, then measure query latency; see the module docs for
/// the workload shape.
///
/// # Errors
/// Connection failures, or a server reply that is not an ack (surfaced
/// with the offending response line).
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    assert!(cfg.connections >= 1, "need at least one connection");
    assert!(cfg.batch >= 1, "need a positive batch size");
    let trace = worldcup_like(cfg.events, cfg.seed);
    let max_ts = trace.last().map_or(1, |e| e.ts);
    let sites = {
        let mut sites: Vec<u32> = trace.iter().map(|e| e.site).collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    };
    let tenants = sites.len();

    // Views mode: register the standing views before ingest (alternating
    // keyed threshold and fleet-wide top-k definitions — both kinds every
    // backend can answer), and point a subscriber at the first one so the
    // notification path is exercised concurrently with the ingest it
    // reacts to.
    let view_names: Vec<String> = (0..cfg.views).map(|i| format!("lg-view-{i}")).collect();
    if cfg.views > 0 {
        let mut control = Client::connect(&cfg.addr)?;
        for (i, name) in view_names.iter().enumerate() {
            let site = sites[i % sites.len()];
            let def = if i % 2 == 0 {
                // A sub-one limit: any in-window arrival crosses it, and a
                // quiet window crosses back — the subscriber sees real
                // threshold notifications in both directions.
                format!(
                    "{name} threshold site-{site} total 0.5 time {}",
                    cfg.query_range
                )
            } else {
                format!("{name} topk 10 time {}", cfg.query_range)
            };
            let resp = control.call(&format!("VIEW CREATE {def}"))?;
            if !is_ok(&resp) {
                return Err(io_err(format!("view create rejected: {resp}")));
            }
        }
    }
    // The subscription must be acked before the first ingest batch, or a
    // fast trace outruns it and the crossings happen unobserved.
    let stop_subscriber = AtomicBool::new(false);
    let subscription = if cfg.views > 0 {
        let mut sub = Client::connect(&cfg.addr)?;
        sub.set_read_timeout(Some(Duration::from_millis(100)))?;
        let ack = sub.subscribe(&view_names[0])?;
        if !is_ok(&ack) {
            return Err(io_err(format!("subscribe rejected: {ack}")));
        }
        Some(sub)
    } else {
        None
    };
    let subscriber = |mut sub: Client, stop: &AtomicBool| -> u64 {
        let mut drained = 0u64;
        loop {
            match sub.recv() {
                Ok(_) => drained += 1,
                Err(ClientError::TimedOut) => {
                    if stop.load(Ordering::SeqCst) {
                        return drained;
                    }
                }
                Err(_) => return drained,
            }
        }
    };

    // Partition by site so each tenant's events stay on one connection in
    // trace order.
    let mut per_conn: Vec<Vec<String>> = vec![Vec::new(); cfg.connections];
    for e in &trace {
        per_conn[e.site as usize % cfg.connections]
            .push(format!("site-{} {} {}", e.site, e.ts, e.key));
    }

    let started = Instant::now();
    let mut ingest_secs = 0.0;
    let (acked, notifications, mut retries, mut sheds) = std::thread::scope(|scope| {
        let sub_handle = subscription.map(|sub| scope.spawn(|| subscriber(sub, &stop_subscriber)));
        let mut workers = Vec::with_capacity(cfg.connections);
        for lines in &per_conn {
            workers.push(scope.spawn(move || -> std::io::Result<(u64, u64, u64)> {
                let mut client = Client::connect(&cfg.addr)?;
                let mut acked = 0u64;
                for chunk in lines.chunks(cfg.batch) {
                    let resp = client.batch_retry(chunk)?;
                    if !is_ok(&resp) {
                        return Err(io_err(format!("batch rejected: {resp}")));
                    }
                    acked += chunk.len() as u64;
                }
                Ok((acked, client.retries(), client.sheds()))
            }));
        }
        let (mut total, mut retries, mut sheds) = (0u64, 0u64, 0u64);
        for worker in workers {
            // A panicked worker is a typed report, not an abort of the
            // whole run's reporting.
            let (a, r, s) = worker
                .join()
                .map_err(|_| io_err("ingest worker panicked".to_string()))??;
            total += a;
            retries += r;
            sheds += s;
        }
        // The subscriber keeps draining until ingest is done, so the
        // timed window covers exactly the mixed ingest+notify phase.
        ingest_secs = started.elapsed().as_secs_f64();
        stop_subscriber.store(true, Ordering::SeqCst);
        let notes = match sub_handle {
            Some(h) => h
                .join()
                .map_err(|_| io_err("subscriber panicked".to_string()))?,
            None => 0,
        };
        Ok::<(u64, u64, u64, u64), std::io::Error>((total, notes, retries, sheds))
    })?;

    // Query phase: point lookups for real (tenant, item) pairs spread
    // across the trace, one synchronous round-trip each.
    let mut client = Client::connect(&cfg.addr)?;
    let mut lat_us: Vec<f64> = Vec::with_capacity(cfg.queries);
    let stride = (trace.len() / cfg.queries.max(1)).max(1);
    for e in trace.iter().step_by(stride).take(cfg.queries) {
        let cmd = format!(
            "QUERY site-{} point {} time {max_ts} {}",
            e.site, e.key, cfg.query_range
        );
        let t0 = Instant::now();
        let resp = client.call_retry(&cmd)?;
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        if !is_ok(&resp) {
            return Err(io_err(format!("query rejected: {resp}")));
        }
    }
    retries += client.retries();
    sheds += client.sheds();
    // Views mode: the same number of `VIEW READ` round-trips, round-robin
    // over the registered views — a materialized read instead of a
    // recompute, so its RTT prices the protocol + mailbox path alone.
    let mut view_lat_us: Vec<f64> = Vec::new();
    if cfg.views > 0 {
        for i in 0..cfg.queries {
            let cmd = format!("VIEW READ {}", view_names[i % view_names.len()]);
            let t0 = Instant::now();
            let resp = client.call(&cmd)?;
            view_lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
            if !is_ok(&resp) {
                return Err(io_err(format!("view read rejected: {resp}")));
            }
        }
        view_lat_us.sort_by(f64::total_cmp);
    }

    // total_cmp: a non-finite sample (a clock hiccup, a future refactor)
    // sorts to an end instead of panicking the whole run.
    lat_us.sort_by(f64::total_cmp);
    // Nearest-rank percentile: ceil(q·n) is the 1-based rank, so p99 of
    // 100 samples reads sample 99, not the max (truncation read the max
    // for every q > (n-1)/n).
    let pct_of = |samples: &[f64], q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let rank = (q * samples.len() as f64).ceil() as usize;
        samples[rank.clamp(1, samples.len()) - 1]
    };
    let pct = |q: f64| pct_of(&lat_us, q);

    Ok(LoadgenReport {
        events: acked,
        connections: cfg.connections,
        batch: cfg.batch,
        tenants,
        ingest_secs,
        ingest_meps: acked as f64 / ingest_secs / 1e6,
        queries: lat_us.len() as u64,
        query_p50_us: pct(0.50),
        query_p95_us: pct(0.95),
        query_p99_us: pct(0.99),
        views: cfg.views,
        view_reads: view_lat_us.len() as u64,
        view_read_p50_us: pct_of(&view_lat_us, 0.50),
        view_read_p95_us: pct_of(&view_lat_us, 0.95),
        notifications,
        retries,
        sheds,
    })
}

/// Replay the same trace again — timestamps shifted past the baseline pass
/// so per-tenant ticks stay non-decreasing — while `trigger` kills a shard
/// at roughly 25% of ingest. The surviving throughput and the post-restart
/// query p99 price what one supervised restart costs the fleet.
///
/// Query responses are *not* required to be acks here: a non-durable server
/// forgets restarted tenants, and this pass measures latency under
/// degradation, not correctness (the chaos tests own that).
///
/// # Errors
/// Connection failures, or an ingest batch that is rejected even after the
/// client's retry budget is spent.
pub fn run_degraded(
    cfg: &LoadgenConfig,
    baseline_meps: f64,
    trigger: &(dyn Fn() + Sync),
) -> std::io::Result<DegradedReport> {
    assert!(cfg.connections >= 1, "need at least one connection");
    assert!(cfg.batch >= 1, "need a positive batch size");
    let trace = worldcup_like(cfg.events, cfg.seed);
    let max_ts = trace.last().map_or(1, |e| e.ts);
    let mut per_conn: Vec<Vec<String>> = vec![Vec::new(); cfg.connections];
    for e in &trace {
        per_conn[e.site as usize % cfg.connections].push(format!(
            "site-{} {} {}",
            e.site,
            e.ts + max_ts,
            e.key
        ));
    }

    let fired = AtomicBool::new(false);
    let started = Instant::now();
    let (acked, mut retries, mut sheds) = std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(cfg.connections);
        for (w, lines) in per_conn.iter().enumerate() {
            let fired = &fired;
            workers.push(scope.spawn(move || -> std::io::Result<(u64, u64, u64)> {
                let mut client = Client::connect(&cfg.addr)?;
                let mut acked = 0u64;
                let kick_at = lines.chunks(cfg.batch).count() / 4;
                for (i, chunk) in lines.chunks(cfg.batch).enumerate() {
                    // Worker 0 pulls the trigger once, a quarter of the way
                    // in — far enough that the mailboxes are warm, early
                    // enough that most of the pass runs degraded.
                    if w == 0 && i == kick_at && !fired.swap(true, Ordering::SeqCst) {
                        trigger();
                    }
                    let resp = client.batch_retry(chunk)?;
                    if !is_ok(&resp) {
                        return Err(io_err(format!("batch rejected: {resp}")));
                    }
                    acked += chunk.len() as u64;
                }
                Ok((acked, client.retries(), client.sheds()))
            }));
        }
        let (mut total, mut retries, mut sheds) = (0u64, 0u64, 0u64);
        for worker in workers {
            let (a, r, s) = worker
                .join()
                .map_err(|_| io_err("degraded ingest worker panicked".to_string()))??;
            total += a;
            retries += r;
            sheds += s;
        }
        Ok::<(u64, u64, u64), std::io::Error>((total, retries, sheds))
    })?;
    let ingest_secs = started.elapsed().as_secs_f64().max(f64::EPSILON);

    // Post-restart query latency: the same point-lookup mix, right after
    // the pass that contained the restart.
    let mut client = Client::connect(&cfg.addr)?;
    let mut lat_us: Vec<f64> = Vec::with_capacity(cfg.queries);
    let stride = (trace.len() / cfg.queries.max(1)).max(1);
    let shifted_max = max_ts.saturating_mul(2);
    for e in trace.iter().step_by(stride).take(cfg.queries) {
        let cmd = format!(
            "QUERY site-{} point {} time {shifted_max} {}",
            e.site, e.key, cfg.query_range
        );
        let t0 = Instant::now();
        let _resp = client.call_retry(&cmd)?;
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    retries += client.retries();
    sheds += client.sheds();
    lat_us.sort_by(f64::total_cmp);
    let p99 = if lat_us.is_empty() {
        0.0
    } else {
        let rank = (0.99 * lat_us.len() as f64).ceil() as usize;
        lat_us[rank.clamp(1, lat_us.len()) - 1]
    };

    let ingest_meps = acked as f64 / ingest_secs / 1e6;
    Ok(DegradedReport {
        events: acked,
        ingest_meps,
        query_p99_us: p99,
        relative: if baseline_meps > 0.0 {
            ingest_meps / baseline_meps
        } else {
            0.0
        },
        retries,
        sheds,
    })
}

/// The report as the flat machine-written JSON `BENCH_server.json` holds
/// (schema-validated by `crates/bench/tests/bench_schema.rs`). The degraded
/// block appears only when a degraded-mode pass ran.
pub fn render_json(r: &LoadgenReport, degraded: Option<&DegradedReport>) -> String {
    // The views block appears only in views mode, so the default server
    // bench file keeps its original shape.
    let views = if r.views > 0 {
        format!(
            ",\n    \"views\": {},\n    \"view_reads\": {},\n    \
             \"view_read_p50_us\": {:.2},\n    \"view_read_p95_us\": {:.2},\n    \
             \"notifications\": {}",
            r.views, r.view_reads, r.view_read_p50_us, r.view_read_p95_us, r.notifications
        )
    } else {
        String::new()
    };
    let degraded = degraded.map_or(String::new(), |d| {
        format!(
            ",\n    \"degraded_events\": {},\n    \"degraded_ingest_meps\": {:.4},\n    \
             \"degraded_query_p99_us\": {:.2},\n    \"degraded_relative\": {:.4},\n    \
             \"degraded_retries\": {},\n    \"degraded_sheds\": {}",
            d.events, d.ingest_meps, d.query_p99_us, d.relative, d.retries, d.sheds
        )
    });
    format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"server\",\n  \"workload\": {{\n    \
         \"events\": {},\n    \"connections\": {},\n    \"batch\": {},\n    \
         \"tenants\": {}\n  }},\n  \"results\": {{\n    \"ingest_secs\": {:.4},\n    \
         \"ingest_meps\": {:.4},\n    \"queries\": {},\n    \"query_p50_us\": {:.2},\n    \
         \"query_p95_us\": {:.2},\n    \"query_p99_us\": {:.2},\n    \"retries\": {},\n    \
         \"sheds\": {}{views}{degraded}\n  }}\n}}\n",
        r.events,
        r.connections,
        r.batch,
        r.tenants,
        r.ingest_secs,
        r.ingest_meps,
        r.queries,
        r.query_p50_us,
        r.query_p95_us,
        r.query_p99_us,
        r.retries,
        r.sheds
    )
}
