//! The `sketchd` wire protocol: a newline-delimited command language in, a
//! JSON object per response line out.
//!
//! One request line maps to one response line (the `BATCH` body lines are
//! the sole exception: the `n` data lines that follow a `BATCH n` header
//! are acknowledged by a single response). The command grammar is parsed by
//! [`parser`]; responses are rendered by [`response`], and every estimate
//! travels **with** the (ε, δ) guarantee its backend derived — a remote
//! reader gets exactly the accuracy contract an in-process
//! [`SketchReader`](ecm::SketchReader) caller would.
//!
//! | Command | Reply |
//! |---|---|
//! | `PING` | `{"ok":true,"pong":true}` |
//! | `STORE <key> <ts> <item> [<count>]` | `{"ok":true,"ingested":n}` |
//! | `BATCH <n>` + n × `<key> <ts> <item> [<count>]` | one `{"ok":true,"ingested":n}` |
//! | `QUERY <key> point <item> <window>` | `{"ok":true,...,"value":v,"guarantee":{...}}` |
//! | `QUERY <key> range <lo> <hi> <window>` | as above |
//! | `QUERY <key> self_join <window>` | as above |
//! | `QUERY <key> total <window>` | as above |
//! | `QUERY <key> heavy_hitters <rel:φ\|abs:n> <window>` | `{"ok":true,...,"hitters":[...]}` |
//! | `QUERY <key> quantile <φ> <window>` | `{"ok":true,...,"key":k}` |
//! | `TOPK <k> <window>` | `{"ok":true,"topk":[...]}` |
//! | `STATS` | per-shard key counts / memory / ingest counters |
//! | `FLUSH <ts>` | advance every shard's clock to `ts` |
//! | `SNAPSHOT <dir> [full\|incr]` | checkpoint every shard into `dir` |
//! | `VIEW CREATE <name> <def>` | register a standing view |
//! | `VIEW READ <name>` | `{"ok":true,"view":...,"now":n,"seq":s}` |
//! | `VIEW DROP <name>` | `{"ok":true,...,"dropped":true}` |
//! | `VIEW LIST` | `{"ok":true,"views":[...]}` |
//! | `SUBSCRIBE <view>` | push stream of maintenance notifications |
//! | `SHUTDOWN` | drain, final snapshot, stop the server |
//!
//! `<window>` is either `time <now> <range>` (a time-based window covering
//! ticks `(now − range, now]`) or `last <n>` (the most recent `n` arrivals,
//! for count-based specs). Standing-view definitions use windows *without*
//! `now` (`time <range>` / `last <n>`): the view pins `now` to the
//! sketch's write clock at every maintenance round. `<def>` is
//! `<name> hh <key> <rel:φ|abs:n> <window>`,
//! `<name> threshold <key> <point <item>|self_join|total> <limit> <window>`,
//! or `<name> topk <k> <window>` (see
//! [`parser::parse_view_def`]).

pub mod parser;
pub mod response;

pub use parser::{
    parse_command, parse_data_line, parse_view_def, wire_view_def, CmdError, Command, OwnedQuery,
    MAX_BATCH, MAX_KEY, MAX_LINE,
};
