//! Hand-rolled, zero-dependency command parser.
//!
//! Input is one raw line (without the trailing `\n`, an optional trailing
//! `\r` is tolerated); output is a typed [`Command`] or a typed
//! [`CmdError`]. The parser is total: any byte sequence yields one of the
//! two, never a panic — `tests/protocol_robustness.rs` fuzzes it with
//! random bytes to keep that true.

use std::fmt;

use ecm::{
    Query, ScalarQuery, StandingQuery, StreamEvent, Threshold, ViewDef, ViewWindow, WindowSpec,
};

/// Longest accepted request line in bytes (longer lines are rejected and
/// the connection handler discards until the next newline).
pub const MAX_LINE: usize = 4096;

/// Longest accepted key token in bytes.
pub const MAX_KEY: usize = 128;

/// Largest accepted `BATCH` body size in lines.
pub const MAX_BATCH: usize = 1 << 16;

/// Largest accepted per-event `count` (keeps one line from expanding into
/// an unbounded weighted ingest).
pub const MAX_COUNT: u64 = 1 << 20;

/// An owned query description — the wire/mailbox form of
/// [`ecm::Query`], which cannot itself cross a channel because its
/// inner-product variant borrows.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedQuery {
    /// Frequency of one item.
    Point {
        /// The queried item.
        item: u64,
    },
    /// Self-join size (F₂) of the window.
    SelfJoin,
    /// Arrivals with key in `[lo, hi]` (hierarchy specs only).
    Range {
        /// Lowest key, inclusive.
        lo: u64,
        /// Highest key, inclusive.
        hi: u64,
    },
    /// Keys at or above a frequency threshold (hierarchy specs only).
    HeavyHitters {
        /// The threshold.
        threshold: Threshold,
    },
    /// The φ-quantile key (hierarchy specs only).
    Quantile {
        /// Rank fraction in (0, 1].
        phi: f64,
    },
    /// Total arrivals in the window.
    Total,
}

impl OwnedQuery {
    /// The equivalent borrowed [`ecm::Query`] value.
    pub fn to_query(&self) -> Query<'static> {
        match *self {
            OwnedQuery::Point { item } => Query::point(item),
            OwnedQuery::SelfJoin => Query::self_join(),
            OwnedQuery::Range { lo, hi } => Query::range_sum(lo, hi),
            OwnedQuery::HeavyHitters { threshold } => Query::heavy_hitters(threshold),
            OwnedQuery::Quantile { phi } => Query::quantile(phi),
            OwnedQuery::Total => Query::total_arrivals(),
        }
    }

    /// The query's wire verb (also used in responses).
    pub fn name(&self) -> &'static str {
        match self {
            OwnedQuery::Point { .. } => "point",
            OwnedQuery::SelfJoin => "self_join",
            OwnedQuery::Range { .. } => "range",
            OwnedQuery::HeavyHitters { .. } => "heavy_hitters",
            OwnedQuery::Quantile { .. } => "quantile",
            OwnedQuery::Total => "total",
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// One keyed event: `count` occurrences of `item` at tick `ts`.
    Store {
        /// Tenant key.
        key: String,
        /// Arrival tick.
        ts: u64,
        /// Stream item.
        item: u64,
        /// Occurrences (≥ 1).
        count: u64,
    },
    /// Header of an `n`-line batch; the next `n` lines are data lines.
    Batch {
        /// Number of data lines that follow.
        n: usize,
    },
    /// A typed query against one key's sketch.
    Query {
        /// Tenant key.
        key: String,
        /// What to compute.
        query: OwnedQuery,
        /// Which stream slice.
        window: WindowSpec,
    },
    /// The `k` keys with the most window arrivals, across all shards.
    TopK {
        /// How many keys.
        k: usize,
        /// Which stream slice.
        window: WindowSpec,
    },
    /// Per-shard fleet statistics.
    Stats,
    /// Advance every shard's stream clock to `ts` with no arrivals.
    Flush {
        /// The tick every sketch's clock must reach.
        ts: u64,
    },
    /// Checkpoint every shard into a directory.
    Snapshot {
        /// Target directory (created if missing).
        dir: String,
        /// `true` for an incremental (dirty-keys-only) delta.
        incremental: bool,
    },
    /// Register a standing view.
    ViewCreate {
        /// The parsed definition.
        def: ViewDef<String>,
    },
    /// Read a standing view's materialized answer.
    ViewRead {
        /// The view name.
        name: String,
    },
    /// Drop a standing view.
    ViewDrop {
        /// The view name.
        name: String,
    },
    /// List registered views.
    ViewList,
    /// Turn this connection into a push stream of `view`'s notifications.
    Subscribe {
        /// The view name.
        view: String,
    },
    /// Drain, optionally snapshot, and stop the server.
    Shutdown,
}

/// Why a request line could not be parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum CmdError {
    /// Blank line (or only whitespace).
    Empty,
    /// The line exceeded [`MAX_LINE`] bytes.
    LineTooLong {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The line is not valid UTF-8.
    NotUtf8,
    /// The first token is not a known verb.
    UnknownVerb {
        /// The offending token (truncated for display).
        verb: String,
    },
    /// Right verb, wrong number of arguments.
    WrongArity {
        /// The verb.
        verb: &'static str,
        /// The expected shape.
        expected: &'static str,
    },
    /// A numeric argument did not parse or is out of domain.
    BadNumber {
        /// Which argument.
        what: &'static str,
        /// The offending token.
        got: String,
    },
    /// A key token is empty, too long, or otherwise malformed.
    BadKey {
        /// What was wrong.
        detail: &'static str,
    },
    /// A window clause did not parse.
    BadWindow {
        /// What was wrong.
        detail: &'static str,
    },
    /// A heavy-hitter threshold did not parse (`rel:<φ>` or `abs:<n>`).
    BadThreshold {
        /// The offending token.
        got: String,
    },
    /// A `BATCH` header exceeds [`MAX_BATCH`] lines.
    BatchTooLarge {
        /// The requested size.
        got: usize,
        /// The limit.
        limit: usize,
    },
    /// A `BATCH 0` header: an empty batch is a protocol error.
    EmptyBatch,
}

impl CmdError {
    /// Short machine-readable error code for the JSON `error` field.
    pub fn code(&self) -> &'static str {
        match self {
            CmdError::Empty => "empty",
            CmdError::LineTooLong { .. } => "line_too_long",
            CmdError::NotUtf8 => "not_utf8",
            CmdError::UnknownVerb { .. } => "unknown_verb",
            CmdError::WrongArity { .. } => "wrong_arity",
            CmdError::BadNumber { .. } => "bad_number",
            CmdError::BadKey { .. } => "bad_key",
            CmdError::BadWindow { .. } => "bad_window",
            CmdError::BadThreshold { .. } => "bad_threshold",
            CmdError::BatchTooLarge { .. } => "batch_too_large",
            CmdError::EmptyBatch => "empty_batch",
        }
    }
}

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdError::Empty => write!(f, "empty command line"),
            CmdError::LineTooLong { limit } => {
                write!(f, "line exceeds the {limit}-byte limit")
            }
            CmdError::NotUtf8 => write!(f, "line is not valid UTF-8"),
            CmdError::UnknownVerb { verb } => write!(f, "unknown verb {verb:?}"),
            CmdError::WrongArity { verb, expected } => {
                write!(f, "{verb} expects: {expected}")
            }
            CmdError::BadNumber { what, got } => {
                write!(f, "{what} is not a valid number: {got:?}")
            }
            CmdError::BadKey { detail } => write!(f, "bad key: {detail}"),
            CmdError::BadWindow { detail } => write!(f, "bad window: {detail}"),
            CmdError::BadThreshold { got } => write!(
                f,
                "bad threshold {got:?}: expected rel:<phi in (0,1)> or abs:<count>"
            ),
            CmdError::BatchTooLarge { got, limit } => {
                write!(f, "batch of {got} lines exceeds the {limit}-line limit")
            }
            CmdError::EmptyBatch => write!(f, "batch must contain at least one line"),
        }
    }
}

impl std::error::Error for CmdError {}

/// The line as UTF-8 tokens, or the appropriate error. Rejects over-long
/// and non-UTF-8 lines before any token is inspected.
fn tokens(line: &[u8]) -> Result<Vec<&str>, CmdError> {
    if line.len() > MAX_LINE {
        return Err(CmdError::LineTooLong { limit: MAX_LINE });
    }
    // Tolerate a trailing \r from CRLF clients (e.g. telnet / nc -C).
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    let text = std::str::from_utf8(line).map_err(|_| CmdError::NotUtf8)?;
    let toks: Vec<&str> = text.split_ascii_whitespace().collect();
    if toks.is_empty() {
        return Err(CmdError::Empty);
    }
    Ok(toks)
}

fn num<T: std::str::FromStr>(tok: &str, what: &'static str) -> Result<T, CmdError> {
    tok.parse().map_err(|_| CmdError::BadNumber {
        what,
        got: truncate_for_display(tok),
    })
}

/// Keep error payloads bounded even when the offending token is huge.
fn truncate_for_display(tok: &str) -> String {
    if tok.len() <= 32 {
        tok.to_string()
    } else {
        let mut end = 32;
        while !tok.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &tok[..end])
    }
}

fn key(tok: &str) -> Result<String, CmdError> {
    if tok.is_empty() {
        return Err(CmdError::BadKey {
            detail: "key must be non-empty",
        });
    }
    if tok.len() > MAX_KEY {
        return Err(CmdError::BadKey {
            detail: "key exceeds the 128-byte limit",
        });
    }
    Ok(tok.to_string())
}

/// Parse the trailing window clause: `time <now> <range>` or `last <n>`.
fn window(toks: &[&str]) -> Result<WindowSpec, CmdError> {
    match toks {
        ["time", now, range] => Ok(WindowSpec::time(
            num(now, "window now")?,
            num(range, "window range")?,
        )),
        ["last", n] => Ok(WindowSpec::last(num(n, "window last_n")?)),
        [] => Err(CmdError::BadWindow {
            detail: "missing window clause: time <now> <range> | last <n>",
        }),
        _ => Err(CmdError::BadWindow {
            detail: "expected: time <now> <range> | last <n>",
        }),
    }
}

fn threshold(tok: &str) -> Result<Threshold, CmdError> {
    let bad = || CmdError::BadThreshold {
        got: truncate_for_display(tok),
    };
    if let Some(rest) = tok.strip_prefix("rel:") {
        let phi: f64 = rest.parse().map_err(|_| bad())?;
        if !(phi > 0.0 && phi < 1.0) {
            return Err(bad());
        }
        Ok(Threshold::Relative(phi))
    } else if let Some(rest) = tok.strip_prefix("abs:") {
        let n: f64 = rest.parse().map_err(|_| bad())?;
        if !(n.is_finite() && n >= 0.0) {
            return Err(bad());
        }
        Ok(Threshold::Absolute(n))
    } else {
        Err(bad())
    }
}

/// Parse a standing-view window clause: `time <range>` or `last <n>`.
/// Unlike an on-demand window there is no `now` — the view pins `now` to
/// the sketch's write clock at every maintenance round.
fn view_window(toks: &[&str]) -> Result<ViewWindow, CmdError> {
    match toks {
        ["time", range] => Ok(ViewWindow::Time {
            range: num(range, "window range")?,
        }),
        ["last", n] => Ok(ViewWindow::Last {
            n: num(n, "window last_n")?,
        }),
        _ => Err(CmdError::BadWindow {
            detail: "expected: time <range> | last <n> (views pin `now` themselves)",
        }),
    }
}

/// Parse a view-definition tail: `<name> <kind> [args…] <window>`. This
/// is both the `VIEW CREATE` argument grammar and the form view specs are
/// persisted in (the snapshot manifest stores exactly this string, so a
/// restored definition re-enters through the same parser).
///
/// Kinds: `hh <key> <rel:φ|abs:n>`, `threshold <key> <point <item>|
/// self_join|total> <limit>`, `topk <k>`.
///
/// # Errors
/// A [`CmdError`]; never panics.
pub fn parse_view_def(toks: &[&str]) -> Result<ViewDef<String>, CmdError> {
    let arity = |expected| CmdError::WrongArity {
        verb: "VIEW CREATE",
        expected,
    };
    if toks.len() < 2 {
        return Err(arity("<name> <hh|threshold|topk> [args…] <window>"));
    }
    let name = key(toks[0])?;
    match toks[1] {
        "hh" => {
            if toks.len() < 4 {
                return Err(arity("<name> hh <key> <rel:φ|abs:n> <window>"));
            }
            Ok(ViewDef {
                name,
                key: Some(key(toks[2])?),
                query: StandingQuery::HeavyHitters {
                    threshold: threshold(toks[3])?,
                },
                window: view_window(&toks[4..])?,
            })
        }
        "threshold" => {
            if toks.len() < 4 {
                return Err(arity(
                    "<name> threshold <key> <point <item>|self_join|total> <limit> <window>",
                ));
            }
            let target = key(toks[2])?;
            let (query, rest) = match toks[3] {
                "point" => {
                    if toks.len() < 5 {
                        return Err(arity(
                            "<name> threshold <key> point <item> <limit> <window>",
                        ));
                    }
                    (
                        ScalarQuery::Point {
                            item: num(toks[4], "item")?,
                        },
                        &toks[5..],
                    )
                }
                "self_join" => (ScalarQuery::SelfJoin, &toks[4..]),
                "total" => (ScalarQuery::Total, &toks[4..]),
                other => {
                    return Err(CmdError::UnknownVerb {
                        verb: format!("VIEW CREATE threshold {}", truncate_for_display(other)),
                    })
                }
            };
            let [limit, window @ ..] = rest else {
                return Err(arity("<name> threshold <key> <query> <limit> <window>"));
            };
            let limit: f64 = num(limit, "limit")?;
            Ok(ViewDef {
                name,
                key: Some(target),
                query: StandingQuery::Threshold { query, limit },
                window: view_window(window)?,
            })
        }
        "topk" => {
            if toks.len() < 3 {
                return Err(arity("<name> topk <k> <window>"));
            }
            Ok(ViewDef {
                name,
                key: None,
                query: StandingQuery::TopK {
                    k: num(toks[2], "k")?,
                },
                window: view_window(&toks[3..])?,
            })
        }
        other => Err(CmdError::UnknownVerb {
            verb: format!("VIEW CREATE {}", truncate_for_display(other)),
        }),
    }
}

/// Render a definition back into its [`parse_view_def`] tail — the
/// persisted (manifest) and `VIEW LIST` form. Round-trips exactly: names
/// and keys are whitespace-free tokens and numbers use shortest
/// round-trip formatting.
pub fn wire_view_def(def: &ViewDef<String>) -> String {
    let window = match def.window {
        ViewWindow::Time { range } => format!("time {range}"),
        ViewWindow::Last { n } => format!("last {n}"),
    };
    match &def.query {
        StandingQuery::HeavyHitters { threshold } => {
            let threshold = match threshold {
                Threshold::Relative(phi) => format!("rel:{phi:?}"),
                Threshold::Absolute(n) => format!("abs:{n:?}"),
            };
            format!(
                "{} hh {} {threshold} {window}",
                def.name,
                def.key.as_deref().unwrap_or("?")
            )
        }
        StandingQuery::Threshold { query, limit } => {
            let query = match query {
                ScalarQuery::Point { item } => format!("point {item}"),
                ScalarQuery::SelfJoin => "self_join".to_string(),
                ScalarQuery::Total => "total".to_string(),
            };
            format!(
                "{} threshold {} {query} {limit:?} {window}",
                def.name,
                def.key.as_deref().unwrap_or("?")
            )
        }
        StandingQuery::TopK { k } => format!("{} topk {k} {window}", def.name),
    }
}

/// Parse the `(ts, item, count)` tail shared by `STORE` and batch data
/// lines.
fn event_tail(toks: &[&str], verb: &'static str) -> Result<(u64, u64, u64), CmdError> {
    let (ts_tok, item_tok, count_tok) = match toks {
        [ts, item] => (*ts, *item, None),
        [ts, item, count] => (*ts, *item, Some(*count)),
        _ => {
            return Err(CmdError::WrongArity {
                verb,
                expected: "<key> <ts> <item> [<count>]",
            })
        }
    };
    let ts = num(ts_tok, "ts")?;
    let item = num(item_tok, "item")?;
    let count: u64 = match count_tok {
        None => 1,
        Some(tok) => num(tok, "count")?,
    };
    if count == 0 || count > MAX_COUNT {
        return Err(CmdError::BadNumber {
            what: "count",
            got: truncate_for_display(count_tok.unwrap_or("0")),
        });
    }
    Ok((ts, item, count))
}

/// Parse one command line (everything except `BATCH` body lines).
///
/// # Errors
/// A [`CmdError`] describing exactly what was malformed; never panics.
pub fn parse_command(line: &[u8]) -> Result<Command, CmdError> {
    let toks = tokens(line)?;
    match toks[0] {
        "PING" => match toks.len() {
            1 => Ok(Command::Ping),
            _ => Err(CmdError::WrongArity {
                verb: "PING",
                expected: "no arguments",
            }),
        },
        "STORE" => {
            if toks.len() < 2 {
                return Err(CmdError::WrongArity {
                    verb: "STORE",
                    expected: "<key> <ts> <item> [<count>]",
                });
            }
            let key = key(toks[1])?;
            let (ts, item, count) = event_tail(&toks[2..], "STORE")?;
            Ok(Command::Store {
                key,
                ts,
                item,
                count,
            })
        }
        "BATCH" => {
            if toks.len() != 2 {
                return Err(CmdError::WrongArity {
                    verb: "BATCH",
                    expected: "<n>",
                });
            }
            let n: usize = num(toks[1], "batch size")?;
            if n == 0 {
                return Err(CmdError::EmptyBatch);
            }
            if n > MAX_BATCH {
                return Err(CmdError::BatchTooLarge {
                    got: n,
                    limit: MAX_BATCH,
                });
            }
            Ok(Command::Batch { n })
        }
        "QUERY" => {
            if toks.len() < 3 {
                return Err(CmdError::WrongArity {
                    verb: "QUERY",
                    expected: "<key> <kind> [args…] <window>",
                });
            }
            let key = key(toks[1])?;
            let (query, rest) = match toks[2] {
                "point" => {
                    if toks.len() < 4 {
                        return Err(CmdError::WrongArity {
                            verb: "QUERY",
                            expected: "<key> point <item> <window>",
                        });
                    }
                    (
                        OwnedQuery::Point {
                            item: num(toks[3], "item")?,
                        },
                        &toks[4..],
                    )
                }
                "self_join" => (OwnedQuery::SelfJoin, &toks[3..]),
                "range" => {
                    if toks.len() < 5 {
                        return Err(CmdError::WrongArity {
                            verb: "QUERY",
                            expected: "<key> range <lo> <hi> <window>",
                        });
                    }
                    (
                        OwnedQuery::Range {
                            lo: num(toks[3], "range lo")?,
                            hi: num(toks[4], "range hi")?,
                        },
                        &toks[5..],
                    )
                }
                "heavy_hitters" => {
                    if toks.len() < 4 {
                        return Err(CmdError::WrongArity {
                            verb: "QUERY",
                            expected: "<key> heavy_hitters <rel:φ|abs:n> <window>",
                        });
                    }
                    (
                        OwnedQuery::HeavyHitters {
                            threshold: threshold(toks[3])?,
                        },
                        &toks[4..],
                    )
                }
                "quantile" => {
                    if toks.len() < 4 {
                        return Err(CmdError::WrongArity {
                            verb: "QUERY",
                            expected: "<key> quantile <phi> <window>",
                        });
                    }
                    let phi: f64 = num(toks[3], "phi")?;
                    (OwnedQuery::Quantile { phi }, &toks[4..])
                }
                "total" => (OwnedQuery::Total, &toks[3..]),
                other => {
                    return Err(CmdError::UnknownVerb {
                        verb: format!("QUERY {}", truncate_for_display(other)),
                    })
                }
            };
            Ok(Command::Query {
                key,
                query,
                window: window(rest)?,
            })
        }
        "TOPK" => {
            if toks.len() < 2 {
                return Err(CmdError::WrongArity {
                    verb: "TOPK",
                    expected: "<k> <window>",
                });
            }
            let k: usize = num(toks[1], "k")?;
            if k == 0 {
                return Err(CmdError::BadNumber {
                    what: "k",
                    got: "0".to_string(),
                });
            }
            Ok(Command::TopK {
                k,
                window: window(&toks[2..])?,
            })
        }
        "STATS" => match toks.len() {
            1 => Ok(Command::Stats),
            _ => Err(CmdError::WrongArity {
                verb: "STATS",
                expected: "no arguments",
            }),
        },
        "FLUSH" => match toks.len() {
            2 => Ok(Command::Flush {
                ts: num(toks[1], "ts")?,
            }),
            _ => Err(CmdError::WrongArity {
                verb: "FLUSH",
                expected: "<ts>",
            }),
        },
        "SNAPSHOT" => {
            let incremental = match toks.len() {
                2 => false,
                3 => match toks[2] {
                    "full" => false,
                    "incr" => true,
                    _ => {
                        return Err(CmdError::WrongArity {
                            verb: "SNAPSHOT",
                            expected: "<dir> [full|incr]",
                        })
                    }
                },
                _ => {
                    return Err(CmdError::WrongArity {
                        verb: "SNAPSHOT",
                        expected: "<dir> [full|incr]",
                    })
                }
            };
            Ok(Command::Snapshot {
                dir: toks[1].to_string(),
                incremental,
            })
        }
        "VIEW" => {
            if toks.len() < 2 {
                return Err(CmdError::WrongArity {
                    verb: "VIEW",
                    expected: "CREATE|READ|DROP|LIST …",
                });
            }
            match toks[1] {
                "CREATE" => Ok(Command::ViewCreate {
                    def: parse_view_def(&toks[2..])?,
                }),
                "READ" => match toks.len() {
                    3 => Ok(Command::ViewRead {
                        name: key(toks[2])?,
                    }),
                    _ => Err(CmdError::WrongArity {
                        verb: "VIEW READ",
                        expected: "<name>",
                    }),
                },
                "DROP" => match toks.len() {
                    3 => Ok(Command::ViewDrop {
                        name: key(toks[2])?,
                    }),
                    _ => Err(CmdError::WrongArity {
                        verb: "VIEW DROP",
                        expected: "<name>",
                    }),
                },
                "LIST" => match toks.len() {
                    2 => Ok(Command::ViewList),
                    _ => Err(CmdError::WrongArity {
                        verb: "VIEW LIST",
                        expected: "no arguments",
                    }),
                },
                other => Err(CmdError::UnknownVerb {
                    verb: format!("VIEW {}", truncate_for_display(other)),
                }),
            }
        }
        "SUBSCRIBE" => match toks.len() {
            2 => Ok(Command::Subscribe {
                view: key(toks[1])?,
            }),
            _ => Err(CmdError::WrongArity {
                verb: "SUBSCRIBE",
                expected: "<view>",
            }),
        },
        "SHUTDOWN" => match toks.len() {
            1 => Ok(Command::Shutdown),
            _ => Err(CmdError::WrongArity {
                verb: "SHUTDOWN",
                expected: "no arguments",
            }),
        },
        other => Err(CmdError::UnknownVerb {
            verb: truncate_for_display(other),
        }),
    }
}

/// Parse one `BATCH` body line: `<key> <ts> <item> [<count>]`.
///
/// # Errors
/// A [`CmdError`]; never panics.
pub fn parse_data_line(line: &[u8]) -> Result<(String, StreamEvent, u64), CmdError> {
    let toks = tokens(line)?;
    if toks.len() < 3 {
        return Err(CmdError::WrongArity {
            verb: "BATCH line",
            expected: "<key> <ts> <item> [<count>]",
        });
    }
    let key = key(toks[0])?;
    let (ts, item, count) = event_tail(&toks[1..], "BATCH line")?;
    Ok((key, StreamEvent::new(item, ts), count))
}
