//! JSON response rendering — one object per line, hand-rolled (the
//! container has no JSON dependency).
//!
//! Numbers are rendered with Rust's shortest-round-trip `f64` formatting,
//! so a response is **bit-identical** to the in-process estimate it
//! reports: the end-to-end test renders the same [`Answer`] through the
//! same functions on both sides and compares strings. Non-finite values
//! (which no correct backend produces) render as `null` rather than
//! emitting invalid JSON.

use ecm::{Answer, Estimate, QueryError};

use crate::engine::{ShardStats, SnapshotReport};

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-round-trip rendering of a finite `f64`; `null` otherwise.
fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn estimate(e: &Estimate) -> String {
    let guarantee = match e.guarantee {
        Some(g) => format!(
            "{{\"epsilon\":{},\"delta\":{}}}",
            float(g.epsilon),
            float(g.delta)
        ),
        None => "null".to_string(),
    };
    format!("\"value\":{},\"guarantee\":{}", float(e.value), guarantee)
}

/// `{"ok":false,...}` with a machine-readable code and a human detail.
pub fn error(code: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape(code),
        escape(detail)
    )
}

/// A [`QueryError`] as a response line.
pub fn query_error(e: &QueryError) -> String {
    error("query", &e.to_string())
}

/// Reply to `PING`.
pub fn pong() -> String {
    "{\"ok\":true,\"pong\":true}".to_string()
}

/// Ack for `STORE` / `BATCH`: `n` event occurrences accepted.
pub fn ingested(n: u64) -> String {
    format!("{{\"ok\":true,\"ingested\":{n}}}")
}

/// Ack for `FLUSH`.
pub fn flushed(ts: u64) -> String {
    format!("{{\"ok\":true,\"advanced_to\":{ts}}}")
}

/// Ack for `SHUTDOWN` (sent before the socket closes).
pub fn shutdown() -> String {
    "{\"ok\":true,\"shutdown\":true}".to_string()
}

/// A query [`Answer`] as a response line; `query` is the wire verb.
pub fn answer(query: &str, a: &Answer) -> String {
    match a {
        Answer::Value(e) => format!(
            "{{\"ok\":true,\"query\":\"{}\",{}}}",
            escape(query),
            estimate(e)
        ),
        Answer::HeavyHitters(hits) => {
            let rows: Vec<String> = hits
                .iter()
                .map(|(k, e)| format!("{{\"key\":{k},{}}}", estimate(e)))
                .collect();
            format!(
                "{{\"ok\":true,\"query\":\"{}\",\"hitters\":[{}]}}",
                escape(query),
                rows.join(",")
            )
        }
        Answer::Quantile(k) => {
            let key = match k {
                Some(k) => k.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"ok\":true,\"query\":\"{}\",\"key\":{key}}}",
                escape(query)
            )
        }
    }
}

/// A merged `TOPK` ranking as a response line.
pub fn topk(rows: &[(String, f64)]) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{}\",\"value\":{}}}", escape(k), float(*v)))
        .collect();
    format!("{{\"ok\":true,\"topk\":[{}]}}", rows.join(","))
}

/// Per-shard `STATS` as a response line, plus fleet-wide totals.
pub fn stats(rows: &[ShardStats]) -> String {
    let keys: usize = rows.iter().map(|s| s.keys).sum();
    let memory: usize = rows.iter().map(|s| s.memory_bytes).sum();
    let ingested: u64 = rows.iter().map(|s| s.ingested).sum();
    let wal_bytes: u64 = rows.iter().map(|s| s.wal_bytes).sum();
    let compactions: u64 = rows.iter().map(|s| s.compactions).sum();
    let shards: Vec<String> = rows
        .iter()
        .map(|s| {
            format!(
                "{{\"shard\":{},\"keys\":{},\"memory_bytes\":{},\"ingested\":{},\
                 \"checkpoint_seq\":{},\"wal_bytes\":{},\"wal_segments\":{},\
                 \"compactions\":{}}}",
                s.shard,
                s.keys,
                s.memory_bytes,
                s.ingested,
                s.checkpoint_seq,
                s.wal_bytes,
                s.wal_segments,
                s.compactions
            )
        })
        .collect();
    format!(
        "{{\"ok\":true,\"keys\":{keys},\"memory_bytes\":{memory},\"ingested\":{ingested},\
         \"wal_bytes\":{wal_bytes},\"compactions\":{compactions},\"shards\":[{}]}}",
        shards.join(",")
    )
}

/// A completed `SNAPSHOT` as a response line.
pub fn snapshot(r: &SnapshotReport) -> String {
    format!(
        "{{\"ok\":true,\"snapshot\":\"{}\",\"dir\":\"{}\",\"shards\":{},\"bytes\":{}}}",
        if r.incremental { "incr" } else { "full" },
        escape(&r.dir),
        r.shards,
        r.bytes
    )
}

/// Whether a response line reports success (cheap client-side check that
/// avoids a JSON parser).
pub fn is_ok(resp: &str) -> bool {
    resp.starts_with("{\"ok\":true")
}
