//! JSON response rendering — one object per line, hand-rolled (the
//! container has no JSON dependency).
//!
//! Numbers are rendered with Rust's shortest-round-trip `f64` formatting,
//! so a response is **bit-identical** to the in-process estimate it
//! reports: the end-to-end test renders the same [`Answer`] through the
//! same functions on both sides and compares strings. Non-finite values
//! (which no correct backend produces) render as `null` rather than
//! emitting invalid JSON.

use ecm::{Answer, Estimate, QueryError, ViewAnswer, ViewError, ViewEvent, ViewReadout};

use crate::engine::{ShardStatus, SnapshotReport, ViewsSummary};

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-round-trip rendering of a finite `f64`; `null` otherwise.
fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn estimate(e: &Estimate) -> String {
    let guarantee = match e.guarantee {
        Some(g) => format!(
            "{{\"epsilon\":{},\"delta\":{}}}",
            float(g.epsilon),
            float(g.delta)
        ),
        None => "null".to_string(),
    };
    format!("\"value\":{},\"guarantee\":{}", float(e.value), guarantee)
}

/// `{"ok":false,...}` with a machine-readable code and a human detail.
pub fn error(code: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape(code),
        escape(detail)
    )
}

/// A [`QueryError`] as a response line.
pub fn query_error(e: &QueryError) -> String {
    error("query", &e.to_string())
}

/// `{"ok":false,...}` for a transient failure the client may retry:
/// carries `"retryable":true` and a suggested backoff so a generic
/// client needs no per-code table.
pub fn retry_error(code: &str, detail: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\",\"retryable\":true,\
         \"retry_after_ms\":{retry_after_ms}}}",
        escape(code),
        escape(detail)
    )
}

/// Reply to `PING`.
pub fn pong() -> String {
    "{\"ok\":true,\"pong\":true}".to_string()
}

/// Ack for `STORE` / `BATCH`: `n` event occurrences accepted.
pub fn ingested(n: u64) -> String {
    format!("{{\"ok\":true,\"ingested\":{n}}}")
}

/// Ack for `FLUSH`.
pub fn flushed(ts: u64) -> String {
    format!("{{\"ok\":true,\"advanced_to\":{ts}}}")
}

/// Ack for `SHUTDOWN` (sent before the socket closes).
pub fn shutdown() -> String {
    "{\"ok\":true,\"shutdown\":true}".to_string()
}

/// A query [`Answer`] as a response line; `query` is the wire verb.
pub fn answer(query: &str, a: &Answer) -> String {
    match a {
        Answer::Value(e) => format!(
            "{{\"ok\":true,\"query\":\"{}\",{}}}",
            escape(query),
            estimate(e)
        ),
        Answer::HeavyHitters(hits) => {
            let rows: Vec<String> = hits
                .iter()
                .map(|(k, e)| format!("{{\"key\":{k},{}}}", estimate(e)))
                .collect();
            format!(
                "{{\"ok\":true,\"query\":\"{}\",\"hitters\":[{}]}}",
                escape(query),
                rows.join(",")
            )
        }
        Answer::Quantile(k) => {
            let key = match k {
                Some(k) => k.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"ok\":true,\"query\":\"{}\",\"key\":{key}}}",
                escape(query)
            )
        }
    }
}

/// A query [`Answer`] with its consistency point: [`answer`] plus a
/// trailing `"now"` field carrying the owning shard's write clock (the
/// maximum applied tick) at the moment the answer was computed. The
/// clock is a pure function of the acked event multiset, so two servers
/// that acked the same events render byte-identical responses — which is
/// what lets the differential and chaos suites keep comparing whole
/// strings.
pub fn answer_at(query: &str, a: &Answer, now: u64) -> String {
    let base = answer(query, a);
    debug_assert!(base.ends_with('}'));
    format!("{},\"now\":{now}}}", &base[..base.len() - 1])
}

/// A merged `TOPK` ranking as a response line.
pub fn topk(rows: &[(String, f64)]) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{}\",\"value\":{}}}", escape(k), float(*v)))
        .collect();
    format!("{{\"ok\":true,\"topk\":[{}]}}", rows.join(","))
}

/// Per-shard `STATS` as a response line, plus fleet-wide totals and the
/// standing-view counters. Every shard row carries its supervision
/// `health` block; the worker-reported numbers are present only when the
/// worker could answer (a restarting or dead shard still gets a row, so
/// the operator sees *that* it is down and how often it has been). The
/// fleet totals sum over the shards that answered.
pub fn stats(rows: &[ShardStatus], views: &ViewsSummary) -> String {
    let answered = || rows.iter().filter_map(|r| r.stats.as_ref());
    let keys: usize = answered().map(|s| s.keys).sum();
    let memory: usize = answered().map(|s| s.memory_bytes).sum();
    let ingested: u64 = answered().map(|s| s.ingested).sum();
    let wal_bytes: u64 = answered().map(|s| s.wal_bytes).sum();
    let compactions: u64 = answered().map(|s| s.compactions).sum();
    let shards: Vec<String> = rows
        .iter()
        .map(|r| {
            let h = &r.health;
            let health = format!(
                "\"health\":{{\"state\":\"{}\",\"restarts\":{},\"last_restart_ms\":{},\
                 \"mailbox_hwm\":{},\"shed_requests\":{},\"published_reads\":{},\
                 \"fallback_reads\":{}}}",
                h.state,
                h.restarts,
                h.last_restart_ms,
                h.mailbox_hwm,
                h.shed_requests,
                h.published_reads,
                h.fallback_reads
            );
            match &r.stats {
                Some(s) => format!(
                    "{{\"shard\":{},{health},\"keys\":{},\"memory_bytes\":{},\"ingested\":{},\
                     \"checkpoint_seq\":{},\"wal_bytes\":{},\"wal_segments\":{},\
                     \"compactions\":{},\"views\":{},\"view_maintenance\":{}}}",
                    r.shard,
                    s.keys,
                    s.memory_bytes,
                    s.ingested,
                    s.checkpoint_seq,
                    s.wal_bytes,
                    s.wal_segments,
                    s.compactions,
                    s.views,
                    s.view_maintenance
                ),
                None => format!("{{\"shard\":{},{health}}}", r.shard),
            }
        })
        .collect();
    format!(
        "{{\"ok\":true,\"keys\":{keys},\"memory_bytes\":{memory},\"ingested\":{ingested},\
         \"wal_bytes\":{wal_bytes},\"compactions\":{compactions},\
         \"views\":{{\"registered\":{},\"maintenance\":{},\"subscribers\":{},\
         \"dropped_notifications\":{}}},\"shards\":[{}]}}",
        views.registered,
        views.maintenance,
        views.subscribers,
        views.dropped,
        shards.join(",")
    )
}

/// A completed `SNAPSHOT` as a response line.
pub fn snapshot(r: &SnapshotReport) -> String {
    format!(
        "{{\"ok\":true,\"snapshot\":\"{}\",\"dir\":\"{}\",\"shards\":{},\"bytes\":{}}}",
        if r.incremental { "incr" } else { "full" },
        escape(&r.dir),
        r.shards,
        r.bytes
    )
}

/// Heavy-hitter rows — the same rendering [`answer`] uses, so a view
/// readout's hitters are string-identical to the on-demand query's.
fn hitter_rows(hits: &[(u64, Estimate)]) -> String {
    let rows: Vec<String> = hits
        .iter()
        .map(|(k, e)| format!("{{\"key\":{k},{}}}", estimate(e)))
        .collect();
    rows.join(",")
}

/// Ranking rows — the same rendering [`topk`] uses.
fn ranking_rows(rows: &[(String, f64)]) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{}\",\"value\":{}}}", escape(k), float(*v)))
        .collect();
    rows.join(",")
}

/// Ack for `VIEW CREATE`.
pub fn view_created(name: &str) -> String {
    format!(
        "{{\"ok\":true,\"view\":\"{}\",\"created\":true}}",
        escape(name)
    )
}

/// Ack for `VIEW DROP`.
pub fn view_dropped(name: &str) -> String {
    format!(
        "{{\"ok\":true,\"view\":\"{}\",\"dropped\":true}}",
        escape(name)
    )
}

/// `VIEW LIST` as a response line: `(name, kind, wire definition)` rows.
pub fn view_list(rows: &[(String, &'static str, String)]) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|(name, kind, def)| {
            format!(
                "{{\"name\":\"{}\",\"kind\":\"{kind}\",\"def\":\"{}\"}}",
                escape(name),
                escape(def)
            )
        })
        .collect();
    format!("{{\"ok\":true,\"views\":[{}]}}", rows.join(","))
}

/// A `VIEW READ` readout as a response line. The answer body uses the
/// same estimate / row rendering as the on-demand [`answer`] and
/// [`topk`] responses — the differential suite compares the substrings.
pub fn view_read(name: &str, r: &ViewReadout<String>) -> String {
    let body = match &r.answer {
        ViewAnswer::Scalar { estimate: e, above } => format!("{},\"above\":{above}", estimate(e)),
        ViewAnswer::Hitters(hits) => format!("\"hitters\":[{}]", hitter_rows(hits)),
        ViewAnswer::Ranking(rows) => format!("\"topk\":[{}]", ranking_rows(rows)),
    };
    format!(
        "{{\"ok\":true,\"view\":\"{}\",\"kind\":\"{}\",{body},\"now\":{},\"seq\":{}}}",
        escape(name),
        r.answer.kind(),
        r.now,
        r.seq
    )
}

/// A [`ViewError`] as a response line.
pub fn view_error(e: &ViewError) -> String {
    error(e.code(), &e.to_string())
}

/// Ack for `SUBSCRIBE` (sent before the connection turns push-only).
pub fn subscribed(view: &str) -> String {
    format!("{{\"ok\":true,\"subscribed\":\"{}\"}}", escape(view))
}

/// A maintenance notification as a push line.
pub fn view_event(e: &ViewEvent<String>) -> String {
    match e {
        ViewEvent::ThresholdCrossed {
            name,
            above,
            estimate: est,
            now,
            seq,
        } => format!(
            "{{\"ok\":true,\"notify\":\"threshold\",\"view\":\"{}\",\"above\":{above},{},\
             \"now\":{now},\"seq\":{seq}}}",
            escape(name),
            estimate(est)
        ),
        ViewEvent::HittersChanged {
            name,
            entered,
            left,
            hitters,
            now,
            seq,
        } => {
            let entered: Vec<String> = entered.iter().map(u64::to_string).collect();
            let left: Vec<String> = left.iter().map(u64::to_string).collect();
            format!(
                "{{\"ok\":true,\"notify\":\"heavy_hitters\",\"view\":\"{}\",\
                 \"entered\":[{}],\"left\":[{}],\"hitters\":[{}],\"now\":{now},\"seq\":{seq}}}",
                escape(name),
                entered.join(","),
                left.join(","),
                hitter_rows(hitters)
            )
        }
        ViewEvent::RankingChanged {
            name,
            ranking,
            now,
            seq,
        } => format!(
            "{{\"ok\":true,\"notify\":\"topk\",\"view\":\"{}\",\"topk\":[{}],\
             \"now\":{now},\"seq\":{seq}}}",
            escape(name),
            ranking_rows(ranking)
        ),
    }
}

/// The marker a subscriber sees when a shard serving its view died and
/// was rebuilt: notifications between the crash and the restart are gone
/// (the view's state is restored, its in-flight pushes are not), so the
/// marker is published *before* the replacement worker's first
/// post-restart notification.
pub fn restarted(view: &str, shard: usize) -> String {
    format!(
        "{{\"ok\":true,\"notify\":\"restarted\",\"view\":\"{}\",\"shard\":{shard}}}",
        escape(view)
    )
}

/// The typed gap record a slow subscriber sees in place of the `count`
/// notifications its full outbox lost.
pub fn drop_marker(count: u64, view: &str) -> String {
    format!(
        "{{\"ok\":true,\"notify\":\"dropped\",\"view\":\"{}\",\"count\":{count}}}",
        escape(view)
    )
}

/// The idle keep-alive line on a subscription stream (lets the server
/// detect a dead peer by write failure).
pub fn heartbeat() -> String {
    "{\"ok\":true,\"notify\":\"ping\"}".to_string()
}

/// Whether a response line reports success (cheap client-side check that
/// avoids a JSON parser).
pub fn is_ok(resp: &str) -> bool {
    resp.starts_with("{\"ok\":true")
}
