//! Chaos test: a mixed ingest+query workload over real TCP while a seeded
//! fault plan kills every shard worker repeatedly and fails a slice of WAL
//! appends. The contract under test is the whole PR in one sentence —
//! **every acked write survives, exactly once, and nothing hangs**:
//!
//! - the supervisor brings each killed shard back from checkpoint + WAL
//!   tail without disturbing the other shards;
//! - admission control and the client's retry loop turn the blips into
//!   bounded latency, never into deadline overruns;
//! - the final state is bit-identical to a fault-free oracle server fed
//!   exactly the acked batches.
//!
//! Batches are single-key, so each batch lands on exactly one shard and is
//! atomic: an errored batch applied nowhere (shard panics fire before the
//! WAL append; injected WAL errors fire before any byte), an acked batch
//! applied exactly once. That is what makes the oracle exact.
//!
//! `CHAOS_FULL=1` scales the workload up (CI runs that in the nightly
//! lane); the default is a smoke-sized run.
#![cfg(any(debug_assertions, feature = "fault-injection"))]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use sketch_server::protocol::response::is_ok;
use sketch_server::{Client, RetryPolicy, Server, ServerConfig, SketchSpec};

const SHARDS: usize = 3;
const CONNS: usize = 4;
const KEYS: usize = 24;
const BATCH_LEN: u64 = 40;
const ITEMS: u64 = 8;
/// Ceiling every single call must return under (the policy's deadline is
/// 15 s; the slack covers scheduler noise, not hangs).
const CALL_CEILING: Duration = Duration::from_secs(20);

fn batches_per_key() -> usize {
    match std::env::var("CHAOS_FULL") {
        Ok(v) if v != "0" => 60,
        _ => 12,
    }
}

fn spec() -> SketchSpec {
    SketchSpec::time(1_000_000).epsilon(0.1).seed(11)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sketchd-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        call_deadline: Duration::from_secs(15),
        max_attempts: 10,
        // The plan restarts each shard several times; a per-connection
        // budget sized for one blip would starve the later ones.
        retry_budget: 64.0,
        ..RetryPolicy::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client.set_retry_policy(policy());
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    client
}

/// The `b`-th batch for `key`: `BATCH_LEN` events at strictly increasing
/// ticks, items cycling over a small universe.
fn batch_lines(key: &str, b: usize) -> Vec<String> {
    (0..BATCH_LEN)
        .map(|i| {
            let ts = b as u64 * BATCH_LEN + i + 1;
            format!("{key} {ts} {}", (b as u64 + i) % ITEMS)
        })
        .collect()
}

/// Every `"restarts":N` value in a STATS response, in shard order.
fn restart_counts(stats: &str) -> Vec<u64> {
    stats
        .split("\"restarts\":")
        .skip(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<u64>()
                .expect("restarts value")
        })
        .collect()
}

/// Wait until every shard reports `"state":"up"` — the supervisor has no
/// respawn in flight — so a graceful SHUTDOWN cannot race a rebuild.
fn quiesce(client: &mut Client) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.call_retry("STATS").expect("stats");
        if is_ok(&stats) && stats.matches("\"state\":\"up\"").count() == SHARDS {
            return stats;
        }
        assert!(Instant::now() < deadline, "shards never quiesced: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn acked_writes_survive_chaos_bit_identically() {
    let dir = scratch("main");
    // Every shard worker dies at its 15th message (per life, so it keeps
    // dying as long as traffic flows), 2% of WAL appends fail cleanly, and
    // checkpoints run slow. Seeded: the same schedule every run.
    let plan = "shard:panic@seq=15;wal_append:err@0.02;snapshot:delay=2ms;seed=1234";
    let cfg = ServerConfig::new(spec())
        .shards(SHARDS)
        .snapshot_dir(&dir)
        .durability(true)
        .admission_timeout(Duration::from_secs(10))
        .fault_plan(plan);
    let server = Server::start(cfg).expect("chaos server");
    let addr = server.local_addr();
    let batches = batches_per_key();

    // Mixed workload: CONNS ingest threads own disjoint key sets (per-key
    // tick order needs one writer per key), plus one query thread hammering
    // reads the whole time. Every call is bounded by the retry policy's
    // deadline and asserted against CALL_CEILING.
    let stop_queries = AtomicBool::new(false);
    let (acked, reads) = std::thread::scope(|scope| {
        let querier = scope.spawn(|| {
            let mut client = connect(addr);
            let mut okay = 0u64;
            while !stop_queries.load(Ordering::SeqCst) {
                let cmd = format!("QUERY t-0 total time {} {}", 1_000_000, 1_000_000);
                let t0 = Instant::now();
                let resp = client.call_retry(&cmd).expect("query call");
                assert!(t0.elapsed() < CALL_CEILING, "query overran its deadline");
                if is_ok(&resp) {
                    okay += 1;
                }
            }
            okay
        });
        let mut workers = Vec::new();
        for conn in 0..CONNS {
            workers.push(scope.spawn(move || {
                let mut client = connect(addr);
                // (key, batch index) pairs this connection got acked, in
                // send order — the oracle's exact replay script.
                let mut acked: Vec<(usize, usize)> = Vec::new();
                for b in 0..batches {
                    for key in (conn..KEYS).step_by(CONNS) {
                        let lines = batch_lines(&format!("t-{key}"), b);
                        let t0 = Instant::now();
                        let resp = client.batch_retry(&lines).expect("batch call");
                        assert!(t0.elapsed() < CALL_CEILING, "batch overran its deadline");
                        if is_ok(&resp) {
                            acked.push((key, b));
                        }
                    }
                }
                acked
            }));
        }
        let mut acked = Vec::new();
        for w in workers {
            acked.push(w.join().expect("ingest worker"));
        }
        stop_queries.store(true, Ordering::SeqCst);
        let reads = querier.join().expect("query worker");
        (acked, reads)
    });
    assert!(reads > 0, "the query thread never got an answer through");
    let total_acked: usize = acked.iter().map(Vec::len).sum();
    let total_sent = batches * KEYS;
    assert!(
        total_acked * 2 > total_sent,
        "chaos shed more than half the workload ({total_acked}/{total_sent} acked) — \
         the plan is too hot to mean anything"
    );

    // The plan provably bit every shard: each health block counts its
    // supervised restarts.
    let mut client = connect(addr);
    let stats = quiesce(&mut client);
    let restarts = restart_counts(&stats);
    assert_eq!(
        restarts.len(),
        SHARDS,
        "one health block per shard: {stats}"
    );
    assert!(
        restarts.iter().all(|&r| r >= 1),
        "every shard must have been killed and supervised back: {restarts:?}"
    );

    // Oracle: a fault-free server fed exactly the acked batches, in each
    // connection's send order (per-key order is what matters, and each key
    // had one writer).
    let oracle = Server::start(ServerConfig::new(spec()).shards(SHARDS)).expect("oracle");
    let mut feeder = Client::connect(oracle.local_addr()).expect("oracle connect");
    for conn_acks in &acked {
        for &(key, b) in conn_acks {
            let ack = feeder
                .batch(&batch_lines(&format!("t-{key}"), b))
                .expect("oracle batch");
            assert!(is_ok(&ack), "oracle rejected a batch: {ack}");
        }
    }

    // Bit-identity: every query a client could ask about the acked history
    // answers the same bytes on both servers.
    let now = batches as u64 * BATCH_LEN;
    let keys_acked: std::collections::BTreeSet<usize> = acked
        .iter()
        .flat_map(|v| v.iter().map(|&(key, _)| key))
        .collect();
    assert!(!keys_acked.is_empty(), "no key got anything acked");
    for &key in &keys_acked {
        let mut cmds: Vec<String> = (0..ITEMS)
            .map(|item| format!("QUERY t-{key} point {item} time {now} {now}"))
            .collect();
        cmds.push(format!("QUERY t-{key} total time {now} {now}"));
        cmds.push(format!("QUERY t-{key} self_join time {now} {now}"));
        for cmd in cmds {
            let chaotic = client.call_retry(&cmd).expect("chaos query");
            assert!(is_ok(&chaotic), "chaos server refused {cmd}: {chaotic}");
            let truth = feeder.call(&cmd).expect("oracle query");
            assert_eq!(chaotic, truth, "divergence on {cmd}");
        }
    }

    // Both servers still shut down gracefully (the chaos one re-quiesced
    // first: the comparison queries above can themselves trip the plan).
    quiesce(&mut client);
    let bye = client.call_retry("SHUTDOWN").expect("shutdown");
    assert!(is_ok(&bye), "shutdown rejected: {bye}");
    server.join();
    let bye = feeder.call("SHUTDOWN").expect("oracle shutdown");
    assert!(is_ok(&bye), "oracle shutdown rejected: {bye}");
    oracle.join();

    let _ = std::fs::remove_dir_all(&dir);
}
