//! Satellite regression for the poisoned-mutex crash cascade: a
//! connection handler that panics used to poison the shared registries,
//! and every later `.expect("handlers")` / `.expect("conns")` turned one
//! bad connection into a dead server. This file (its own process, so the
//! `SKETCHD_TEST_PANIC` arming cannot leak into other suites) injects a
//! panic **while the handler holds the connection registry** and proves
//! the server keeps serving, keeps accepting new connections (no
//! connection-slot leak), and still shuts down gracefully.

use std::time::Duration;

use sketch_server::protocol::response;
use sketch_server::{Client, Server, ServerConfig, SketchSpec};

const MAX_CONNS: usize = 3;

fn start() -> Server {
    let cfg = ServerConfig::new(SketchSpec::time(10_000).epsilon(0.2).seed(5))
        .shards(2)
        .max_connections(MAX_CONNS)
        .read_timeout(Duration::from_secs(5));
    Server::start(cfg).expect("server starts")
}

fn connect(server: &Server) -> Client {
    let client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    client
}

/// Crash one handler: the connection dies (EOF or read error), the server
/// must not.
fn crash_a_handler(server: &Server) {
    let mut victim = connect(server);
    victim.send("__PANIC__").expect("send");
    match victim.recv() {
        Err(_) => {}
        Ok(line) => assert!(line.is_empty(), "panicked handler answered: {line:?}"),
    }
}

#[test]
fn a_panicking_handler_leaves_the_server_serving() {
    // Arm the fault hook for this whole process; every connection of this
    // test runs under it.
    std::env::set_var("SKETCHD_TEST_PANIC", "1");
    let server = start();

    // A healthy connection opened BEFORE the crash keeps working after it
    // (the registries recover from the poison instead of cascading).
    let mut before = connect(&server);
    assert_eq!(before.call("PING").expect("ping"), response::pong());
    crash_a_handler(&server);
    assert_eq!(
        before.call("STORE user-1 10 42 1").expect("store"),
        response::ingested(1),
        "pre-crash connection must survive a sibling's panic"
    );
    drop(before);

    // New connections are accepted and served after the poison.
    let mut after = connect(&server);
    assert_eq!(after.call("PING").expect("ping"), response::pong());
    assert_eq!(
        after.call("STORE user-1 11 42 1").expect("store"),
        response::ingested(1)
    );
    drop(after);

    // The panicked handlers' slots were released: with a cap of 3, far
    // more than 3 sequential lives — including more crashes — all get
    // served. A leaked slot would turn these into typed refusals.
    for round in 0..3 * MAX_CONNS {
        crash_a_handler(&server);
        let mut probe = connect(&server);
        let resp = probe.call("PING").expect("ping after crash");
        assert_eq!(resp, response::pong(), "round {round}: {resp}");
    }

    // Graceful shutdown still works: the listener wakes, the handler
    // registry (poisoned many times over) is drained, join returns.
    let mut last = connect(&server);
    assert_eq!(
        last.call("SHUTDOWN").expect("shutdown"),
        response::shutdown()
    );
    server.join();
}
