//! Durability acceptance: a real `sketchd` process killed with SIGKILL
//! mid-life must come back serving answers **bit-identical** to an
//! in-process mirror of everything it acked — the write-ahead log, not
//! luck, carries the tail since the last checkpoint. Also pins the
//! compaction contract (the log stays bounded across checkpoint cycles)
//! and the config surface (durability without a snapshot dir is refused,
//! typed).

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::ToSocketAddrs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ecm::{Query, SketchStore};
use sketch_server::protocol::response;
use sketch_server::{Client, Server, ServerConfig, SketchSpec, StreamEvent, WindowSpec};
use stream_gen::SeededRng;

const WINDOW: u64 = 100_000;
const SHARDS: usize = 4;

fn spec() -> SketchSpec {
    SketchSpec::time(WINDOW)
        .epsilon(0.1)
        .delta(0.1)
        .seed(11)
        .hierarchy(8)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sketchd-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A seeded keyed trace over 8 tenants, items in the 2^8 hierarchy
/// universe, globally non-decreasing ticks.
fn trace(events: usize, seed: u64, base_ts: u64) -> Vec<(String, StreamEvent)> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut ts = base_ts;
    (0..events)
        .map(|_| {
            ts += rng.next_u64() % 3;
            let tenant = rng.next_u64() % 8;
            let item = rng.next_u64() % 256;
            (format!("user-{tenant}"), StreamEvent::new(item, ts))
        })
        .collect()
}

fn connect<A: ToSocketAddrs>(addr: A) -> Client {
    let client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

/// BATCH the whole trace; every frame must come back acked.
fn ingest_acked(client: &mut Client, events: &[(String, StreamEvent)]) {
    let lines: Vec<String> = events
        .iter()
        .map(|(key, e)| format!("{key} {} {} 1", e.ts, e.item))
        .collect();
    for chunk in lines.chunks(512) {
        let resp = client.batch(chunk).expect("BATCH");
        assert!(response::is_ok(&resp), "batch rejected: {resp}");
    }
}

/// Spawn the real `sketchd` binary, durability on, and parse the
/// ephemeral listen address off its first stdout line.
fn spawn_sketchd(dir: &Path, extra: &[(&str, String)]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sketchd"));
    cmd.env("SKETCHD_ADDR", "127.0.0.1:0")
        .env("SKETCHD_SHARDS", SHARDS.to_string())
        .env("SKETCHD_WINDOW", WINDOW.to_string())
        .env("SKETCHD_EPSILON", "0.1")
        .env("SKETCHD_DELTA", "0.1")
        .env("SKETCHD_SEED", "11")
        .env("SKETCHD_HIERARCHY_BITS", "8")
        .env("SKETCHD_SNAPSHOT_DIR", dir.display().to_string())
        .env("SKETCHD_DURABILITY", "1")
        .stdout(Stdio::piped());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn sketchd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read banner");
    // "sketchd listening on 127.0.0.1:PORT (4 shards, ...)"
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    assert!(line.contains("wal on"), "durability not armed: {line:?}");
    (child, addr)
}

/// The durable config an in-process life uses (so the test can also drive
/// graceful shutdown cheaply).
fn restart_config(dir: &Path) -> ServerConfig {
    ServerConfig::new(spec())
        .shards(SHARDS)
        .read_timeout(Duration::from_secs(10))
        .snapshot_dir(dir.to_path_buf())
        .durability(true)
}

/// Strip the trailing `"now"` consistency-point field off a served QUERY
/// response (the un-sharded mirror has no per-shard write clock to
/// render).
fn strip_now(served: &str) -> String {
    let Some(at) = served.rfind(",\"now\":") else {
        return served.to_string();
    };
    let digits = &served[at + ",\"now\":".len()..served.len() - 1];
    if served.ends_with('}') && !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
        format!("{}}}", &served[..at])
    } else {
        served.to_string()
    }
}

/// Served answers for every tenant must render byte-identically to the
/// mirror's answers through the same JSON path, across a spread of query
/// classes.
fn assert_bit_identical(client: &mut Client, store: &SketchStore<String>, now: u64) {
    let probes: Vec<(String, &'static str, Query<'static>)> = vec![
        (
            format!("total time {now} {WINDOW}"),
            "total",
            Query::total_arrivals(),
        ),
        (
            format!("self_join time {now} {WINDOW}"),
            "self_join",
            Query::self_join(),
        ),
        (
            format!("point 3 time {now} {WINDOW}"),
            "point",
            Query::point(3),
        ),
        (
            format!("point 200 time {now} {WINDOW}"),
            "point",
            Query::point(200),
        ),
        (
            format!("range 0 63 time {now} {WINDOW}"),
            "range",
            Query::range_sum(0, 63),
        ),
        (
            format!("heavy_hitters rel:0.05 time {now} {WINDOW}"),
            "heavy_hitters",
            Query::heavy_hitters(ecm::Threshold::Relative(0.05)),
        ),
        (
            format!("quantile 0.5 time {now} {WINDOW}"),
            "quantile",
            Query::quantile(0.5),
        ),
    ];
    for key in store.keys() {
        for (wire, name, query) in &probes {
            let served = client
                .call(&format!("QUERY {key} {wire}"))
                .expect("query round-trip");
            let expected = match store
                .query(&key, query, WindowSpec::time(now, WINDOW))
                .unwrap()
            {
                Ok(answer) => response::answer(name, &answer),
                Err(e) => response::query_error(&e),
            };
            assert_eq!(strip_now(&served), expected, "QUERY {key} {wire}");
        }
    }
}

#[test]
fn sigkill_mid_ingest_loses_no_acked_event() {
    let dir = scratch("kill9");
    let phase1 = trace(12_000, 0x4B39, 1);
    let now1 = phase1.last().unwrap().1.ts;

    let mut mirror: SketchStore<String> = SketchStore::new(spec()).unwrap();
    mirror.ingest(&phase1);

    // First life: the real binary, durability on. Every batch is acked,
    // which with the WAL means "on disk" — then the process dies with
    // SIGKILL, no drain, no checkpoint, no destructors.
    let (mut child, addr) = spawn_sketchd(&dir, &[]);
    let mut client = connect(addr.as_str());
    ingest_acked(&mut client, &phase1);
    child.kill().expect("SIGKILL sketchd");
    child.wait().expect("reap");

    // Second life: recovery = snapshot (none yet) + WAL replay. Every
    // acked event present, none duplicated — bit-identical to the mirror.
    // It keeps accepting durable writes, then dies hard again to prove
    // replay-then-append chains correctly.
    let (mut child, addr) = spawn_sketchd(&dir, &[]);
    let mut client = connect(addr.as_str());
    assert_bit_identical(&mut client, &mirror, now1);
    let phase2 = trace(4_000, 0xB0B, now1);
    let now2 = phase2.last().unwrap().1.ts;
    mirror.ingest(&phase2);
    ingest_acked(&mut client, &phase2);
    child.kill().expect("SIGKILL sketchd again");
    child.wait().expect("reap");

    // Third life: in-process, same directory — both phases present.
    let server = Server::start(restart_config(&dir)).expect("durable restart");
    let mut client = connect(server.local_addr());
    assert_bit_identical(&mut client, &mirror, now2);
    client.call("SHUTDOWN").expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pull the first (top-level, fleet-wide) `"name":<u64>` field out of a
/// STATS response line.
fn stat(resp: &str, name: &str) -> u64 {
    let tag = format!("\"{name}\":");
    let at = resp
        .find(&tag)
        .unwrap_or_else(|| panic!("{name} in {resp}"));
    resp[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric stat")
}

#[test]
fn compaction_bounds_the_log_across_checkpoint_cycles() {
    let dir = scratch("compact");
    // Tiny thresholds so a modest trace forces many rotations and at
    // least three full compaction cycles per shard.
    let (mut child, addr) = spawn_sketchd(
        &dir,
        &[
            ("SKETCHD_WAL_SEGMENT_BYTES", (4u64 << 10).to_string()),
            ("SKETCHD_WAL_COMPACT_BYTES", (16u64 << 10).to_string()),
        ],
    );
    let mut client = connect(addr.as_str());

    let events = trace(30_000, 0xC0DE, 1);
    let now = events.last().unwrap().1.ts;
    let mut mirror: SketchStore<String> = SketchStore::new(spec()).unwrap();
    mirror.ingest(&events);
    ingest_acked(&mut client, &events);

    let stats = client.call("STATS").expect("stats");
    assert!(response::is_ok(&stats), "stats failed: {stats}");
    let compactions = stat(&stats, "compactions");
    let wal_bytes = stat(&stats, "wal_bytes");
    assert!(
        compactions >= 3,
        "expected >= 3 compaction cycles, saw {compactions}: {stats}"
    );
    // The log is bounded: compaction keeps each shard's log near one
    // active segment, nowhere near the bytes the raw trace appended.
    assert!(
        wal_bytes <= SHARDS as u64 * 2 * (16 << 10),
        "log unbounded: {wal_bytes} bytes after {compactions} compactions"
    );

    // The compacted state (checkpoint + truncated log, not the full
    // history) still recovers bit-identically after a SIGKILL.
    child.kill().expect("SIGKILL sketchd");
    child.wait().expect("reap");
    let server = Server::start(restart_config(&dir)).expect("restart after compaction");
    let mut client = connect(server.local_addr());
    let mut per_key: HashMap<String, u64> = HashMap::new();
    for (key, _) in &events {
        *per_key.entry(key.clone()).or_default() += 1;
    }
    for key in per_key.keys() {
        let served = client
            .call(&format!("QUERY {key} total time {now} {WINDOW}"))
            .expect("total");
        let local = mirror
            .query(key, &Query::total_arrivals(), WindowSpec::time(now, WINDOW))
            .unwrap()
            .unwrap();
        assert_eq!(
            strip_now(&served),
            response::answer("total", &local),
            "{key}"
        );
    }
    client.call("SHUTDOWN").expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_without_a_snapshot_dir_is_refused_typed() {
    let err = Server::start(ServerConfig::new(spec()).durability(true))
        .expect_err("durability without snapshot_dir must refuse");
    assert!(
        err.to_string().contains("snapshot_dir"),
        "unexpected error: {err}"
    );

    let dir = scratch("zero");
    let err = Server::start(
        ServerConfig::new(spec())
            .snapshot_dir(dir.clone())
            .durability(true)
            .wal_segment_bytes(0),
    )
    .expect_err("zero segment size must refuse");
    assert!(
        err.to_string().contains("wal_segment_bytes"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
