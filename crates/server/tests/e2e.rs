//! End-to-end acceptance: a real `sketchd` over TCP (ephemeral port, 4
//! shards) serves answers **bit-identical** — same estimate, same (ε, δ)
//! guarantee, same JSON bytes — to an in-process [`SketchStore`] fed the
//! same seeded bursty-Zipf stream, across point/range/heavy-hitter
//! queries, snapshot → kill → restore, and graceful shutdown.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use ecm::{Query, SketchStore};
use sketch_server::protocol::response;
use sketch_server::{Client, Server, ServerConfig, SketchSpec, StreamEvent, WindowSpec};
use stream_gen::SeededRng;

const WINDOW: u64 = 100_000;
const SHARDS: usize = 4;
const HIER_BITS: u32 = 8; // items in 0..256, range/HH/quantile enabled

fn spec() -> SketchSpec {
    SketchSpec::time(WINDOW)
        .epsilon(0.1)
        .delta(0.1)
        .seed(11)
        .hierarchy(HIER_BITS)
}

/// A fresh scratch dir under the system temp root.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sketchd-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A seeded keyed trace: 10 tenants with engineered, clearly distinct
/// volumes (no top-k ties), Zipf-ish item skew inside the 2^8 hierarchy
/// universe, globally non-decreasing ticks, and occasional weighted
/// events. Returns `(key, event, count)` triples in arrival order.
fn trace(events: usize, seed: u64) -> Vec<(String, StreamEvent, u64)> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(events);
    let mut ts = 1u64;
    while out.len() < events {
        ts += rng.next_u64() % 3;
        // Tenant volumes decay geometrically: tenant 0 ≈ 2× tenant 1 ≈ …
        let mut tenant = 0usize;
        while tenant < 9 && rng.gen_bool(0.5) {
            tenant += 1;
        }
        // Item skew: small items are hot.
        let item = match rng.next_u64() % 4 {
            0 => rng.next_u64() % 4,
            1 => rng.next_u64() % 16,
            _ => rng.next_u64() % (1 << HIER_BITS),
        };
        let count = if rng.gen_bool(0.1) {
            1 + rng.next_u64() % 4
        } else {
            1
        };
        out.push((format!("user-{tenant}"), StreamEvent::new(item, ts), count));
    }
    out
}

/// The in-process ground truth: the same spec, the same per-key event
/// sequence (counts expanded exactly as the engine expands them).
fn mirror(triples: &[(String, StreamEvent, u64)]) -> SketchStore<String> {
    let mut store = SketchStore::new(spec()).expect("valid spec");
    let mut expanded: Vec<(String, StreamEvent)> = Vec::new();
    for (key, event, count) in triples {
        for _ in 0..*count {
            expanded.push((key.clone(), *event));
        }
    }
    store.ingest(&expanded);
    store
}

fn start_server(snapshot_dir: Option<&PathBuf>) -> Server {
    let mut cfg = ServerConfig::new(spec())
        .shards(SHARDS)
        .read_timeout(Duration::from_secs(10));
    if let Some(dir) = snapshot_dir {
        cfg = cfg.snapshot_dir(dir.clone());
    }
    Server::start(cfg).expect("server starts")
}

fn connect(server: &Server) -> Client {
    let client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    client
}

/// Ingest the trace over the wire: mostly `BATCH` frames, with the first
/// few events as bare `STORE`s so both paths are exercised.
fn ingest_over_wire(client: &mut Client, triples: &[(String, StreamEvent, u64)]) {
    let mut acked = 0u64;
    for (key, event, count) in triples.iter().take(5) {
        let resp = client
            .call(&format!("STORE {key} {} {} {count}", event.ts, event.item))
            .expect("STORE");
        assert_eq!(resp, response::ingested(*count), "STORE ack");
        acked += count;
    }
    let lines: Vec<String> = triples
        .iter()
        .skip(5)
        .map(|(key, e, count)| format!("{key} {} {} {count}", e.ts, e.item))
        .collect();
    for chunk in lines.chunks(500) {
        let resp = client.batch(chunk).expect("BATCH");
        assert!(response::is_ok(&resp), "batch rejected: {resp}");
    }
    let _ = acked;
}

/// Every query command this protocol can express against one key, over
/// two windows.
fn query_matrix(now: u64) -> Vec<(String, Query<'static>, WindowSpec)> {
    let mut out = Vec::new();
    for (wire, w) in [
        (
            format!("time {now} {WINDOW}"),
            WindowSpec::time(now, WINDOW),
        ),
        (format!("time {now} 5000"), WindowSpec::time(now, 5_000)),
    ] {
        for item in [0u64, 1, 7, 100, 255] {
            out.push((format!("point {item} {wire}"), Query::point(item), w));
        }
        out.push((format!("self_join {wire}"), Query::self_join(), w));
        out.push((format!("total {wire}"), Query::total_arrivals(), w));
        out.push((format!("range 0 15 {wire}"), Query::range_sum(0, 15), w));
        out.push((format!("range 16 255 {wire}"), Query::range_sum(16, 255), w));
        out.push((
            format!("heavy_hitters abs:200 {wire}"),
            Query::heavy_hitters(ecm::Threshold::Absolute(200.0)),
            w,
        ));
        out.push((
            format!("heavy_hitters rel:0.05 {wire}"),
            Query::heavy_hitters(ecm::Threshold::Relative(0.05)),
            w,
        ));
        out.push((format!("quantile 0.5 {wire}"), Query::quantile(0.5), w));
    }
    out
}

/// Strip the trailing `"now"` consistency-point field off a served QUERY
/// response, so the answer body can be compared byte-for-byte against the
/// mirror's rendering (the mirror is one un-sharded store and has no
/// per-shard write clock to render).
fn strip_now(served: &str) -> String {
    let Some(at) = served.rfind(",\"now\":") else {
        return served.to_string();
    };
    let digits = &served[at + ",\"now\":".len()..served.len() - 1];
    if served.ends_with('}') && !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
        format!("{}}}", &served[..at])
    } else {
        served.to_string()
    }
}

/// Assert that every served answer for every tenant is byte-identical to
/// the mirror's answer rendered through the same JSON path.
fn assert_bit_identical(client: &mut Client, store: &SketchStore<String>, now: u64) {
    let verbs = query_matrix(now);
    for tenant in 0..10 {
        let key = format!("user-{tenant}");
        for (wire, query, window) in &verbs {
            let served = client
                .call(&format!("QUERY {key} {wire}"))
                .expect("query round-trip");
            let local = store
                .query(&key, query, *window)
                .unwrap_or_else(|| panic!("mirror lost key {key}"));
            let expected = match local {
                Ok(answer) => {
                    // Successful answers carry the consistency point.
                    assert!(
                        sketch_server::answer_now(&served).is_some(),
                        "no \"now\" field: {served}"
                    );
                    response::answer(query_name(query), &answer)
                }
                Err(e) => response::query_error(&e),
            };
            assert_eq!(strip_now(&served), expected, "QUERY {key} {wire}");
        }
    }
}

fn query_name(q: &Query<'_>) -> &'static str {
    match q {
        Query::Point { .. } => "point",
        Query::SelfJoin => "self_join",
        Query::RangeSum { .. } => "range",
        Query::HeavyHitters { .. } => "heavy_hitters",
        Query::Quantile { .. } => "quantile",
        Query::TotalArrivals => "total",
        _ => unreachable!("not expressible on the wire"),
    }
}

#[test]
fn served_answers_are_bit_identical_to_in_process_store() {
    let triples = trace(20_000, 0xE2E);
    let now = triples.last().expect("non-empty").1.ts;
    let store = mirror(&triples);

    let server = start_server(None);
    let mut client = connect(&server);
    assert_eq!(client.call("PING").expect("ping"), response::pong());
    ingest_over_wire(&mut client, &triples);

    assert_bit_identical(&mut client, &store, now);

    // TOPK merges across shards exactly like one un-sharded ranking.
    let served = client
        .call(&format!("TOPK 5 time {now} {WINDOW}"))
        .expect("topk");
    let expected = store.top_k(5, &Query::total_arrivals(), WindowSpec::time(now, WINDOW));
    assert_eq!(served, response::topk(&expected), "TOPK");

    // STATS sums to the fleet the mirror holds, without locking shards.
    let stats = client.call("STATS").expect("stats");
    assert!(response::is_ok(&stats), "stats failed: {stats}");
    assert!(
        stats.contains(&format!("\"keys\":{}", store.len())),
        "stats reports {} keys: {stats}",
        store.len()
    );
    let expanded: u64 = triples.iter().map(|(_, _, c)| c).sum();
    assert!(
        stats.contains(&format!("\"ingested\":{expanded}")),
        "stats must count {expanded} occurrences: {stats}"
    );
    assert_eq!(stats.matches("\"shard\":").count(), SHARDS);
    // Every shard carries a health block; a healthy fleet has no restarts
    // and shed nothing.
    assert_eq!(stats.matches("\"health\":").count(), SHARDS);
    assert_eq!(stats.matches("\"state\":\"up\"").count(), SHARDS);
    assert_eq!(stats.matches("\"restarts\":0").count(), SHARDS);
    assert_eq!(stats.matches("\"shed_requests\":0").count(), SHARDS);

    // Typed refusals, not panics or silence.
    let unknown = client
        .call(&format!("QUERY nobody total time {now} 100"))
        .expect("unknown key");
    assert!(unknown.starts_with("{\"ok\":false,\"error\":\"unknown_key\""));
    let out_of_universe = client.call("STORE user-0 999999999 256").expect("bad item");
    assert!(
        out_of_universe.starts_with("{\"ok\":false,\"error\":\"item_out_of_universe\""),
        "hierarchy universe guard: {out_of_universe}"
    );

    let bye = client.call("SHUTDOWN").expect("shutdown");
    assert_eq!(bye, response::shutdown());
    server.join();
}

#[test]
fn snapshot_restart_serves_identical_answers() {
    let dir = scratch("snap");
    let triples = trace(12_000, 0x5A9);
    let now = triples.last().expect("non-empty").1.ts;
    let store = mirror(&triples);

    // First life: ingest, snapshot explicitly, shut down WITHOUT a
    // configured snapshot dir (the explicit SNAPSHOT must carry the state
    // alone).
    let server = start_server(None);
    let mut client = connect(&server);
    ingest_over_wire(&mut client, &triples);
    let resp = client
        .call(&format!("SNAPSHOT {}", dir.display()))
        .expect("snapshot");
    assert!(response::is_ok(&resp), "snapshot failed: {resp}");
    assert!(resp.contains(&format!("\"shards\":{SHARDS}")));
    client.call("SHUTDOWN").expect("shutdown");
    server.join();

    // Second life: restore from the directory, serve the same answers.
    let server = start_server(Some(&dir));
    let mut client = connect(&server);
    assert_bit_identical(&mut client, &store, now);
    client.call("SHUTDOWN").expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The graceful-shutdown contract: every event the server *acked* before
/// `SHUTDOWN` survives the restart — the gate closes, the mailboxes
/// drain, the final checkpoint lands, nothing acked is lost.
#[test]
fn no_acked_event_is_lost_across_shutdown_and_restart() {
    let dir = scratch("drain");
    let triples = trace(8_000, 0xACED);
    let now = triples.last().expect("non-empty").1.ts;
    let store = mirror(&triples);

    let server = start_server(Some(&dir));
    let mut client = connect(&server);
    ingest_over_wire(&mut client, &triples);
    // SHUTDOWN immediately after the last ack: the final checkpoint must
    // still include every acked event (FIFO mailboxes drain first).
    client.call("SHUTDOWN").expect("shutdown");
    server.join();

    let server = start_server(Some(&dir));
    let mut client = connect(&server);
    // Exact per-tenant totals; any dropped event would shrink one.
    let mut per_key: HashMap<String, u64> = HashMap::new();
    for (key, _, count) in &triples {
        *per_key.entry(key.clone()).or_default() += count;
    }
    for (key, _) in per_key.iter() {
        let served = client
            .call(&format!("QUERY {key} total time {now} {WINDOW}"))
            .expect("total");
        let local = store
            .query(key, &Query::total_arrivals(), WindowSpec::time(now, WINDOW))
            .expect("mirror has key")
            .expect("in-window");
        assert_eq!(
            strip_now(&served),
            response::answer("total", &local),
            "{key}"
        );
    }
    // And the full bit-identity matrix for good measure.
    assert_bit_identical(&mut client, &store, now);
    client.call("SHUTDOWN").expect("shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Post-shutdown connections are refused at the engine level with a typed
/// error, and a second server on the same snapshot dir with a different
/// shard count is refused at startup.
#[test]
fn shard_count_mismatch_is_refused_on_restore() {
    let dir = scratch("mismatch");
    let triples = trace(500, 7);
    let server = start_server(Some(&dir));
    let mut client = connect(&server);
    ingest_over_wire(&mut client, &triples);
    client.call("SHUTDOWN").expect("shutdown");
    server.join();

    let cfg = ServerConfig::new(spec())
        .shards(SHARDS + 1)
        .snapshot_dir(dir.clone());
    let err = Server::start(cfg).expect_err("mismatched shard count must refuse");
    assert!(
        err.to_string().contains("shards"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
