//! Engine-level tests below the TCP layer: routing determinism, the
//! ingest gate, typed refusals, and backpressure-safe shutdown.

use ecm::StreamEvent;
use sketch_server::engine::{fnv1a, route, Engine, EngineError};
use sketch_server::protocol::OwnedQuery;
use sketch_server::{ServerConfig, SketchSpec, WindowSpec};

fn spec() -> SketchSpec {
    SketchSpec::time(10_000).epsilon(0.2).delta(0.2).seed(3)
}

#[test]
fn fnv1a_matches_the_reference_vectors() {
    // Published FNV-1a 64-bit test vectors.
    assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
}

#[test]
fn routing_is_deterministic_and_covers_all_shards() {
    let n = 8;
    for key in ["alice", "bob", "user-123", ""] {
        assert_eq!(route(key, n), route(key, n), "stable for {key:?}");
        assert!(route(key, n) < n);
    }
    // 1000 distinct keys must not all collapse onto a few shards.
    let mut hit = vec![false; n];
    for i in 0..1000 {
        hit[route(&format!("key-{i}"), n)] = true;
    }
    assert!(hit.iter().all(|&h| h), "every shard owns some keys");
}

#[test]
fn config_domain_errors_are_typed() {
    let err = Engine::start(&ServerConfig::new(spec()).shards(0)).expect_err("0 shards");
    assert!(matches!(err, EngineError::InvalidConfig(_)));
    let err = Engine::start(&ServerConfig::new(spec()).mailbox_depth(0)).expect_err("0 depth");
    assert!(matches!(err, EngineError::InvalidConfig(_)));
    let bad_spec = SketchSpec::time(10_000).epsilon(0.0);
    let err = Engine::start(&ServerConfig::new(bad_spec)).expect_err("bad spec");
    assert!(matches!(err, EngineError::Spec(_)));
}

#[test]
fn hierarchy_universe_guard_rejects_the_whole_batch() {
    let cfg = ServerConfig::new(spec().hierarchy(4)).shards(2);
    let engine = Engine::start(&cfg).expect("engine");
    // Item 16 is outside the 2^4 universe: reject, and apply nothing.
    let batch = vec![
        ("a".to_string(), StreamEvent::new(3, 1), 1),
        ("b".to_string(), StreamEvent::new(16, 1), 1),
    ];
    let err = engine.ingest(&batch).expect_err("out of universe");
    assert!(matches!(
        err,
        EngineError::ItemOutOfUniverse { item: 16, bits: 4 }
    ));
    let stats = engine.stats().expect("stats");
    assert_eq!(stats.iter().map(|s| s.ingested).sum::<u64>(), 0);
    engine.shutdown().expect("shutdown");
}

#[test]
fn oversized_weighted_batches_are_refused() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(1)).expect("engine");
    let heavy: Vec<_> = (0..8)
        .map(|i| (format!("k{i}"), StreamEvent::new(1, 1), 1 << 20))
        .collect();
    let err = engine.ingest(&heavy).expect_err("too heavy");
    assert!(matches!(err, EngineError::IngestTooHeavy { .. }));
    engine.shutdown().expect("shutdown");
}

#[test]
fn shutdown_is_idempotent_and_closes_the_gate() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(2)).expect("engine");
    engine
        .ingest(&[("k".to_string(), StreamEvent::new(1, 5), 2)])
        .expect("ingest");
    engine.shutdown().expect("first shutdown");
    engine.shutdown().expect("second shutdown is a no-op");
    assert!(engine.is_down());

    let w = WindowSpec::time(10, 10);
    assert!(matches!(
        engine.ingest(&[("k".to_string(), StreamEvent::new(1, 6), 1)]),
        Err(EngineError::ShuttingDown)
    ));
    assert!(matches!(
        engine.query("k", &OwnedQuery::Total, w),
        Err(EngineError::ShuttingDown)
    ));
    assert!(matches!(engine.stats(), Err(EngineError::ShuttingDown)));
    assert!(matches!(engine.flush(10), Err(EngineError::ShuttingDown)));
}

#[test]
fn tiny_mailboxes_still_drain_everything() {
    // Depth-1 mailboxes: every send blocks until the worker drains —
    // pure backpressure, zero loss.
    let cfg = ServerConfig::new(spec()).shards(2).mailbox_depth(1);
    let engine = Engine::start(&cfg).expect("engine");
    for i in 0..200u64 {
        engine
            .ingest(&[(format!("k{}", i % 7), StreamEvent::new(i % 8, 1 + i), 1)])
            .expect("ingest under backpressure");
    }
    let stats = engine.stats().expect("stats");
    assert_eq!(stats.iter().map(|s| s.ingested).sum::<u64>(), 200);
    assert_eq!(stats.iter().map(|s| s.keys).sum::<usize>(), 7);
    assert!(stats.iter().all(|s| s.memory_bytes > 0 || s.keys == 0));
    engine.shutdown().expect("shutdown");
}

#[test]
fn broadcast_top_k_merges_like_one_store() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(4)).expect("engine");
    // Distinct volumes: k0 gets 50, k1 gets 40, ... k4 gets 10.
    let mut batch = Vec::new();
    for (i, n) in [(0u64, 50u64), (1, 40), (2, 30), (3, 20), (4, 10)] {
        batch.push((format!("k{i}"), StreamEvent::new(1, 100), n));
    }
    engine.ingest(&batch).expect("ingest");
    let top = engine
        .top_k(3, WindowSpec::time(100, 10_000))
        .expect("top_k");
    let names: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(names, ["k0", "k1", "k2"]);
    assert!(top[0].1 > top[1].1 && top[1].1 > top[2].1);
    engine.shutdown().expect("shutdown");
}
