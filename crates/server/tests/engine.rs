//! Engine-level tests below the TCP layer: routing determinism, the
//! ingest gate, typed refusals, and backpressure-safe shutdown.

use ecm::StreamEvent;
use sketch_server::engine::{fnv1a, route, Engine, EngineError};
use sketch_server::protocol::OwnedQuery;
use sketch_server::{ServerConfig, SketchSpec, WindowSpec};

fn spec() -> SketchSpec {
    SketchSpec::time(10_000).epsilon(0.2).delta(0.2).seed(3)
}

#[test]
fn fnv1a_matches_the_reference_vectors() {
    // Published FNV-1a 64-bit test vectors.
    assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a("foobar"), 0x85944171f73967e8);
}

#[test]
fn routing_is_deterministic_and_covers_all_shards() {
    let n = 8;
    for key in ["alice", "bob", "user-123", ""] {
        assert_eq!(route(key, n), route(key, n), "stable for {key:?}");
        assert!(route(key, n) < n);
    }
    // 1000 distinct keys must not all collapse onto a few shards.
    let mut hit = vec![false; n];
    for i in 0..1000 {
        hit[route(&format!("key-{i}"), n)] = true;
    }
    assert!(hit.iter().all(|&h| h), "every shard owns some keys");
}

#[test]
fn config_domain_errors_are_typed() {
    let err = Engine::start(&ServerConfig::new(spec()).shards(0)).expect_err("0 shards");
    assert!(matches!(err, EngineError::InvalidConfig(_)));
    let err = Engine::start(&ServerConfig::new(spec()).mailbox_depth(0)).expect_err("0 depth");
    assert!(matches!(err, EngineError::InvalidConfig(_)));
    let bad_spec = SketchSpec::time(10_000).epsilon(0.0);
    let err = Engine::start(&ServerConfig::new(bad_spec)).expect_err("bad spec");
    assert!(matches!(err, EngineError::Spec(_)));
}

#[test]
fn hierarchy_universe_guard_rejects_the_whole_batch() {
    let cfg = ServerConfig::new(spec().hierarchy(4)).shards(2);
    let engine = Engine::start(&cfg).expect("engine");
    // Item 16 is outside the 2^4 universe: reject, and apply nothing.
    let batch = vec![
        ("a".to_string(), StreamEvent::new(3, 1), 1),
        ("b".to_string(), StreamEvent::new(16, 1), 1),
    ];
    let err = engine.ingest(&batch).expect_err("out of universe");
    assert!(matches!(
        err,
        EngineError::ItemOutOfUniverse { item: 16, bits: 4 }
    ));
    let stats = engine.stats().expect("stats");
    let ingested: u64 = stats
        .iter()
        .filter_map(|s| s.stats.as_ref())
        .map(|s| s.ingested)
        .sum();
    assert_eq!(ingested, 0);
    engine.shutdown().expect("shutdown");
}

#[test]
fn oversized_weighted_batches_are_refused() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(1)).expect("engine");
    let heavy: Vec<_> = (0..8)
        .map(|i| (format!("k{i}"), StreamEvent::new(1, 1), 1 << 20))
        .collect();
    let err = engine.ingest(&heavy).expect_err("too heavy");
    assert!(matches!(err, EngineError::IngestTooHeavy { .. }));
    engine.shutdown().expect("shutdown");
}

#[test]
fn shutdown_is_idempotent_and_closes_the_gate() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(2)).expect("engine");
    engine
        .ingest(&[("k".to_string(), StreamEvent::new(1, 5), 2)])
        .expect("ingest");
    engine.shutdown().expect("first shutdown");
    engine.shutdown().expect("second shutdown is a no-op");
    assert!(engine.is_down());

    let w = WindowSpec::time(10, 10);
    assert!(matches!(
        engine.ingest(&[("k".to_string(), StreamEvent::new(1, 6), 1)]),
        Err(EngineError::ShuttingDown)
    ));
    assert!(matches!(
        engine.query("k", &OwnedQuery::Total, w),
        Err(EngineError::ShuttingDown)
    ));
    assert!(matches!(engine.stats(), Err(EngineError::ShuttingDown)));
    assert!(matches!(engine.flush(10), Err(EngineError::ShuttingDown)));
}

#[test]
fn tiny_mailboxes_still_drain_everything() {
    // Depth-1 mailboxes: every send blocks until the worker drains —
    // pure backpressure, zero loss.
    let cfg = ServerConfig::new(spec()).shards(2).mailbox_depth(1);
    let engine = Engine::start(&cfg).expect("engine");
    for i in 0..200u64 {
        engine
            .ingest(&[(format!("k{}", i % 7), StreamEvent::new(i % 8, 1 + i), 1)])
            .expect("ingest under backpressure");
    }
    let stats = engine.stats().expect("stats");
    let rows: Vec<_> = stats.iter().filter_map(|s| s.stats.as_ref()).collect();
    assert_eq!(rows.len(), stats.len(), "all shards answered");
    assert_eq!(rows.iter().map(|s| s.ingested).sum::<u64>(), 200);
    assert_eq!(rows.iter().map(|s| s.keys).sum::<usize>(), 7);
    assert!(rows.iter().all(|s| s.memory_bytes > 0 || s.keys == 0));
    engine.shutdown().expect("shutdown");
}

#[test]
fn broadcast_top_k_merges_like_one_store() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(4)).expect("engine");
    // Distinct volumes: k0 gets 50, k1 gets 40, ... k4 gets 10.
    let mut batch = Vec::new();
    for (i, n) in [(0u64, 50u64), (1, 40), (2, 30), (3, 20), (4, 10)] {
        batch.push((format!("k{i}"), StreamEvent::new(1, 100), n));
    }
    engine.ingest(&batch).expect("ingest");
    let top = engine
        .top_k(3, WindowSpec::time(100, 10_000))
        .expect("top_k");
    let names: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(names, ["k0", "k1", "k2"]);
    assert!(top[0].1 > top[1].1 && top[1].1 > top[2].1);
    engine.shutdown().expect("shutdown");
}

/// Retry an engine call through restart blips: retryable errors mean "not
/// applied, try again"; anything else is a real failure.
fn retry_until_ok<T>(mut call: impl FnMut() -> Result<T, EngineError>, what: &str) -> T {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match call() {
            Ok(v) => return v,
            Err(e) if e.is_retryable() => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "{what}: still retrying after 10s: {e}"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("{what}: non-retryable: {e}"),
        }
    }
}

#[test]
fn restart_shard_respawns_from_wal_without_losing_siblings() {
    // Durable engine: a crash-shaped restart must replay the WAL tail, so
    // every *acked* write survives. (Without durability an ack only means
    // "accepted into the mailbox" — a crash may legitimately drop it.)
    let dir = std::env::temp_dir().join(format!("sketchd-engine-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let cfg = ServerConfig::new(spec())
        .shards(2)
        .snapshot_dir(&dir)
        .durability(true);
    let engine = Engine::start(&cfg).expect("engine");
    // "a" routes to one shard, "b" to the other (checked below) — killing
    // a's shard must leave b's untouched.
    let (sa, sb) = (route("a", 2), route("b", 2));
    assert_ne!(sa, sb, "the test needs the keys on different shards");
    engine
        .ingest(&[
            ("a".to_string(), StreamEvent::new(1, 10), 3),
            ("b".to_string(), StreamEvent::new(1, 10), 5),
        ])
        .expect("ingest");

    engine.restart_shard(sa).expect("restart");
    // The sibling keeps answering throughout; go through the typed-retry
    // path anyway so a routing change cannot turn this into a hang.
    let w = WindowSpec::time(10, 10_000);
    let b = retry_until_ok(|| engine.query("b", &OwnedQuery::Total, w), "query b");
    let b = b
        .expect("b exists")
        .expect("answers")
        .value()
        .expect("scalar");
    assert_eq!(b.round() as u64, 5);

    // The killed shard comes back with the acked history replayed, and
    // keeps serving new writes.
    retry_until_ok(
        || engine.ingest(&[("a".to_string(), StreamEvent::new(2, 10), 7)]),
        "ingest a after restart",
    );
    let a = retry_until_ok(|| engine.query("a", &OwnedQuery::Total, w), "query a");
    let a = a
        .expect("a exists")
        .expect("answers")
        .value()
        .expect("scalar");
    assert_eq!(
        a.round() as u64,
        3 + 7,
        "WAL tail replayed, new write applied"
    );

    let stats = engine.stats().expect("stats");
    assert_eq!(stats[sa].health.restarts, 1);
    assert_eq!(stats[sb].health.restarts, 0);
    assert_eq!(stats[sa].health.state, "up");
    engine.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn out_of_range_restart_is_a_typed_refusal() {
    let engine = Engine::start(&ServerConfig::new(spec()).shards(2)).expect("engine");
    assert!(matches!(
        engine.restart_shard(2),
        Err(EngineError::InvalidConfig(_))
    ));
    engine.shutdown().expect("shutdown");
}

#[test]
fn malformed_fault_plan_is_a_typed_start_error() {
    let cfg = ServerConfig::new(spec()).fault_plan("bogus:explode@now");
    assert!(matches!(
        Engine::start(&cfg),
        Err(EngineError::FaultPlan(_))
    ));
}

#[test]
fn wedged_shard_sheds_typed_overloaded_then_recovers() {
    // The 3rd message stalls its worker for 1.5 s; with a 200 ms health
    // deadline the supervisor quarantines the shard as wedged (no respawn:
    // the thread is alive), and admission sheds instead of blocking.
    let cfg = ServerConfig::new(spec())
        .shards(1)
        .mailbox_depth(1)
        .health_deadline(std::time::Duration::from_millis(200))
        .admission_timeout(std::time::Duration::from_millis(100))
        .fault_plan("shard:delay=1500ms@seq=3");
    let engine = Engine::start(&cfg).expect("engine");
    let event = |i: u64| vec![("k".to_string(), StreamEvent::new(1, i), 1)];
    engine.ingest(&event(1)).expect("ingest 1");
    engine.ingest(&event(2)).expect("ingest 2");
    // Message 3 stalls the worker. Fire it from a helper thread (the reply
    // will wait out the stall) and shed against the full mailbox here.
    std::thread::scope(|scope| {
        // The helper competes with the probing loop below for the depth-1
        // mailbox, so it may get shed too — it retries through it.
        let stalled = scope.spawn(|| retry_until_ok(|| engine.ingest(&event(3)), "stalled ingest"));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let shed = loop {
            // Same timestamp as the helper's event: either sender may win
            // the depth-1 mailbox slot (and become the stalled seq-3
            // message), and equal timestamps keep the worker's per-key
            // non-decreasing ordering valid in both interleavings.
            match engine.ingest(&event(3)) {
                Err(e @ EngineError::Overloaded { .. }) => break e,
                Err(e) if e.is_retryable() => {}
                Ok(_) => {} // admitted before the stall bit — keep probing
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(std::time::Instant::now() < deadline, "never shed");
        };
        assert!(shed.is_retryable());
        assert!(shed.to_string().contains("retry"), "hint in: {shed}");

        // The stall passes, the supervisor flips the shard back to up, and
        // the queue drains — the stalled send eventually lands.
        stalled.join().expect("stalled sender");
    });
    retry_until_ok(|| engine.ingest(&event(9)), "ingest after recovery");
    let stats = retry_until_ok(|| engine.stats(), "stats");
    assert_eq!(stats[0].health.state, "up");
    assert_eq!(stats[0].health.restarts, 0, "wedged is not dead");
    assert!(stats[0].health.shed_requests >= 1, "{:?}", stats[0].health);
    engine.shutdown().expect("shutdown");
}
