//! Parser robustness: an exhaustive accept/reject table over the command
//! grammar, plus a fuzz-style random-bytes loop proving the parser is
//! total (typed error or typed command, never a panic) — the same posture
//! `crates/ecm/tests/codec_robustness.rs` takes for the snapshot codec.

use sketch_server::protocol::{
    parse_command, parse_data_line, CmdError, Command, OwnedQuery, MAX_BATCH, MAX_LINE,
};
use stream_gen::SeededRng;

fn parse(line: &str) -> Result<Command, CmdError> {
    parse_command(line.as_bytes())
}

fn code(line: &str) -> &'static str {
    parse(line)
        .expect_err(&format!("{line:?} must be rejected"))
        .code()
}

#[test]
fn accepts_every_documented_command_shape() {
    let table: &[(&str, Command)] = &[
        ("PING", Command::Ping),
        (
            "STORE alice 10 7",
            Command::Store {
                key: "alice".into(),
                ts: 10,
                item: 7,
                count: 1,
            },
        ),
        (
            "STORE alice 10 7 42",
            Command::Store {
                key: "alice".into(),
                ts: 10,
                item: 7,
                count: 42,
            },
        ),
        ("BATCH 3", Command::Batch { n: 3 }),
        (
            "QUERY alice point 7 time 100 50",
            Command::Query {
                key: "alice".into(),
                query: OwnedQuery::Point { item: 7 },
                window: sketch_server::WindowSpec::time(100, 50),
            },
        ),
        (
            "QUERY alice self_join last 64",
            Command::Query {
                key: "alice".into(),
                query: OwnedQuery::SelfJoin,
                window: sketch_server::WindowSpec::last(64),
            },
        ),
        (
            "QUERY alice range 16 31 time 100 50",
            Command::Query {
                key: "alice".into(),
                query: OwnedQuery::Range { lo: 16, hi: 31 },
                window: sketch_server::WindowSpec::time(100, 50),
            },
        ),
        (
            "QUERY alice quantile 0.5 time 100 50",
            Command::Query {
                key: "alice".into(),
                query: OwnedQuery::Quantile { phi: 0.5 },
                window: sketch_server::WindowSpec::time(100, 50),
            },
        ),
        (
            "QUERY alice total time 100 50",
            Command::Query {
                key: "alice".into(),
                query: OwnedQuery::Total,
                window: sketch_server::WindowSpec::time(100, 50),
            },
        ),
        (
            "TOPK 5 time 100 50",
            Command::TopK {
                k: 5,
                window: sketch_server::WindowSpec::time(100, 50),
            },
        ),
        ("STATS", Command::Stats),
        ("FLUSH 123", Command::Flush { ts: 123 }),
        (
            "SNAPSHOT /tmp/snap",
            Command::Snapshot {
                dir: "/tmp/snap".into(),
                incremental: false,
            },
        ),
        (
            "SNAPSHOT /tmp/snap incr",
            Command::Snapshot {
                dir: "/tmp/snap".into(),
                incremental: true,
            },
        ),
        (
            "SNAPSHOT /tmp/snap full",
            Command::Snapshot {
                dir: "/tmp/snap".into(),
                incremental: false,
            },
        ),
        ("SHUTDOWN", Command::Shutdown),
    ];
    for (line, want) in table {
        assert_eq!(&parse(line).expect(line), want, "{line:?}");
    }
    // Heavy hitters carry a float threshold (no PartialEq shortcut above).
    match parse("QUERY alice heavy_hitters rel:0.01 time 100 50").expect("rel threshold") {
        Command::Query {
            query: OwnedQuery::HeavyHitters { .. },
            ..
        } => {}
        other => panic!("unexpected parse: {other:?}"),
    }
    match parse("QUERY alice heavy_hitters abs:100 time 100 50").expect("abs threshold") {
        Command::Query {
            query: OwnedQuery::HeavyHitters { .. },
            ..
        } => {}
        other => panic!("unexpected parse: {other:?}"),
    }
    // CRLF clients are tolerated.
    assert_eq!(parse("PING\r").expect("CRLF"), Command::Ping);
    // Whitespace runs collapse.
    assert!(parse("  STORE   alice  1   2  ").is_ok());
}

#[test]
fn rejects_malformed_lines_with_the_right_code() {
    // (line, expected error code)
    let table: &[(&str, &str)] = &[
        ("", "empty"),
        ("   ", "empty"),
        ("NOPE", "unknown_verb"),
        ("ping", "unknown_verb"), // verbs are case-sensitive
        ("PING extra", "wrong_arity"),
        ("STORE", "wrong_arity"),
        ("STORE alice", "wrong_arity"),
        ("STORE alice 1", "wrong_arity"),
        ("STORE alice 1 2 3 4", "wrong_arity"),
        ("STORE alice ts 2", "bad_number"),
        ("STORE alice 1 item", "bad_number"),
        ("STORE alice 1 2 -1", "bad_number"),
        ("STORE alice 1 2 0", "bad_number"),       // zero count
        ("STORE alice 1 2 9999999", "bad_number"), // count above MAX_COUNT
        ("BATCH", "wrong_arity"),
        ("BATCH x", "bad_number"),
        ("BATCH 0", "empty_batch"),
        (&format!("BATCH {}", MAX_BATCH + 1), "batch_too_large"),
        ("QUERY", "wrong_arity"),
        ("QUERY alice", "wrong_arity"),
        ("QUERY alice warp time 1 1", "unknown_verb"),
        ("QUERY alice point time 1 1", "bad_number"), // item missing, "time" eaten
        ("QUERY alice point 7", "bad_window"),
        ("QUERY alice point 7 time 1", "bad_window"),
        ("QUERY alice point 7 sometimes 1 1", "bad_window"),
        ("QUERY alice range 1 time 1 1", "bad_number"),
        ("QUERY alice heavy_hitters 0.1 time 1 1", "bad_threshold"),
        ("QUERY alice heavy_hitters rel:0 time 1 1", "bad_threshold"),
        ("QUERY alice heavy_hitters rel:1 time 1 1", "bad_threshold"),
        (
            "QUERY alice heavy_hitters rel:nope time 1 1",
            "bad_threshold",
        ),
        ("QUERY alice heavy_hitters abs:-3 time 1 1", "bad_threshold"),
        ("QUERY alice quantile phi time 1 1", "bad_number"),
        ("TOPK", "wrong_arity"),
        ("TOPK 0 time 1 1", "bad_number"),
        ("TOPK k time 1 1", "bad_number"),
        ("STATS now", "wrong_arity"),
        ("FLUSH", "wrong_arity"),
        ("FLUSH soon", "bad_number"),
        ("SNAPSHOT", "wrong_arity"),
        ("SNAPSHOT /tmp/x sideways", "wrong_arity"),
        ("SHUTDOWN now", "wrong_arity"),
    ];
    for (line, want) in table {
        assert_eq!(&code(line), want, "{line:?}");
    }
}

#[test]
fn rejects_oversize_keys_lines_and_non_utf8() {
    let long_key = "k".repeat(200);
    assert_eq!(code(&format!("STORE {long_key} 1 2")), "bad_key");
    assert_eq!(code(&format!("QUERY {long_key} total time 1 1")), "bad_key");

    let long_line = format!("STORE alice 1 2 {}", " ".repeat(MAX_LINE));
    assert_eq!(code(&long_line), "line_too_long");

    let bad_utf8: &[u8] = b"STORE ali\xffce 1 2";
    assert_eq!(
        parse_command(bad_utf8).expect_err("non-UTF8").code(),
        "not_utf8"
    );
}

#[test]
fn data_lines_accept_and_reject_like_store() {
    let (key, event, count) = parse_data_line(b"alice 10 7").expect("bare data line");
    assert_eq!(
        (key.as_str(), event.ts, event.item, count),
        ("alice", 10, 7, 1)
    );
    let (_, _, count) = parse_data_line(b"alice 10 7 5").expect("weighted data line");
    assert_eq!(count, 5);

    assert_eq!(parse_data_line(b"").expect_err("empty").code(), "empty");
    assert_eq!(
        parse_data_line(b"alice 10").expect_err("short").code(),
        "wrong_arity"
    );
    assert_eq!(
        parse_data_line(b"alice ten 7").expect_err("bad ts").code(),
        "bad_number"
    );
    assert_eq!(
        parse_data_line(b"alice 10 7 0")
            .expect_err("zero count")
            .code(),
        "bad_number"
    );
}

/// The parser is total: random bytes — raw, and mutations of valid
/// commands — always yield `Ok` or a typed error, never a panic. Mirrors
/// the random-bytes posture of `codec_robustness.rs`.
#[test]
fn fuzz_random_bytes_never_panic() {
    let mut rng = SeededRng::seed_from_u64(0xF0CC);
    let seeds: &[&str] = &[
        "PING",
        "STORE alice 10 7 42",
        "BATCH 100",
        "QUERY alice heavy_hitters rel:0.01 time 100 50",
        "QUERY alice range 16 31 last 64",
        "TOPK 5 time 100 50",
        "SNAPSHOT /tmp/snap incr",
        "FLUSH 123",
    ];
    for round in 0..5_000 {
        let line: Vec<u8> = if round % 2 == 0 {
            // Pure noise, length 0..300.
            let len = (rng.next_u64() % 300) as usize;
            (0..len).map(|_| (rng.next_u64() % 256) as u8).collect()
        } else {
            // A valid command with a handful of byte mutations.
            let mut line = seeds[(rng.next_u64() % seeds.len() as u64) as usize]
                .as_bytes()
                .to_vec();
            for _ in 0..=(rng.next_u64() % 4) {
                if line.is_empty() {
                    break;
                }
                let at = (rng.next_u64() % line.len() as u64) as usize;
                line[at] = (rng.next_u64() % 256) as u8;
            }
            line
        };
        let _ = parse_command(&line);
        let _ = parse_data_line(&line);
    }
}

/// Over-long inputs are rejected up front, including ones whose length is
/// adversarially close to the bound.
#[test]
fn fuzz_line_length_boundary() {
    for len in [MAX_LINE - 1, MAX_LINE, MAX_LINE + 1, MAX_LINE * 2] {
        let line = vec![b'A'; len];
        let out = parse_command(&line);
        if len > MAX_LINE {
            assert_eq!(out.expect_err("over-long").code(), "line_too_long");
        } else {
            assert_eq!(out.expect_err("unknown verb").code(), "unknown_verb");
        }
    }
}
