//! Differential suite for the wait-free read path: an answer served from
//! a shard's published epoch must render **byte-identically** to the same
//! query serialized through the worker mailbox at the same write clock —
//! across every backend the spec language can build, through a
//! mid-publication checkpoint/restore, and after a crash-shaped shard
//! restart replays the WAL and re-publishes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ecm::{Backend, Clock, SketchStore, StreamEvent, Threshold, WindowSpec};
use sketch_server::engine::{Engine, ServedAnswer};
use sketch_server::protocol::{response, OwnedQuery};
use sketch_server::{ServerConfig, SketchSpec};
use stream_gen::SeededRng;

/// Every backend the spec language can build — the same ten shapes the
/// `ecm` API suite round-trips.
fn backends() -> Vec<SketchSpec> {
    vec![
        SketchSpec::time(1_000).backend(Backend::Eh),
        SketchSpec::time(1_000).backend(Backend::Dw),
        SketchSpec::time(1_000)
            .backend(Backend::Rw)
            .epsilon(0.25)
            .max_arrivals(5_000),
        SketchSpec::time(1_000).backend(Backend::Exact),
        SketchSpec::time(1_000).backend(Backend::Ew { buckets: 10 }),
        SketchSpec::time(1_000).backend(Backend::Decayed),
        SketchSpec::time(1_000).hierarchy(8),
        SketchSpec::time(1_000).sharded(3),
        SketchSpec::count(1_000),
        SketchSpec::count(1_000).hierarchy(8),
    ]
}

/// The full query vocabulary — including kinds some backends refuse, so
/// the *error* rendering is proven identical on both paths too.
fn probes() -> Vec<OwnedQuery> {
    vec![
        OwnedQuery::Total,
        OwnedQuery::SelfJoin,
        OwnedQuery::Point { item: 3 },
        OwnedQuery::Point { item: 200 },
        OwnedQuery::Range { lo: 0, hi: 15 },
        OwnedQuery::HeavyHitters {
            threshold: Threshold::Relative(0.05),
        },
        OwnedQuery::Quantile { phi: 0.5 },
    ]
}

/// Seeded keyed trace: 6 tenants, items inside the 2^8 universe, globally
/// non-decreasing ticks.
fn trace(events: usize, seed: u64) -> Vec<(String, StreamEvent)> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut ts = 0u64;
    (0..events)
        .map(|_| {
            ts += rng.next_u64() % 3;
            let tenant = rng.next_u64() % 6;
            let item = rng.next_u64() % 16;
            (format!("user-{tenant}"), StreamEvent::new(item, ts))
        })
        .collect()
}

fn weighted(events: &[(String, StreamEvent)]) -> Vec<(String, StreamEvent, u64)> {
    events.iter().map(|(k, e)| (k.clone(), *e, 1)).collect()
}

/// Render a query outcome through the exact wire path responses use.
fn render(q: &OwnedQuery, answer: &Option<Result<ecm::Answer, ecm::QueryError>>) -> String {
    match answer {
        None => "<unknown key>".to_string(),
        Some(Ok(a)) => response::answer(q.name(), a),
        Some(Err(e)) => response::query_error(e),
    }
}

/// Poll `query_served` until the freshness gate lets the published copy
/// answer (publish-on-drain makes this quick once writes stop) — or until
/// a generous deadline, at which point the caller's asserts will say why.
fn served_published(engine: &Engine, key: &str, q: &OwnedQuery, w: WindowSpec) -> ServedAnswer {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match engine.query_served(key, q, w) {
            Ok(served) if served.published => return served,
            Ok(served) if Instant::now() >= deadline => return served,
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) if e.is_retryable() && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("query_served({key}): {e}"),
        }
    }
}

/// Point/range/self-join/heavy-hitter answers from the published epoch
/// are bit-identical to the worker-serialized path at the same clock, for
/// all ten backend shapes.
#[test]
fn published_and_worker_paths_agree_on_every_backend() {
    for (i, spec) in backends().into_iter().enumerate() {
        let engine =
            Engine::start(&ServerConfig::new(spec.clone()).shards(2)).expect("engine start");
        let events = trace(600, 0xD1FF + i as u64);
        let now = events.last().expect("non-empty trace").1.ts;
        engine.ingest(&weighted(&events)).expect("ingest");

        let window = match spec.clock() {
            Clock::Time => WindowSpec::time(now, 1_000),
            Clock::Count => WindowSpec::last(200),
        };
        for (key, _) in events.iter().take(1).chain(events.iter().rev().take(1)) {
            for q in probes() {
                let served = served_published(&engine, key, &q, window);
                assert!(
                    served.published,
                    "spec {i}: gate never admitted the published copy for {key}"
                );
                let (worker_answer, worker_clock) = engine
                    .query_via_worker(key, &q, window)
                    .expect("worker path");
                assert_eq!(
                    render(&q, &served.answer),
                    render(&q, &worker_answer),
                    "spec {i}: {key} {} diverged across read paths",
                    q.name()
                );
                assert_eq!(
                    served.clock,
                    worker_clock,
                    "spec {i}: consistency points diverged for {key} {}",
                    q.name()
                );
            }
        }
        engine.shutdown().expect("shutdown");
    }
}

/// An un-sharded mirror of the whole trace — per-key sketches are
/// identical to the engine's, whatever shard owns them.
fn mirror(spec: &SketchSpec, events: &[(String, StreamEvent)]) -> SketchStore<String> {
    let mut store = SketchStore::new(spec.clone()).expect("mirror spec");
    store.ingest(events);
    store
}

fn assert_matches_mirror(
    engine: &Engine,
    store: &SketchStore<String>,
    window: WindowSpec,
    ctx: &str,
) {
    for key in store.keys() {
        for q in probes() {
            let served = served_published(engine, &key, &q, window);
            assert!(served.published, "{ctx}: {key} {} not published", q.name());
            let expected = store.query(&key, &q.to_query(), window);
            assert_eq!(
                render(&q, &served.answer),
                render(&q, &expected),
                "{ctx}: {key} {} diverged from mirror",
                q.name()
            );
        }
    }
}

/// A checkpoint cut while publication lags the write copy (huge publish
/// interval + concurrent writers keeping the mailboxes busy) restores to
/// a state whose *re-published* epochs are bit-identical to a mirror of
/// every acked event — both after a crash-shaped per-shard restart (WAL
/// tail replay) and after a graceful restart from disk.
#[test]
fn mid_publication_snapshot_restores_and_republishes_after_wal_replay() {
    let dir = std::env::temp_dir().join(format!("sketchd-midpub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let spec = SketchSpec::time(10_000)
        .epsilon(0.2)
        .delta(0.2)
        .seed(7)
        .hierarchy(8);
    let cfg = ServerConfig::new(spec.clone())
        .shards(2)
        .snapshot_dir(&dir)
        .durability(true)
        // Effectively "never publish on count": publication happens only
        // on mailbox drain, so concurrent writers leave the published
        // copies stale for most of the run.
        .publish_interval(u64::MAX);
    let engine = Arc::new(Engine::start(&cfg).expect("engine start"));

    // Two writers over disjoint tenants (cross-thread interleaving can't
    // reorder any single key's events), each acking small batches.
    let writers: Vec<_> = (0..2u64)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut rng = SeededRng::seed_from_u64(0xA11CE + t);
                let mut ts = 1u64;
                let mut events = Vec::new();
                for _ in 0..40 {
                    let batch: Vec<_> = (0..25)
                        .map(|_| {
                            ts += rng.next_u64() % 3;
                            let tenant = t * 4 + rng.next_u64() % 4;
                            (
                                format!("user-{tenant}"),
                                StreamEvent::new(rng.next_u64() % 256, ts),
                                1u64,
                            )
                        })
                        .collect();
                    engine.ingest(&batch).expect("writer ingest");
                    events.extend(batch);
                }
                events
            })
        })
        .collect();

    // Mid-run: cut a full checkpoint while writes are in flight and the
    // published copies lag (reads still serve — via fallback when the
    // freshness gate says the snapshot is behind).
    std::thread::sleep(Duration::from_millis(30));
    let w_probe = WindowSpec::time(10_000, 10_000);
    let _ = engine.query_served("user-0", &OwnedQuery::Total, w_probe);
    engine.snapshot(&dir, false).expect("mid-run checkpoint");

    let mut all: Vec<(String, StreamEvent)> = Vec::new();
    for w in writers {
        all.extend(
            w.join()
                .expect("writer panicked")
                .into_iter()
                .map(|(k, e, _)| (k, e)),
        );
    }
    let now = all.iter().map(|(_, e)| e.ts).max().expect("events");
    let store = mirror(&spec, &all);
    let window = WindowSpec::time(now, 10_000);

    // Crash-shaped restart of both shards: rebuild = mid-run checkpoint +
    // WAL tail replay, then an immediate re-publication — reads must come
    // back `published` and bit-identical to the mirror of all acked events.
    for shard in 0..engine.shards() {
        engine.restart_shard(shard).expect("restart");
    }
    // `restart_shard` only enqueues the kill; the supervisor notices and
    // respawns asynchronously. Wait until every shard reports itself
    // restarted and back up, so the shutdown below cannot race a worker
    // that is still dying or still quarantined.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match engine.stats() {
            Ok(rows)
                if rows
                    .iter()
                    .all(|r| r.health.state == "up" && r.health.restarts >= 1) =>
            {
                break
            }
            Ok(_) => {}
            Err(e) if e.is_retryable() => {}
            Err(e) => panic!("stats during restart: {e}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "shards never came back up"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_matches_mirror(&engine, &store, window, "after crash restart");
    engine.shutdown().expect("shutdown");

    // Graceful restart from the same directory (default interval = 1):
    // restore re-publishes before the engine accepts its first query.
    let engine = Engine::start(
        &ServerConfig::new(spec)
            .shards(2)
            .snapshot_dir(&dir)
            .durability(true),
    )
    .expect("restart from disk");
    assert_matches_mirror(&engine, &store, window, "after graceful restart");
    engine.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
