//! End-to-end standing views over a real TCP `sketchd`: the `VIEW`
//! verbs round-trip, `SUBSCRIBE` pushes maintenance notifications as they
//! happen, a slow subscriber loses lines to a typed drop marker instead of
//! blocking shard workers, and registered views survive
//! snapshot → kill → restore with their materialized answers intact.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sketch_server::protocol::response::is_ok;
use sketch_server::{Client, Server, ServerConfig, SketchSpec};

const WINDOW: u64 = 10_000;

fn spec() -> SketchSpec {
    // A hierarchy so heavy-hitter views are answerable.
    SketchSpec::time(WINDOW).epsilon(0.2).hierarchy(8).seed(23)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sketchd-views-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start(cfg: ServerConfig) -> (Server, Client) {
    let server = Server::start(cfg).expect("start server");
    let client = Client::connect(server.local_addr()).expect("connect");
    (server, client)
}

/// `STORE` a run of `n` events for `key`, all item `item`, at ticks
/// `t0..t0+n`.
fn feed(client: &mut Client, key: &str, item: u64, t0: u64, n: u64) {
    let lines: Vec<String> = (0..n).map(|i| format!("{key} {} {item}", t0 + i)).collect();
    let ack = client.batch(&lines).expect("batch");
    assert!(is_ok(&ack), "ingest rejected: {ack}");
}

/// Wait for a notification line satisfying `pred`, skipping heartbeats,
/// with a wall-clock deadline (maintenance runs after the ingest ack, so
/// pushes race the test without one).
fn await_notification(sub: &mut Client, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "timed out waiting for a push");
        match sub.recv() {
            Ok(line) if pred(&line) => return line,
            Ok(_) => continue, // heartbeat or an unrelated change
            Err(sketch_server::ClientError::TimedOut) => continue,
            Err(e) => panic!("subscriber connection died: {e}"),
        }
    }
}

#[test]
fn view_verbs_round_trip() {
    let (server, mut client) = start(ServerConfig::new(spec()).shards(2));

    let ack = client
        .call("VIEW CREATE hot threshold user-1 total 5 time 1000")
        .unwrap();
    assert!(is_ok(&ack), "create rejected: {ack}");
    // Duplicate names are refused.
    let dup = client
        .call("VIEW CREATE hot threshold user-1 total 5 time 1000")
        .unwrap();
    assert!(dup.contains("duplicate_view"), "got: {dup}");
    // The definition round-trips through LIST (floats in shortest
    // round-trip form).
    let list = client.call("VIEW LIST").unwrap();
    assert!(
        list.contains("hot threshold user-1 total 5.0 time 1000"),
        "got: {list}"
    );

    // Reading before any ingest is a typed no-data error, not a crash.
    let empty = client.call("VIEW READ hot").unwrap();
    assert!(empty.contains("view_no_data"), "got: {empty}");

    feed(&mut client, "user-1", 3, 1, 10);
    let read = client.call("VIEW READ hot").unwrap();
    assert!(is_ok(&read), "read rejected: {read}");
    assert!(read.contains("\"above\":true"), "got: {read}");
    // The readout names its consistency point.
    assert!(
        read.contains("\"now\":10") && read.contains("\"seq\":"),
        "got: {read}"
    );

    // STATS reports the registry and maintenance counters.
    let stats = client.call("STATS").unwrap();
    assert!(stats.contains("\"registered\":1"), "got: {stats}");

    let dropped = client.call("VIEW DROP hot").unwrap();
    assert!(is_ok(&dropped), "drop rejected: {dropped}");
    let gone = client.call("VIEW READ hot").unwrap();
    assert!(gone.contains("unknown_view"), "got: {gone}");

    drop(server);
}

#[test]
fn subscriber_sees_threshold_crossing_push() {
    let (server, mut client) = start(ServerConfig::new(spec()).shards(2));
    let ack = client
        .call("VIEW CREATE alarm threshold user-7 total 50 time 5000")
        .unwrap();
    assert!(is_ok(&ack), "create rejected: {ack}");

    let mut sub = Client::connect(server.local_addr()).expect("connect subscriber");
    sub.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let sub_ack = sub.subscribe("alarm").unwrap();
    assert!(is_ok(&sub_ack), "subscribe rejected: {sub_ack}");

    // Below the limit: no crossing yet.
    feed(&mut client, "user-7", 1, 1, 10);
    // Past the limit: the maintenance pass must push a crossing.
    feed(&mut client, "user-7", 1, 11, 60);
    let line = await_notification(&mut sub, |l| l.contains("\"notify\":\"threshold\""));
    assert!(line.contains("\"view\":\"alarm\""), "got: {line}");
    assert!(line.contains("\"above\":true"), "got: {line}");
    // The pushed estimate is the same JSON shape a VIEW READ returns.
    assert!(
        line.contains("\"value\":") && line.contains("\"guarantee\":"),
        "got: {line}"
    );

    // Subscribing to a view that does not exist is a typed error and the
    // connection stays usable.
    let mut other = Client::connect(server.local_addr()).expect("connect");
    let bad = other.subscribe("nope").unwrap();
    assert!(bad.contains("unknown_view"), "got: {bad}");
    let pong = other.call("PING").unwrap();
    assert!(is_ok(&pong), "connection unusable after failed subscribe");

    drop(server);
}

#[test]
fn slow_subscriber_gets_drop_marker_not_backpressure() {
    // The TCP subscribe loop drains its outbox into the socket as fast as
    // notifications arrive, so a genuinely slow consumer is one that does
    // not drain: subscribe on the hub directly and let the bounded outbox
    // (depth 2 here) fill while real ingest drives maintenance.
    let (server, mut client) = start(ServerConfig::new(spec()).shards(1).subscriber_outbox(2));
    let ack = client
        .call("VIEW CREATE churn hh user-2 abs:5 time 10000")
        .unwrap();
    assert!(is_ok(&ack), "create rejected: {ack}");

    let hub = server.engine().hub().clone();
    let (id, rx) = hub.subscribe("churn");
    // Warm the view out of cold partial state (no data yet → pending).
    let warm = client.call("VIEW READ churn").unwrap();
    assert!(warm.contains("view_no_data"), "got: {warm}");

    // Each burst promotes a new item into the hitter set → one
    // HittersChanged per burst. The outbox holds two lines: bursts 2..6
    // become pending drops while no shard worker ever blocks.
    for i in 0..6u64 {
        feed(&mut client, "user-2", i, 1 + i * 10, 10);
    }
    // Ingest acks land before maintenance publishes; poll the fleet-wide
    // dropped counter instead of sleeping blind.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.call("STATS").unwrap();
        let dropped = stats
            .split("\"dropped_notifications\":")
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<u64>()
                    .ok()
            })
            .unwrap_or(0);
        if dropped >= 4 {
            break;
        }
        assert!(Instant::now() < deadline, "drops not recorded: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Drain the two delivered lines, then trigger one more change: the hub
    // owes 4 lines and must deliver the typed marker *before* the next
    // successful line.
    let recv = |rx: &std::sync::mpsc::Receiver<String>| {
        rx.recv_timeout(Duration::from_secs(10)).expect("push line")
    };
    let first = recv(&rx);
    assert!(
        first.contains("\"notify\":\"heavy_hitters\""),
        "got: {first}"
    );
    let second = recv(&rx);
    assert!(
        second.contains("\"notify\":\"heavy_hitters\""),
        "got: {second}"
    );
    feed(&mut client, "user-2", 100, 100, 10);
    let marker = recv(&rx);
    assert!(marker.contains("\"notify\":\"dropped\""), "got: {marker}");
    assert!(marker.contains("\"view\":\"churn\""), "got: {marker}");
    assert!(marker.contains("\"count\":4"), "got: {marker}");
    let after = recv(&rx);
    assert!(
        after.contains("\"notify\":\"heavy_hitters\""),
        "got: {after}"
    );
    assert!(after.contains("\"hitters\":"), "got: {after}");

    hub.unsubscribe(id);
    drop(server);
}

#[test]
fn views_survive_shard_restart_mid_subscribe() {
    // A supervised shard restart must re-register the standing views on
    // the fresh worker, and live subscribers must learn about the blip:
    // the typed `{"notify":"restarted"}` marker arrives *before* the next
    // real publication from the reborn shard.
    let dir = scratch("shard-restart");
    let (server, mut client) = start(
        ServerConfig::new(spec())
            .shards(2)
            .snapshot_dir(&dir)
            .durability(true),
    );
    let ack = client
        .call("VIEW CREATE alarm threshold user-7 total 50 time 5000")
        .unwrap();
    assert!(is_ok(&ack), "create rejected: {ack}");

    let mut sub = Client::connect(server.local_addr()).expect("connect subscriber");
    sub.set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let sub_ack = sub.subscribe("alarm").unwrap();
    assert!(is_ok(&sub_ack), "subscribe rejected: {sub_ack}");

    // Pre-restart state below the threshold, then kill the shard that owns
    // the view's key and wait for the supervisor to bring it back.
    feed(&mut client, "user-7", 1, 1, 10);
    server.engine().restart_shard(0).expect("restart shard 0");
    server.engine().restart_shard(1).expect("restart shard 1");

    // Post-restart ingest crosses the threshold. The WAL replay restored
    // the pre-restart counts, so 10 + 60 > 50 crosses exactly as it would
    // have without the blip. Retry while the mailbox is quarantined.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let lines: Vec<String> = (0..60).map(|i| format!("user-7 {} 1", 11 + i)).collect();
        let ack = client.batch_retry(&lines).expect("batch after restart");
        if is_ok(&ack) {
            break;
        }
        assert!(Instant::now() < deadline, "ingest never re-admitted: {ack}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The subscriber sees the restart marker first, then the crossing —
    // strictly in that order on the one notification stream.
    let marker = await_notification(&mut sub, |l| {
        l.contains("\"notify\":\"restarted\"") || l.contains("\"notify\":\"threshold\"")
    });
    assert!(
        marker.contains("\"notify\":\"restarted\""),
        "crossing arrived before the restart marker: {marker}"
    );
    assert!(marker.contains("\"view\":\"alarm\""), "got: {marker}");
    let crossing = await_notification(&mut sub, |l| l.contains("\"notify\":\"threshold\""));
    assert!(crossing.contains("\"above\":true"), "got: {crossing}");

    // The re-registered view answers reads with the merged history.
    let read = client.call("VIEW READ alarm").unwrap();
    assert!(is_ok(&read), "read after restart: {read}");
    assert!(read.contains("\"above\":true"), "got: {read}");

    // STATS records the restarts in the health block.
    let stats = client.call("STATS").unwrap();
    assert!(stats.contains("\"restarts\":1"), "got: {stats}");

    let _ = std::fs::remove_dir_all(&dir);
    drop(server);
}

#[test]
fn views_survive_snapshot_kill_restore() {
    let dir = scratch("restore");
    let cfg = || {
        ServerConfig::new(spec())
            .shards(2)
            .snapshot_dir(&dir)
            .durability(true)
    };
    let (server, mut client) = start(cfg());
    for (def, ok) in [
        ("hot threshold user-1 total 5 time 1000", true),
        ("top topk 3 time 5000", true),
        ("heavy hh user-1 abs:3 time 5000", true),
    ] {
        let ack = client.call(&format!("VIEW CREATE {def}")).unwrap();
        assert_eq!(is_ok(&ack), ok, "create {def}: {ack}");
    }
    feed(&mut client, "user-1", 3, 1, 40);
    feed(&mut client, "user-2", 5, 1, 20);

    let reads: Vec<String> = ["hot", "top", "heavy"]
        .iter()
        .map(|name| {
            let r = client.call(&format!("VIEW READ {name}")).unwrap();
            assert!(is_ok(&r), "read {name}: {r}");
            r
        })
        .collect();

    let ack = client.call("SHUTDOWN").unwrap();
    assert!(is_ok(&ack), "shutdown rejected: {ack}");
    server.join();

    // Restart from the same directory: the manifest carries the view
    // definitions, the checkpoints carry the sketches.
    let (server, mut client) = start(cfg());
    let list = client.call("VIEW LIST").unwrap();
    for name in ["hot", "top", "heavy"] {
        assert!(
            list.contains(&format!("\"name\":\"{name}\"")),
            "got: {list}"
        );
    }
    for (name, before) in ["hot", "top", "heavy"].iter().zip(&reads) {
        let after = client.call(&format!("VIEW READ {name}")).unwrap();
        assert!(is_ok(&after), "read {name} after restore: {after}");
        // The maintenance sequence number restarts with the process; the
        // answer and its consistency tick must not.
        let strip = |s: &str| s[..s.find(",\"seq\":").expect("seq field")].to_string();
        assert_eq!(strip(&after), strip(before), "view {name} diverged");
    }

    // And restored views keep maintaining: new ingest moves the readout.
    feed(&mut client, "user-1", 3, 2_000, 10);
    let moved = client.call("VIEW READ hot").unwrap();
    assert!(moved.contains("\"now\":2009"), "got: {moved}");

    let _ = std::fs::remove_dir_all(&dir);
    drop(server);
}
