//! Compact binary encoding helpers shared by every synopsis in the workspace.
//!
//! The distributed experiments of the paper charge network cost by the size of
//! the synopses shipped between sites, so the workspace uses a hand-rolled,
//! byte-accurate wire format rather than a general-purpose serializer:
//! LEB128 varints for counts and deltas, fixed little-endian words only where
//! the full range is genuinely needed.

use crate::error::CodecError;

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing the slice.
pub fn get_varint(input: &mut &[u8], context: &'static str) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input
            .split_first()
            .ok_or(CodecError::Truncated { context })?;
        *input = rest;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::Corrupt { context });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a fixed 8-byte little-endian word.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a fixed 8-byte little-endian word, advancing the slice.
pub fn get_u64(input: &mut &[u8], context: &'static str) -> Result<u64, CodecError> {
    if input.len() < 8 {
        return Err(CodecError::Truncated { context });
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8-byte split")))
}

/// Append an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Read an `f64` from its IEEE-754 bit pattern.
pub fn get_f64(input: &mut &[u8], context: &'static str) -> Result<f64, CodecError> {
    Ok(f64::from_bits(get_u64(input, context)?))
}

/// Append a single byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Read a single byte, advancing the slice.
pub fn get_u8(input: &mut &[u8], context: &'static str) -> Result<u8, CodecError> {
    let (&byte, rest) = input
        .split_first()
        .ok_or(CodecError::Truncated { context })?;
    *input = rest;
    Ok(byte)
}

/// Number of bytes `put_varint` would use for `v`.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length model for {v}");
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice, "t").unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(matches!(
                get_varint(&mut slice, "t"),
                Err(CodecError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn varint_rejects_overlong_encoding() {
        // Eleven continuation bytes encode more than 64 bits.
        let bytes = [0xffu8; 10];
        let mut slice = &bytes[..];
        assert!(matches!(
            get_varint(&mut slice, "t"),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn u64_and_f64_round_trip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0xdead_beef_cafe_f00d);
        put_f64(&mut buf, -0.125);
        put_u8(&mut buf, 7);
        let mut s = buf.as_slice();
        assert_eq!(get_u64(&mut s, "a").unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(get_f64(&mut s, "b").unwrap(), -0.125);
        assert_eq!(get_u8(&mut s, "c").unwrap(), 7);
        assert!(s.is_empty());
        let mut empty: &[u8] = &[];
        assert!(get_u64(&mut empty, "a").is_err());
        assert!(get_u8(&mut empty, "a").is_err());
    }

    proptest! {
        #[test]
        fn varint_round_trips_any(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            prop_assert_eq!(get_varint(&mut slice, "p").unwrap(), v);
            prop_assert!(slice.is_empty());
        }

        #[test]
        fn varint_sequences_round_trip(vs in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &vs { put_varint(&mut buf, v); }
            let mut slice = buf.as_slice();
            for &v in &vs {
                prop_assert_eq!(get_varint(&mut slice, "p").unwrap(), v);
            }
            prop_assert!(slice.is_empty());
        }
    }
}
