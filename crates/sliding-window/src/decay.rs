//! Exponential time-decay counters (Cohen & Strauss, J. Algorithms 2006) —
//! the *other* time-decay model the paper's introduction positions the
//! sliding window against (§1: "various time-decay models [...] e.g.,
//! exponential or polynomial decay").
//!
//! An exponentially decayed count weights an arrival of age `a` by
//! `2^(−a / half_life)` instead of the window's hard 0/1 cutoff. The
//! trade-offs against sliding windows are instructive and measurable:
//!
//! * **Memory**: a decayed count needs *one* number (lazily rescaled),
//!   versus the window's `Ω(log²(N)/ε)` lower bound — decay is the cheap
//!   model.
//! * **Semantics**: decay can never express "exactly the last N ticks";
//!   stale items retain weight forever (halving per half-life), so a burst
//!   never fully ages out — the reason the paper's monitoring applications
//!   (DDoS windows, "last 24 hours" analytics) need sliding windows despite
//!   the memory premium.
//!
//! [`ExpDecayCounter`] is exact (no approximation parameter); the `ecm`
//! crate's `DecayedCm` drops it into a Count-Min array for decayed frequency
//! estimates over arbitrary key universes — the decayed analogue of the
//! ECM-sketch, used as a semantic baseline in tests.

/// An exactly maintained exponentially decayed count.
///
/// The decayed value at tick `t` is `Σ_i w_i · 2^(−(t − t_i)/half_life)`
/// over all arrivals `(t_i, w_i)`. Maintained lazily in O(1) space: the
/// stored value is the decayed count as of the last update, rescaled on
/// access.
///
/// ```
/// use sliding_window::decay::ExpDecayCounter;
///
/// let mut c = ExpDecayCounter::new(100); // half-life: 100 ticks
/// c.add(0, 8.0);
/// // One half-life later the mass has halved; two later, quartered.
/// assert!((c.value(100) - 4.0).abs() < 1e-9);
/// assert!((c.value(200) - 2.0).abs() < 1e-9);
/// // New arrivals stack on the surviving mass.
/// c.add(200, 2.0);
/// assert!((c.value(200) - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpDecayCounter {
    half_life: u64,
    /// Decayed value as of `as_of`.
    value: f64,
    as_of: u64,
}

impl ExpDecayCounter {
    /// A counter with the given half-life in ticks.
    ///
    /// # Panics
    /// If `half_life == 0`.
    pub fn new(half_life: u64) -> Self {
        assert!(half_life > 0, "half-life must be positive");
        ExpDecayCounter {
            half_life,
            value: 0.0,
            as_of: 0,
        }
    }

    /// The configured half-life.
    pub fn half_life(&self) -> u64 {
        self.half_life
    }

    fn decay_to(&mut self, now: u64) {
        debug_assert!(now >= self.as_of, "time must not run backwards");
        if now > self.as_of {
            let dt = (now - self.as_of) as f64 / self.half_life as f64;
            self.value *= (-dt * std::f64::consts::LN_2).exp();
            self.as_of = now;
        }
    }

    /// Record `weight` arriving at tick `now` (non-decreasing ticks).
    pub fn add(&mut self, now: u64, weight: f64) {
        self.decay_to(now);
        self.value += weight;
    }

    /// The decayed count as of tick `now ≥` the last update.
    pub fn value(&self, now: u64) -> f64 {
        let mut c = *self;
        c.decay_to(now);
        c.value
    }

    /// Merge another counter observing a disjoint stream: decayed counts
    /// are linear, so this is exact (the decayed analogue of the paper's
    /// lossless composition, and trivially so — the reason decayed models
    /// "cover linearity by default", §5).
    pub fn merge_from(&mut self, other: &ExpDecayCounter, now: u64) {
        assert_eq!(
            self.half_life, other.half_life,
            "half-lives must match to merge"
        );
        self.decay_to(now);
        self.value += other.value(now);
    }

    /// Append the compact wire encoding: the lazily-held value and its
    /// `as_of` tick (the half-life travels in the enclosing config).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        crate::codec::put_f64(buf, self.value);
        crate::codec::put_varint(buf, self.as_of);
    }

    /// Decode a counter previously produced by [`encode`](Self::encode)
    /// under the given half-life.
    ///
    /// # Errors
    /// [`CodecError`](crate::CodecError) on truncation, or `Corrupt` when
    /// the stored value is not a finite non-negative count (decayed masses
    /// can never be negative, NaN or infinite).
    pub fn decode(half_life: u64, input: &mut &[u8]) -> Result<Self, crate::CodecError> {
        if half_life == 0 {
            return Err(crate::CodecError::Corrupt {
                context: "decay half-life",
            });
        }
        let value = crate::codec::get_f64(input, "decay value")?;
        if !value.is_finite() || value < 0.0 {
            return Err(crate::CodecError::Corrupt {
                context: "decay value",
            });
        }
        let as_of = crate::codec::get_varint(input, "decay as_of")?;
        Ok(ExpDecayCounter {
            half_life,
            value,
            as_of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_life_halves() {
        let mut c = ExpDecayCounter::new(50);
        c.add(10, 16.0);
        assert!((c.value(10) - 16.0).abs() < 1e-12);
        assert!((c.value(60) - 8.0).abs() < 1e-9);
        assert!((c.value(160) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lazy_rescaling_matches_eager_sum() {
        // Interleaved adds at many ticks: compare against the direct
        // Σ w·2^(−age/h) formula.
        let h = 64u64;
        let arrivals: Vec<(u64, f64)> =
            (0..200u64).map(|i| (i * 3, 1.0 + (i % 5) as f64)).collect();
        let mut c = ExpDecayCounter::new(h);
        for &(t, w) in &arrivals {
            c.add(t, w);
        }
        let now = 700u64;
        let direct: f64 = arrivals
            .iter()
            .map(|&(t, w)| w * 2f64.powf(-((now - t) as f64) / h as f64))
            .sum();
        assert!(
            (c.value(now) - direct).abs() < 1e-9 * direct.max(1.0),
            "lazy {} vs direct {direct}",
            c.value(now)
        );
    }

    #[test]
    fn merge_is_exactly_linear() {
        let mut a = ExpDecayCounter::new(100);
        let mut b = ExpDecayCounter::new(100);
        let mut whole = ExpDecayCounter::new(100);
        for t in 0..500u64 {
            let w = 1.0 + (t % 3) as f64;
            whole.add(t, w);
            if t % 2 == 0 {
                a.add(t, w);
            } else {
                b.add(t, w);
            }
        }
        a.merge_from(&b, 500);
        assert!((a.value(500) - whole.value(500)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "half-lives")]
    fn merge_rejects_mismatched_half_lives() {
        let mut a = ExpDecayCounter::new(10);
        let b = ExpDecayCounter::new(20);
        a.merge_from(&b, 0);
    }

    #[test]
    fn decay_never_fully_forgets_a_burst() {
        // The semantic contrast with sliding windows: mass from a burst
        // survives every horizon (halved per half-life), where a window
        // would have dropped it entirely.
        let mut c = ExpDecayCounter::new(1_000);
        c.add(0, 1_000_000.0);
        // After 10 half-lives, ~977 units remain — far from zero.
        let v = c.value(10_000);
        assert!(v > 900.0 && v < 1_100.0, "v={v}");
        use crate::{EhConfig, ExponentialHistogram};
        let mut eh = ExponentialHistogram::new(&EhConfig::new(0.1, 1_000));
        eh.insert_ones(1, 1_000_000);
        // The window forgets completely.
        assert_eq!(eh.estimate(10_000, 1_000), 0.0);
    }

    #[test]
    fn value_before_any_add_is_zero() {
        let c = ExpDecayCounter::new(10);
        assert_eq!(c.value(1_000), 0.0);
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let mut c = ExpDecayCounter::new(73);
        for t in [5u64, 9, 400, 401] {
            c.add(t, 1.25 * t as f64);
        }
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = ExpDecayCounter::decode(73, &mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back, c);
        assert_eq!(back.value(1_000).to_bits(), c.value(1_000).to_bits());
    }

    #[test]
    fn codec_rejects_garbage() {
        // Truncation.
        let mut c = ExpDecayCounter::new(10);
        c.add(3, 2.0);
        let mut buf = Vec::new();
        c.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(
                ExpDecayCounter::decode(10, &mut slice).is_err(),
                "cut {cut}"
            );
        }
        // Negative, NaN and infinite masses are impossible states.
        for bad in [-1.0f64, f64::NAN, f64::INFINITY] {
            let mut buf = Vec::new();
            crate::codec::put_f64(&mut buf, bad);
            crate::codec::put_varint(&mut buf, 7);
            let mut slice = buf.as_slice();
            assert!(matches!(
                ExpDecayCounter::decode(10, &mut slice),
                Err(crate::CodecError::Corrupt { .. })
            ));
        }
        // A zero half-life cannot have produced any encoding.
        let mut slice: &[u8] = &[0; 9];
        assert!(ExpDecayCounter::decode(0, &mut slice).is_err());
    }
}
