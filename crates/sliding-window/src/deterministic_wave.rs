//! Deterministic waves (Gibbons & Tirthapura, SPAA 2002): a sliding-window
//! counter with the same `O(log²(N)/ε)` space as exponential histograms and a
//! flatter per-update cost profile (paper §4.2.2).
//!
//! Level `i` of the wave remembers the positions (ticks) of the most recent
//! `⌈1/ε⌉ + 1` arrivals whose *rank* (1-based arrival index) is divisible by
//! `2^i`. A query for cutoff `c` picks the finest level that still covers `c`
//! (its oldest remembered position is at or before `c`, or it never evicted),
//! locates the first remembered rank after the cutoff and interpolates: the
//! rank uncertainty is at most one level stride, which the capacity ties to
//! an ε fraction of the true answer.
//!
//! # Implementation note
//!
//! We append an arrival of rank `n` to every level `0..=tz(n)` (`tz` =
//! trailing zeros), which is O(1) amortized but O(log u) worst-case, versus
//! the O(1) worst-case of the original paper (achievable with linked level
//! splicing). The ECM paper's measured Table 3 — where waves update *slower*
//! than exponential histograms in practice — is unaffected; DESIGN.md §6
//! records the deviation.

use std::collections::VecDeque;

use crate::codec::{get_u8, get_varint, put_u8, put_varint};
use crate::error::{CodecError, MergeError};
use crate::traits::{MergeableCounter, WindowCounter, WindowGuarantee};

const CODEC_VERSION: u8 = 2;

/// Construction parameters for a [`DeterministicWave`].
#[derive(Debug, Clone, PartialEq)]
pub struct DwConfig {
    /// Target relative error ε ∈ (0, 1].
    pub epsilon: f64,
    /// Window length in ticks.
    pub window: u64,
    /// Upper bound `u(N, S)` on arrivals within one window. Required at
    /// construction time to size the level pyramid (paper §4.2.2); an
    /// overestimate costs only `O(log)` extra space.
    pub max_arrivals: u64,
}

impl DwConfig {
    /// Build a config, validating ranges.
    ///
    /// # Panics
    /// If `epsilon ∉ (0,1]`, `window == 0`, or `max_arrivals == 0`.
    pub fn new(epsilon: f64, window: u64, max_arrivals: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        assert!(window > 0, "window must be positive");
        assert!(max_arrivals > 0, "max_arrivals must be positive");
        DwConfig {
            epsilon,
            window,
            max_arrivals,
        }
    }

    /// Remembered positions per level: `⌈1/ε⌉ + 1`.
    pub fn level_capacity(&self) -> usize {
        (1.0 / self.epsilon).ceil() as usize + 1
    }

    /// Number of levels: enough that the coarsest level never evicts within
    /// the arrival bound (`capacity · 2^(l-1) ≥ max_arrivals`).
    pub fn level_count(&self) -> usize {
        let cap = self.level_capacity() as u64;
        let mut l = 1usize;
        while cap.saturating_mul(1u64 << (l - 1)) < self.max_arrivals && l < 63 {
            l += 1;
        }
        l
    }
}

/// A remembered arrival: its 1-based rank and its tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    rank: u64,
    pos: u64,
}

/// Deterministic ε-approximate sliding-window counter with per-level
/// position queues. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DeterministicWave {
    cfg: DwConfig,
    cap: usize,
    /// `queues[i]`: entries of rank divisible by `2^i`, oldest at the front.
    queues: Vec<VecDeque<Entry>>,
    /// Whether level `i` has ever evicted (if not, it holds *every* multiple
    /// of `2^i` seen so far and covers any cutoff).
    evicted: Vec<bool>,
    /// Lifetime arrival count = rank of the latest arrival.
    count: u64,
    last_ts: u64,
}

impl DeterministicWave {
    /// Create an empty wave.
    pub fn new(cfg: &DwConfig) -> Self {
        let levels = cfg.level_count();
        DeterministicWave {
            cap: cfg.level_capacity(),
            cfg: cfg.clone(),
            queues: vec![VecDeque::new(); levels],
            evicted: vec![false; levels],
            count: 0,
            last_ts: 0,
        }
    }

    /// The configuration this wave was built with.
    pub fn config(&self) -> &DwConfig {
        &self.cfg
    }

    /// Record one arrival at tick `ts` (non-decreasing).
    pub fn insert_one(&mut self, ts: u64) {
        debug_assert!(
            self.count == 0 || ts >= self.last_ts,
            "timestamps must be non-decreasing"
        );
        self.last_ts = ts;
        self.count += 1;
        let rank = self.count;
        let tz = (rank.trailing_zeros() as usize).min(self.queues.len() - 1);
        for i in 0..=tz {
            self.queues[i].push_back(Entry { rank, pos: ts });
            if self.queues[i].len() > self.cap {
                self.queues[i].pop_front();
                self.evicted[i] = true;
            }
        }
    }

    /// Record `n` arrivals, all at tick `ts`.
    ///
    /// Cost is `O(levels · capacity)` independent of `n` — the new ranks
    /// divisible by each level's stride are enumerated directly, and ranks
    /// that a sequential build would push and then evict are never
    /// materialized. The resulting state is **bit-identical** to `n`
    /// successive [`insert_one`](Self::insert_one) calls.
    pub fn insert_ones(&mut self, ts: u64, n: u64) {
        if n == 0 {
            return;
        }
        if n == 1 {
            self.insert_one(ts);
            return;
        }
        debug_assert!(
            self.count == 0 || ts >= self.last_ts,
            "timestamps must be non-decreasing"
        );
        self.last_ts = ts;
        let start = self.count;
        self.count += n;
        let cap = self.cap as u64;
        for i in 0..self.queues.len() {
            // Level i remembers the ranks divisible by 2^i; the burst
            // contributes the multiples in (start, start + n].
            let stride = 1u64 << i;
            let hi = self.count / stride;
            let num_new = hi - start / stride;
            if num_new == 0 {
                // Multiples of 2^(i+1) are a subset of multiples of 2^i:
                // every higher level is empty too.
                break;
            }
            // Entries a sequential build would push and evict again within
            // this burst are skipped outright; skipping one is an eviction.
            let skip = num_new.saturating_sub(cap);
            if skip > 0 {
                self.evicted[i] = true;
            }
            for m in (hi - (num_new - skip) + 1)..=hi {
                self.queues[i].push_back(Entry {
                    rank: m * stride,
                    pos: ts,
                });
                if self.queues[i].len() > self.cap {
                    self.queues[i].pop_front();
                    self.evicted[i] = true;
                }
            }
        }
    }

    /// Lifetime arrival count.
    pub fn lifetime_ones(&self) -> u64 {
        self.count
    }

    /// Tick of the latest arrival (0 if empty).
    pub fn last_tick(&self) -> u64 {
        self.last_ts
    }

    /// Estimated number of arrivals with tick in `(now - range, now]`.
    pub fn estimate(&self, now: u64, range: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let range = range.min(self.cfg.window);
        let cutoff = now.saturating_sub(range);
        // Finest covering level: never evicted, or oldest entry at/before
        // the cutoff.
        for (i, q) in self.queues.iter().enumerate() {
            let covers = !self.evicted[i] || q.front().is_some_and(|e| e.pos <= cutoff);
            if !covers {
                continue;
            }
            return self.estimate_at_level(i, cutoff);
        }
        // Unreachable with a correctly sized pyramid (the top level never
        // evicts while the arrival bound holds); degrade gracefully.
        self.estimate_at_level(self.queues.len() - 1, cutoff)
    }

    fn estimate_at_level(&self, i: usize, cutoff: u64) -> f64 {
        let q = &self.queues[i];
        let stride = 1u64 << i;
        // Entries are rank- and pos-ordered; find the first strictly inside
        // the query range.
        let (a, b) = q.as_slices();
        let ia = a.partition_point(|e| e.pos <= cutoff);
        let first_inside = if ia < a.len() {
            Some(a[ia])
        } else {
            let ib = b.partition_point(|e| e.pos <= cutoff);
            b.get(ib).copied()
        };
        match first_inside {
            Some(e) => {
                // True boundary rank r* (last rank at/before cutoff) lies in
                // [e.rank - stride, e.rank - 1]; exact at level 0.
                let r_star = if i == 0 {
                    (e.rank - 1) as f64
                } else {
                    e.rank as f64 - (stride as f64 / 2.0)
                };
                // If nothing was ever evicted *and* no stored entry precedes
                // the cutoff, the stream may have started inside the range:
                // ranks before e.rank with no stored position. Level 0 keeps
                // every rank while unevicted, so e.rank-1 of them precede.
                (self.count as f64 - r_star).max(0.0)
            }
            None => {
                // Every stored position is at or before the cutoff; only the
                // ranks after the newest stored multiple can be inside.
                let back = q.back().map_or(0, |e| e.rank);
                debug_assert!(self.count >= back);
                (self.count - back) as f64 / 2.0
            }
        }
    }

    /// Reconstruct the stream as (tick, weight) events for aggregation:
    /// consecutive remembered ranks bound how many arrivals fell between two
    /// ticks; half are replayed at each boundary (mirroring the exponential-
    /// histogram replay of paper §5.1).
    pub fn replay_events(&self) -> Vec<(u64, u64)> {
        let mut entries: Vec<Entry> = self.queues.iter().flat_map(|q| q.iter().copied()).collect();
        entries.sort_unstable_by_key(|e| e.rank);
        entries.dedup_by_key(|e| e.rank);
        let mut events = Vec::with_capacity(entries.len() * 2 + 1);
        let mut prev: Option<Entry> = None;
        for e in entries {
            match prev {
                None => {
                    // Ranks 1..=e.rank arrived at ticks ≤ e.pos.
                    events.push((e.pos, e.rank));
                }
                Some(p) => {
                    let d = e.rank - p.rank;
                    if d > 0 {
                        let half = d / 2;
                        if half > 0 {
                            events.push((p.pos, half));
                        }
                        events.push((e.pos, d - half));
                    }
                }
            }
            prev = Some(e);
        }
        // Trailing ranks after the newest remembered multiple.
        if let Some(p) = prev {
            let d = self.count - p.rank;
            if d > 0 {
                let half = d / 2;
                if half > 0 {
                    events.push((p.pos, half));
                }
                events.push((self.last_ts, d - half));
            }
        } else if self.count > 0 {
            events.push((self.last_ts, self.count));
        }
        events
    }
}

impl WindowCounter for DeterministicWave {
    type Config = DwConfig;
    type GridStorage = crate::grid::VecCells<Self>;

    fn new(cfg: &Self::Config) -> Self {
        DeterministicWave::new(cfg)
    }

    fn insert(&mut self, ts: u64, _id: u64) {
        self.insert_one(ts);
    }

    fn insert_weighted(&mut self, ts: u64, _first_id: u64, n: u64) {
        self.insert_ones(ts, n);
    }

    fn query(&self, now: u64, range: u64) -> f64 {
        self.estimate(now, range)
    }

    fn window_len(&self) -> u64 {
        self.cfg.window
    }

    fn guarantee(cfg: &Self::Config) -> Option<WindowGuarantee> {
        Some(WindowGuarantee::deterministic(cfg.epsilon))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.queues.capacity() * std::mem::size_of::<VecDeque<Entry>>()
            + self
                .queues
                .iter()
                .map(|q| q.capacity() * std::mem::size_of::<Entry>())
                .sum::<usize>()
            + self.evicted.capacity()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, self.queues.len() as u64);
        for (i, q) in self.queues.iter().enumerate() {
            put_u8(buf, u8::from(self.evicted[i]));
            put_varint(buf, q.len() as u64);
            let mut prev = Entry { rank: 0, pos: 0 };
            for &e in q {
                put_varint(buf, e.rank - prev.rank);
                put_varint(buf, e.pos - prev.pos);
                prev = e;
            }
        }
        put_varint(buf, self.count);
        put_varint(buf, self.last_ts);
    }

    fn decode(cfg: &Self::Config, input: &mut &[u8]) -> Result<Self, CodecError> {
        let version = get_u8(input, "dw version")?;
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let n_levels = get_varint(input, "dw levels")? as usize;
        if n_levels != cfg.level_count() {
            return Err(CodecError::Corrupt {
                context: "dw levels",
            });
        }
        let cap = cfg.level_capacity();
        let mut queues = Vec::with_capacity(n_levels);
        let mut evicted = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            evicted.push(get_u8(input, "dw evicted")? != 0);
            let n = get_varint(input, "dw queue len")? as usize;
            if n > cap {
                return Err(CodecError::Corrupt {
                    context: "dw queue len",
                });
            }
            let mut q = VecDeque::with_capacity(n);
            let mut prev = Entry { rank: 0, pos: 0 };
            for _ in 0..n {
                let dr = get_varint(input, "dw rank")?;
                let dp = get_varint(input, "dw pos")?;
                let e = Entry {
                    rank: prev
                        .rank
                        .checked_add(dr)
                        .ok_or(CodecError::Corrupt { context: "dw rank" })?,
                    pos: prev
                        .pos
                        .checked_add(dp)
                        .ok_or(CodecError::Corrupt { context: "dw pos" })?,
                };
                q.push_back(e);
                prev = e;
            }
            queues.push(q);
        }
        let count = get_varint(input, "dw count")?;
        let last_ts = get_varint(input, "dw last_ts")?;
        // Semantic validation: every remembered rank must be a positive
        // multiple of its level stride and no larger than the total count.
        for (i, q) in queues.iter().enumerate() {
            let stride = 1u64 << i.min(63);
            for e in q {
                if e.rank == 0 || e.rank % stride != 0 || e.rank > count {
                    return Err(CodecError::Corrupt { context: "dw rank" });
                }
            }
        }
        Ok(DeterministicWave {
            cap,
            cfg: cfg.clone(),
            queues,
            evicted,
            count,
            last_ts,
        })
    }
}

impl MergeableCounter for DeterministicWave {
    const LOSSLESS_MERGE: bool = false;

    /// Order-preserving aggregation via stream replay (paper §5.1 extends
    /// the exponential-histogram scheme to waves).
    fn merge(parts: &[&Self], out_cfg: &Self::Config) -> Result<Self, MergeError> {
        if parts.is_empty() {
            return Err(MergeError::Empty);
        }
        for (i, p) in parts.iter().enumerate() {
            if p.cfg.window != out_cfg.window {
                return Err(MergeError::IncompatibleConfig {
                    detail: format!(
                        "window mismatch at part {i}: {} vs {}",
                        p.cfg.window, out_cfg.window
                    ),
                });
            }
        }
        let mut events: Vec<(u64, u64)> = parts.iter().flat_map(|p| p.replay_events()).collect();
        events.sort_unstable_by_key(|&(ts, _)| ts);
        let mut out = DeterministicWave::new(out_cfg);
        for (ts, n) in events {
            out.insert_ones(ts, n);
        }
        let now = parts.iter().map(|p| p.last_ts).max().unwrap_or(0);
        out.last_ts = out.last_ts.max(now);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exact_count(ticks: &[u64], now: u64, range: u64) -> u64 {
        let cutoff = now.saturating_sub(range);
        ticks.iter().filter(|&&t| t > cutoff && t <= now).count() as u64
    }

    fn build(eps: f64, window: u64, u: u64, ticks: &[u64]) -> DeterministicWave {
        let mut w = DeterministicWave::new(&DwConfig::new(eps, window, u));
        for &t in ticks {
            w.insert_one(t);
        }
        w
    }

    #[test]
    fn empty_wave_reports_zero() {
        let w = DeterministicWave::new(&DwConfig::new(0.1, 100, 1000));
        assert_eq!(w.estimate(50, 100), 0.0);
        assert_eq!(w.lifetime_ones(), 0);
    }

    #[test]
    fn level_geometry() {
        let cfg = DwConfig::new(0.1, 100, 10_000);
        assert_eq!(cfg.level_capacity(), 11);
        // cap * 2^(l-1) >= 10_000 → 11 * 1024 ≥ 10_000 at l = 11.
        assert_eq!(cfg.level_count(), 11);
        let tight = DwConfig::new(0.5, 100, 3);
        assert_eq!(tight.level_capacity(), 3);
        assert_eq!(tight.level_count(), 1);
    }

    #[test]
    #[should_panic(expected = "max_arrivals")]
    fn zero_bound_rejected() {
        let _ = DwConfig::new(0.1, 10, 0);
    }

    #[test]
    fn small_stream_exact_at_level_zero() {
        let w = build(0.1, 1000, 1000, &[1, 3, 5, 7, 9]);
        assert_eq!(w.estimate(9, 1000), 5.0);
        assert_eq!(w.estimate(9, 4), 2.0); // ticks 7, 9
        assert_eq!(w.estimate(9, 2), 1.0); // tick 9 only (cutoff 7 excluded)
    }

    #[test]
    fn full_window_error_within_eps() {
        let n = 50_000u64;
        let ticks: Vec<u64> = (1..=n).collect();
        for &eps in &[0.05f64, 0.1, 0.2] {
            let window = 10_000u64;
            let w = build(eps, window, n, &ticks);
            let est = w.estimate(n, window);
            let exact = window as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel <= eps + 1e-9, "eps={eps} rel={rel} est={est}");
        }
    }

    #[test]
    fn covers_every_range_within_eps() {
        let n = 20_000u64;
        let ticks: Vec<u64> = (1..=n).collect();
        let eps = 0.1;
        let w = build(eps, n, n, &ticks);
        for range in [10u64, 100, 1000, 5000, 19_999] {
            let est = w.estimate(n, range);
            let exact = exact_count(&ticks, n, range) as f64;
            assert!(
                (est - exact).abs() <= eps * exact + 1.0,
                "range={range} est={est} exact={exact}"
            );
        }
    }

    #[test]
    fn codec_round_trips() {
        let cfg = DwConfig::new(0.1, 10_000, 5_000);
        let mut w = DeterministicWave::new(&cfg);
        for t in 1..=3000u64 {
            // Irregular but non-decreasing tick sequence.
            w.insert_one(t * 7 + (t % 7));
        }
        let mut buf = Vec::new();
        w.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = DeterministicWave::decode(&cfg, &mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.lifetime_ones(), w.lifetime_ones());
        for range in [13u64, 500, 9999] {
            assert_eq!(back.estimate(21_010, range), w.estimate(21_010, range));
        }
        // Truncated prefixes must either fail to decode or decode to a
        // structure that visibly differs (a prefix of a valid stream can be
        // another well-formed, shorter structure).
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            if let Ok(partial) = DeterministicWave::decode(&cfg, &mut s) {
                let mut re = Vec::new();
                partial.encode(&mut re);
                assert_ne!(re, buf, "cut={cut} decoded to an identical wave");
            }
        }
    }

    #[test]
    fn merge_approximates_union() {
        let window = 1_000_000u64;
        let eps = 0.1;
        let a_ticks: Vec<u64> = (1..=3000).map(|i| i * 2).collect();
        let b_ticks: Vec<u64> = (1..=3000).map(|i| i * 2 + 1).collect();
        let a = build(eps, window, 10_000, &a_ticks);
        let b = build(eps, window, 10_000, &b_ticks);
        let out_cfg = DwConfig::new(eps, window, 20_000);
        let merged = DeterministicWave::merge(&[&a, &b], &out_cfg).unwrap();
        let mut union: Vec<u64> = a_ticks.iter().chain(&b_ticks).copied().collect();
        union.sort_unstable();
        let now = *union.last().unwrap();
        let envelope = 2.0 * eps + eps * eps;
        for range in [400u64, 1500, 5999] {
            let est = merged.estimate(now, range);
            let exact = exact_count(&union, now, range) as f64;
            assert!(
                (est - exact).abs() <= envelope * exact + 2.0,
                "range={range} est={est} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_rejects_bad_inputs() {
        let cfg = DwConfig::new(0.1, 100, 100);
        assert!(matches!(
            DeterministicWave::merge(&[], &cfg),
            Err(MergeError::Empty)
        ));
        let other = DeterministicWave::new(&DwConfig::new(0.1, 200, 100));
        assert!(matches!(
            DeterministicWave::merge(&[&other], &cfg),
            Err(MergeError::IncompatibleConfig { .. })
        ));
    }

    #[test]
    fn replay_preserves_total_count() {
        let ticks: Vec<u64> = (1..=5000u64).collect();
        let w = build(0.1, 1_000_000, 5000, &ticks);
        let total: u64 = w.replay_events().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 5000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_estimate_within_eps_plus_slack(
            gaps in proptest::collection::vec(1u64..10, 100..1500),
            eps in 0.05f64..0.4,
            range_frac in 0.05f64..1.0,
        ) {
            let mut ticks = Vec::with_capacity(gaps.len());
            let mut t = 0u64;
            for g in gaps { t += g; ticks.push(t); }
            let now = *ticks.last().unwrap();
            let w = build(eps, now + 1, ticks.len() as u64, &ticks);
            let range = ((now as f64 * range_frac) as u64).max(1);
            let est = w.estimate(now, range);
            let exact = exact_count(&ticks, now, range) as f64;
            prop_assert!(
                (est - exact).abs() <= eps * exact + 1.0,
                "est={} exact={} eps={}", est, exact, eps
            );
        }

        #[test]
        fn prop_codec_roundtrip(
            n in 1u64..2000,
            eps in 0.05f64..0.5,
        ) {
            let cfg = DwConfig::new(eps, 100_000, 4000);
            let mut w = DeterministicWave::new(&cfg);
            for t in 1..=n { w.insert_one(t * 3); }
            let mut buf = Vec::new();
            w.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = DeterministicWave::decode(&cfg, &mut slice).unwrap();
            prop_assert!(slice.is_empty());
            prop_assert_eq!(back.estimate(n * 3, 50_000), w.estimate(n * 3, 50_000));
        }
    }
}
