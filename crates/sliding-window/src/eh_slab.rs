//! Slab-backed grids of exponential histograms — the contiguous
//! fixed-capacity EH core behind `EcmSketch<ExponentialHistogram>`.
//!
//! A standalone [`ExponentialHistogram`] keeps each bucket level in its own
//! `VecDeque<u64>`: flexible, but a `width × depth` grid of them fragments
//! into thousands of small allocations that inserts and queries chase
//! across the heap. The key observation is that the EH level capacity is
//! **fixed at construction** (`EhConfig::level_capacity()`), so a level
//! never needs a growable container: [`EhGrid`] carves every level of every
//! cell out of **one contiguous slab** for the whole grid, as a
//! fixed-capacity ring addressed by a `(head, len)` cursor:
//!
//! ```text
//! slab: ┌─────────── cell 0 ──────────┬─────────── cell 1 ──────────┬─ ...
//!       │ lvl0 ring │ lvl1 ring │ ... │ lvl0 ring │ lvl1 ring │ ... │
//!       └───────────┴───────────┴─────┴───────────┴───────────┴─────┘
//!        each ring: `cap` slots; cursors (head, len) live in a parallel
//!        array; cells are laid out row-major in grid order, so the d
//!        cells one item touches are the only cache misses per insert.
//! ```
//!
//! Two further layout savings over the per-cell representation:
//!
//! * **Offset compression** — bucket end-ticks of one cell always span less
//!   than one window (`expire` runs on every insert), so for windows below
//!   `2³²` ticks they are stored as `u32` offsets from a per-cell base that
//!   is rebased (rarely) as the stream advances. Wider windows fall back to
//!   a `u64` slab.
//! * **No per-level containers** — a level costs `cap` slots plus one 4-byte
//!   cursor instead of a 32-byte `VecDeque` header plus its own allocation.
//!
//! Cell state transitions are an exact mirror of the standalone
//! histogram's insert/cascade/expire/estimate logic — same bucket
//! sequences, same estimates bit for bit, and byte-identical wire
//! encodings (the differential suites in this module and in
//! `tests/slab_layout.rs` pin this down). The only reordering is inside the
//! cascade: where the deque pushes then pops on overflow, the ring pops the
//! two oldest buckets *before* pushing, which never needs more than `cap`
//! slots and provably yields the same bucket sequence.
//!
//! The number of levels grows with the stream (one level per doubling of
//! the in-window count); the grid grows all cells' level allocation
//! together, re-laying out the slab — a handful of `O(slab)` copies over a
//! sketch's lifetime.

use crate::codec::{put_u8, put_varint};
use crate::error::CodecError;
use crate::exponential_histogram::{EhConfig, ExponentialHistogram, CODEC_VERSION};
use crate::grid::{sealed, CellStorage};
use crate::traits::WindowCounter;
use std::collections::VecDeque;

/// Slab element: a bucket end-tick stored as an offset from its cell's
/// base tick.
trait SlabWord: Copy + Default + std::fmt::Debug {
    /// Largest storable offset.
    const MAX_OFFSET: u64;
    fn from_offset(v: u64) -> Self;
    fn to_offset(self) -> u64;
}

impl SlabWord for u32 {
    const MAX_OFFSET: u64 = u32::MAX as u64;
    #[inline]
    fn from_offset(v: u64) -> Self {
        debug_assert!(v <= Self::MAX_OFFSET, "offset {v} exceeds u32 slab word");
        v as u32
    }
    #[inline]
    fn to_offset(self) -> u64 {
        u64::from(self)
    }
}

impl SlabWord for u64 {
    const MAX_OFFSET: u64 = u64::MAX;
    #[inline]
    fn from_offset(v: u64) -> Self {
        v
    }
    #[inline]
    fn to_offset(self) -> u64 {
        self
    }
}

/// `(head, len)` cursor of one level's ring. `head` indexes the newest
/// bucket; logical position `i` (newest-first) lives at slot
/// `(head + i) mod slots`.
#[derive(Debug, Clone, Copy, Default)]
struct Ring {
    head: u32,
    len: u32,
}

/// Per-cell metadata: the standalone histogram's scalar fields plus the
/// offset base.
#[derive(Debug, Clone, Copy, Default)]
struct CellMeta {
    /// Active level count (trailing empty levels trimmed), mirroring the
    /// standalone `levels.len()`.
    levels: u16,
    /// Base tick the cell's slab offsets are relative to.
    base: u64,
    /// Unexpired 1-bits currently held.
    total: u64,
    /// Tick of the most recent insertion.
    last_ts: u64,
    /// Tick of the first insertion ever, if any.
    first_ts: Option<u64>,
    /// End-tick of the most recently expired bucket.
    dropped_end: Option<u64>,
    /// Lifetime 1-bits inserted.
    lifetime: u64,
}

/// Push `v` as the newest entry of a level ring (the slice is the level's
/// full slot range; capacity checks are the caller's cascade logic).
#[inline]
fn rpush_front<T: Copy>(ring: &mut Ring, slab: &mut [T], v: T) {
    debug_assert!((ring.len as usize) < slab.len(), "ring over capacity");
    let head = if ring.head == 0 {
        (slab.len() - 1) as u32
    } else {
        ring.head - 1
    };
    ring.head = head;
    ring.len += 1;
    slab[head as usize] = v;
}

/// Pop and return the oldest entry of a level ring.
#[inline]
fn rpop_back<T: Copy>(ring: &mut Ring, slab: &[T]) -> T {
    debug_assert!(ring.len > 0, "pop from empty ring");
    ring.len -= 1;
    let mut pos = (ring.head as usize) + (ring.len as usize);
    if pos >= slab.len() {
        pos -= slab.len();
    }
    slab[pos]
}

/// The slab proper, generic over the stored word.
#[derive(Debug, Clone)]
struct SlabCore<T> {
    cfg: EhConfig,
    /// Max buckets a level holds at rest (`EhConfig::level_capacity()`).
    cap: usize,
    /// Ring slots per level (`cap`, or one more after decoding a
    /// defensively-tolerated over-full level).
    slots: usize,
    /// Levels currently allocated per cell (uniform across the grid).
    levels_alloc: usize,
    /// `n_cells × levels_alloc × slots` bucket end-offsets.
    slab: Vec<T>,
    /// `n_cells × levels_alloc` ring cursors.
    rings: Vec<Ring>,
    cells: Vec<CellMeta>,
    /// Reusable carry buffers for the bulk cascade (≤ `cap` entries each);
    /// keeping them here removes the two heap allocations the standalone
    /// bulk path pays per insert.
    scratch_a: Vec<T>,
    scratch_b: Vec<T>,
}

impl<T: SlabWord> SlabCore<T> {
    fn new(cfg: &EhConfig, n_cells: usize) -> Self {
        let cap = cfg.level_capacity();
        assert!(cap >= 2, "level capacity must hold a merge pair");
        assert!(
            cap + 1 < u32::MAX as usize,
            "level capacity exceeds ring cursor range"
        );
        SlabCore {
            cfg: cfg.clone(),
            cap,
            slots: cap,
            levels_alloc: 0,
            slab: Vec::new(),
            rings: Vec::new(),
            cells: vec![CellMeta::default(); n_cells],
            scratch_a: Vec::with_capacity(cap),
            scratch_b: Vec::with_capacity(cap),
        }
    }

    /// Grow the per-cell level allocation to `need`, re-laying out the slab
    /// (exact-size allocations keep `memory_bytes` equal to what is used).
    #[cold]
    fn grow_levels(&mut self, need: usize) {
        debug_assert!(need > self.levels_alloc);
        let n_cells = self.cells.len();
        let old_alloc = self.levels_alloc;
        let mut slab = vec![T::default(); n_cells * need * self.slots];
        let mut rings = vec![Ring::default(); n_cells * need];
        for cell in 0..n_cells {
            let old_base = cell * old_alloc;
            let new_base = cell * need;
            slab[new_base * self.slots..(new_base + old_alloc) * self.slots].copy_from_slice(
                &self.slab[old_base * self.slots..(old_base + old_alloc) * self.slots],
            );
            rings[new_base..new_base + old_alloc]
                .copy_from_slice(&self.rings[old_base..old_base + old_alloc]);
        }
        self.slab = slab;
        self.rings = rings;
        self.levels_alloc = need;
    }

    /// Mark level `level` active for `cell`, allocating grid-wide if this is
    /// the first cell to reach it. Mirrors the standalone
    /// `levels.push(VecDeque::new())`.
    #[inline]
    fn activate_level(&mut self, cell: usize, level: usize) {
        debug_assert_eq!((self.cells[cell].levels as usize), level);
        if level >= self.levels_alloc {
            self.grow_levels(level + 1);
        }
        self.cells[cell].levels = (level + 1) as u16;
    }

    #[inline]
    fn ring_index(&self, cell: usize, level: usize) -> usize {
        cell * self.levels_alloc + level
    }

    #[inline]
    fn len_of(&self, cell: usize, level: usize) -> usize {
        self.rings[self.ring_index(cell, level)].len as usize
    }

    /// Slab slot of logical position `i` (0 = newest) of a level's ring.
    #[inline]
    fn slot_of(&self, cell: usize, level: usize, i: usize) -> usize {
        let ring = self.rings[self.ring_index(cell, level)];
        debug_assert!(i < (ring.len as usize));
        let mut pos = (ring.head as usize) + i;
        if pos >= self.slots {
            pos -= self.slots;
        }
        self.ring_index(cell, level) * self.slots + pos
    }

    /// Reconstructed end-tick at logical position `i` (0 = newest).
    #[inline]
    fn end_at(&self, cell: usize, level: usize, i: usize) -> u64 {
        self.cells[cell].base + self.slab[self.slot_of(cell, level, i)].to_offset()
    }

    /// Ring cursor and slab slice of one level, borrowed together for the
    /// hot loops (one bounds check per level instead of one per bucket op).
    #[inline]
    fn level_parts(&mut self, cell: usize, level: usize) -> (&mut Ring, &mut [T]) {
        let ri = cell * self.levels_alloc + level;
        let slots = self.slots;
        (
            &mut self.rings[ri],
            &mut self.slab[ri * slots..(ri + 1) * slots],
        )
    }

    /// One bit through the cascade: the ring form of the standalone
    /// `push_bit`, popping the merge pair *before* pushing so `cap` slots
    /// always suffice. Produces the identical bucket sequence.
    fn push_bit(&mut self, cell: usize, ts_off: T) {
        let cap = self.cap;
        if self.cells[cell].levels == 0 {
            self.activate_level(cell, 0);
        }
        // Fast path: level 0 has room — the overwhelmingly common case.
        let (ring, slab) = self.level_parts(cell, 0);
        if (ring.len as usize) < cap {
            rpush_front(ring, slab, ts_off);
            return;
        }
        let mut v = ts_off;
        let mut i = 0usize;
        loop {
            let (ring, slab) = self.level_parts(cell, i);
            let carry = if (ring.len as usize) >= cap {
                let _older = rpop_back(ring, slab);
                Some(rpop_back(ring, slab))
            } else {
                None
            };
            rpush_front(ring, slab, v);
            match carry {
                None => return,
                Some(newer) => {
                    // The merged bucket enters the next level newest-first,
                    // exactly like the standalone cascade.
                    v = newer;
                    i += 1;
                    if (self.cells[cell].levels as usize) == i {
                        self.activate_level(cell, i);
                    }
                }
            }
        }
    }

    /// `n` same-tick bits with one pass per level: the slab form of the
    /// standalone `push_bits_bulk`.
    ///
    /// The per-level update is fully closed-form. The level's arrivals are
    /// `e` explicit carry ends (each newer than everything stored, older
    /// than `ts`) followed by `run` buckets ending at `ts`; pops always
    /// take the two oldest present entries and keep the newer, so over the
    /// *virtual arrival sequence* — stored buckets oldest-first, then the
    /// explicit ends, then the `ts`-run — exactly the first `2q` positions
    /// are consumed and the carries out are positions `2, 4, …, 2q`, where
    /// `q` follows from the overflow count alone. That turns the standalone
    /// path's per-carry replay loop into: read ≤ `q` carry values, drop a
    /// prefix by cursor arithmetic, push the surviving explicit ends, and
    /// block-fill the surviving `ts` buckets. (The carry buffers are
    /// scratch fields, reused across calls instead of allocated per call.)
    ///
    /// Bit-identity with the standalone cascade is pinned down by the
    /// differential suites in this module and `tests/slab_layout.rs`.
    fn push_bits_bulk(&mut self, cell: usize, ts_off: T, n: u64) {
        let cap64 = self.cap as u64;
        let mut explicit = std::mem::take(&mut self.scratch_a);
        let mut out_explicit = std::mem::take(&mut self.scratch_b);
        explicit.clear();
        let mut run: u64 = n;
        let mut i = 0usize;
        let mut active = self.cells[cell].levels as usize;
        while !explicit.is_empty() || run > 0 {
            if i == active {
                if i >= self.levels_alloc {
                    self.grow_levels(i + 1);
                }
                active = i + 1;
            }
            let slots = self.slots;
            let (ring, slab) = self.level_parts(cell, i);
            // Cursors as locals for the whole level; written back once.
            let mut head = ring.head as usize;
            let mut len_l = ring.len as usize;
            let len = len_l as u64;
            let e = explicit.len() as u64;
            let arrivals = e + run;
            // Overflow pairs: the level tops up after `cap − len` pushes,
            // then every second push merges the two oldest entries.
            let free = cap64.saturating_sub(len);
            let q = if arrivals <= free {
                0
            } else {
                1 + (arrivals - free - 1) / 2
            };
            out_explicit.clear();
            if q > 0 {
                // Carries out: virtual positions 2, 4, …, 2q (oldest-first
                // numbering over stored ∥ explicit ∥ ts-run). Stored
                // positions first …
                let two_q = 2 * q;
                let mut p = 2u64;
                let stored_last = two_q.min(len);
                while p <= stored_last {
                    let mut pos = head + (len - p) as usize;
                    if pos >= slots {
                        pos -= slots;
                    }
                    out_explicit.push(slab[pos]);
                    p += 2;
                }
                // … then explicit positions; every even position past
                // `len + e` is a ts bucket, counted below.
                let explicit_last = two_q.min(len + e);
                while p <= explicit_last {
                    out_explicit.push(explicit[(p - len - 1) as usize]);
                    p += 2;
                }
                // Drop the consumed oldest prefix by cursor arithmetic.
                len_l -= two_q.min(len) as usize;
            }
            let ts_carries = q - out_explicit.len() as u64;
            // Surviving explicit ends enter newest-first, in arrival order.
            let e_consumed = ((2 * q).saturating_sub(len) as usize).min(explicit.len());
            for &end in &explicit[e_consumed..] {
                head = if head == 0 { slots - 1 } else { head - 1 };
                slab[head] = end;
                len_l += 1;
            }
            // Surviving ts buckets all hold the same offset: fill the front
            // slots as a block (wrapping at most once; `ts_kept` never
            // exceeds the slot count, so wraparound is compares, not a
            // division).
            let ts_kept = (run - (2 * q).saturating_sub(len + e)) as usize;
            if ts_kept > 0 {
                let mut new_head = head + slots - ts_kept;
                if new_head >= slots {
                    new_head -= slots;
                }
                if new_head < head {
                    slab[new_head..head].fill(ts_off);
                } else {
                    slab[new_head..].fill(ts_off);
                    slab[..head].fill(ts_off);
                }
                head = new_head;
                len_l += ts_kept;
            }
            debug_assert!(len_l as u64 <= cap64);
            ring.head = head as u32;
            ring.len = len_l as u32;
            std::mem::swap(&mut explicit, &mut out_explicit);
            run = ts_carries;
            i += 1;
        }
        self.cells[cell].levels = active as u16;
        self.scratch_a = explicit;
        self.scratch_b = out_explicit;
    }

    /// Drop buckets that no longer overlap the window ending at `now`
    /// (ring form of the standalone `expire`).
    fn expire(&mut self, cell: usize, now: u64) {
        let cutoff = now.saturating_sub(self.cfg.window);
        if cutoff == 0 {
            return;
        }
        let base = self.cells[cell].base;
        let levels = self.cells[cell].levels as usize;
        if levels == 0 {
            return;
        }
        // Fast path: the oldest retained bucket (back of the top level)
        // still overlaps the window — nothing expires.
        {
            let (a, b) = self.level_slices(cell, levels - 1);
            if let Some(oldest) = b.last().or(a.last()) {
                if base + oldest.to_offset() > cutoff {
                    return;
                }
            }
        }
        let mut dropped_bits = 0u64;
        let mut dropped_end: Option<u64> = None;
        'levels: for i in (0..levels).rev() {
            let size = 1u64 << i;
            let (ring, slab) = self.level_parts(cell, i);
            while ring.len > 0 {
                let slots = slab.len();
                let mut pos = (ring.head as usize) + (ring.len as usize) - 1;
                if pos >= slots {
                    pos -= slots;
                }
                let end = base + slab[pos].to_offset();
                if end > cutoff {
                    break 'levels;
                }
                ring.len -= 1;
                dropped_bits += size;
                // Pops proceed oldest-first, so ends only grow: the last
                // one popped is the max, matching the per-pop max fold of
                // the standalone path.
                dropped_end = Some(end);
            }
        }
        if dropped_bits > 0 {
            let meta = &mut self.cells[cell];
            meta.total -= dropped_bits;
            if let Some(end) = dropped_end {
                meta.dropped_end = Some(match meta.dropped_end {
                    Some(d) => d.max(end),
                    None => end,
                });
            }
        }
        let mut active = self.cells[cell].levels as usize;
        while active > 0 && self.len_of(cell, active - 1) == 0 {
            active -= 1;
        }
        self.cells[cell].levels = active as u16;
    }

    /// Shift the cell's offset base forward to `new_base` (all retained
    /// ends must exceed it — guaranteed after `expire`).
    #[cold]
    fn rebase(&mut self, cell: usize, new_base: u64) {
        let old_base = self.cells[cell].base;
        debug_assert!(new_base >= old_base);
        let delta = new_base - old_base;
        for level in 0..(self.cells[cell].levels as usize) {
            for i in 0..self.len_of(cell, level) {
                let slot = self.slot_of(cell, level, i);
                let off = self.slab[slot].to_offset();
                debug_assert!(off >= delta, "retained end older than the new base");
                self.slab[slot] = T::from_offset(off - delta);
            }
        }
        self.cells[cell].base = new_base;
    }

    /// Record `n` 1-bits at tick `ts` in `cell` — the slab mirror of the
    /// standalone `insert_ones`, including its small-burst/bulk threshold.
    fn insert_ones(&mut self, cell: usize, ts: u64, n: u64) {
        if n == 0 {
            return;
        }
        {
            let meta = &mut self.cells[cell];
            debug_assert!(
                meta.first_ts.is_none() || ts >= meta.last_ts,
                "timestamps must be non-decreasing: {ts} after {}",
                meta.last_ts
            );
            if meta.first_ts.is_none() {
                meta.first_ts = Some(ts);
            }
            meta.last_ts = ts;
            meta.total += n;
            meta.lifetime += n;
        }
        self.expire(cell, ts);
        let mut base = self.cells[cell].base;
        if ts - base > T::MAX_OFFSET {
            // All retained ends exceed ts − window after the expiry above,
            // so the window start is always a safe new base.
            base = ts.saturating_sub(self.cfg.window);
            self.rebase(cell, base);
        }
        let ts_off = T::from_offset(ts - base);
        // Lower bulk threshold than the standalone path: the closed-form
        // level update is cheap enough here that per-bit cascades only win
        // for bursts well under one level capacity. (Both paths produce
        // bit-identical states, so the threshold is purely a cost choice.)
        if n < self.cap as u64 / 2 {
            for _ in 0..n {
                self.push_bit(cell, ts_off);
            }
        } else {
            self.push_bits_bulk(cell, ts_off, n);
        }
    }

    /// A level's occupied slots as two newest-first slices (the ring
    /// analogue of `VecDeque::as_slices`).
    #[inline]
    fn level_slices(&self, cell: usize, level: usize) -> (&[T], &[T]) {
        let ri = cell * self.levels_alloc + level;
        let slots = self.slots;
        let slab = &self.slab[ri * slots..(ri + 1) * slots];
        let ring = self.rings[ri];
        let head = ring.head as usize;
        let len = ring.len as usize;
        if head + len <= slots {
            (&slab[head..head + len], &[])
        } else {
            (&slab[head..], &slab[..head + len - slots])
        }
    }

    /// Number of leading (newest-side) entries of a level strictly newer
    /// than `cutoff` — the ring form of the standalone `partition_desc`.
    fn count_newer(&self, cell: usize, level: usize, cutoff: u64) -> usize {
        let base = self.cells[cell].base;
        if cutoff < base {
            return self.len_of(cell, level);
        }
        let cut_off = cutoff - base;
        let (a, b) = self.level_slices(cell, level);
        // Offsets descend front → back, like the deque's end-ticks.
        let pa = a.partition_point(|e| e.to_offset() > cut_off);
        if pa < a.len() {
            pa
        } else {
            a.len() + b.partition_point(|e| e.to_offset() > cut_off)
        }
    }

    /// Estimated 1-bits with tick in `(now − range, now]` — bit-identical
    /// to the standalone `estimate`.
    fn estimate(&self, cell: usize, now: u64, range: u64) -> f64 {
        let meta = &self.cells[cell];
        let range = range.min(self.cfg.window);
        let cutoff = now.saturating_sub(range);
        let mut sum: f64 = 0.0;
        let mut oldest: Option<(u64, Option<u64>)> = None;
        for i in (0..(meta.levels as usize)).rev() {
            let len = self.len_of(cell, i);
            if len == 0 {
                continue;
            }
            let in_range = self.count_newer(cell, i, cutoff);
            if in_range == 0 {
                continue;
            }
            sum += ((in_range as u64) << i) as f64;
            if oldest.is_none() {
                let prev_end = if in_range < len {
                    Some(self.end_at(cell, i, in_range))
                } else {
                    meta.dropped_end
                };
                oldest = Some((1u64 << i, prev_end));
            }
        }
        if let Some((size, prev_end)) = oldest {
            let start = prev_end.or(meta.first_ts);
            let straddles = size > 1
                && match start {
                    Some(s) => s <= cutoff,
                    None => false,
                };
            if straddles {
                sum -= size as f64 / 2.0;
            }
        }
        sum
    }

    /// Byte-identical wire encoding of one cell (the standalone
    /// `WindowCounter::encode` format), produced straight from the ring
    /// cursors.
    fn encode_cell(&self, cell: usize, buf: &mut Vec<u8>) {
        let meta = &self.cells[cell];
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, u64::from(meta.levels));
        for level in 0..(meta.levels as usize) {
            let len = self.len_of(cell, level);
            put_varint(buf, len as u64);
            let mut prev: Option<u64> = None;
            for i in 0..len {
                let end = self.end_at(cell, level, i);
                match prev {
                    None => put_varint(buf, end),
                    Some(p) => put_varint(buf, p - end),
                }
                prev = Some(end);
            }
        }
        put_varint(buf, meta.total);
        put_varint(buf, meta.last_ts);
        put_varint(buf, meta.lifetime);
        match meta.first_ts {
            Some(t) => {
                put_u8(buf, 1);
                put_varint(buf, t);
            }
            None => put_u8(buf, 0),
        }
        match meta.dropped_end {
            Some(t) => {
                put_u8(buf, 1);
                put_varint(buf, t);
            }
            None => put_u8(buf, 0),
        }
    }

    /// Import one standalone histogram into cell `cell` (grid must have
    /// room: `levels_alloc`/`slots` sized by the caller).
    fn import_cell(&mut self, cell: usize, eh: &ExponentialHistogram) {
        let levels = eh.raw_levels();
        let (total, last_ts, first_ts, dropped_end, lifetime) = eh.raw_meta();
        let base = levels
            .iter()
            .flat_map(|l| l.iter().copied())
            .min()
            .unwrap_or(0);
        let meta = CellMeta {
            levels: levels.len() as u16,
            base,
            total,
            last_ts,
            first_ts,
            dropped_end,
            lifetime,
        };
        self.cells[cell] = meta;
        for (level, deque) in levels.iter().enumerate() {
            let ri = self.ring_index(cell, level);
            self.rings[ri] = Ring {
                head: 0,
                len: deque.len() as u32,
            };
            for (i, &end) in deque.iter().enumerate() {
                self.slab[ri * self.slots + i] = T::from_offset(end - base);
            }
        }
    }

    /// Materialize cell `cell` as a standalone histogram (per-cell deque
    /// layout, as the merge paths and differential tests consume).
    fn materialize(&self, cell: usize) -> ExponentialHistogram {
        let meta = &self.cells[cell];
        let mut levels = Vec::with_capacity(meta.levels as usize);
        for level in 0..(meta.levels as usize) {
            let len = self.len_of(cell, level);
            let mut deque = VecDeque::with_capacity(self.cap + 1);
            for i in 0..len {
                deque.push_back(self.end_at(cell, level, i));
            }
            levels.push(deque);
        }
        ExponentialHistogram::from_raw_parts(
            &self.cfg,
            levels,
            meta.total,
            meta.last_ts,
            meta.first_ts,
            meta.dropped_end,
            meta.lifetime,
        )
    }

    fn memory_bytes(&self) -> usize {
        self.slab.capacity() * std::mem::size_of::<T>()
            + self.rings.capacity() * std::mem::size_of::<Ring>()
            + self.cells.capacity() * std::mem::size_of::<CellMeta>()
            + (self.scratch_a.capacity() + self.scratch_b.capacity()) * std::mem::size_of::<T>()
    }

    /// Structural invariants (the slab analogue of the standalone
    /// `validate`), plus cursor sanity.
    fn validate(&self, cell: usize) -> Result<(), String> {
        let meta = &self.cells[cell];
        let mut sum = 0u64;
        for level in 0..(meta.levels as usize) {
            let len = self.len_of(cell, level);
            if len > self.cap {
                return Err(format!(
                    "cell {cell} level {level} holds {len} > {}",
                    self.cap
                ));
            }
            for i in 0..len.saturating_sub(1) {
                if self.end_at(cell, level, i) < self.end_at(cell, level, i + 1) {
                    return Err(format!("cell {cell} level {level} out of order at {i}"));
                }
            }
            sum += (len as u64) << level;
        }
        for level in 0..(meta.levels as usize).saturating_sub(1) {
            let lo_len = self.len_of(cell, level);
            let hi_len = self.len_of(cell, level + 1);
            if lo_len > 0 && hi_len > 0 {
                let oldest_lo = self.end_at(cell, level, lo_len - 1);
                let newest_hi = self.end_at(cell, level + 1, 0);
                if newest_hi > oldest_lo {
                    return Err(format!(
                        "cell {cell}: level {} bucket newer than level {level} bucket",
                        level + 1
                    ));
                }
            }
        }
        if sum != meta.total {
            return Err(format!(
                "cell {cell}: cached total {} != bucket sum {sum}",
                meta.total
            ));
        }
        Ok(())
    }
}

/// Build a slab and import already-decoded histograms (shared by
/// `from_counters` and `decode_grid`).
fn import_all<T: SlabWord>(cfg: &EhConfig, counters: &[ExponentialHistogram]) -> SlabCore<T> {
    let mut core = SlabCore::<T>::new(cfg, counters.len());
    // The per-cell decoder defensively tolerates one bucket over capacity;
    // size the rings for whatever actually arrived.
    let max_len = counters
        .iter()
        .flat_map(|c| c.raw_levels().iter().map(VecDeque::len))
        .max()
        .unwrap_or(0);
    core.slots = core.slots.max(max_len);
    let max_levels = counters
        .iter()
        .map(|c| c.raw_levels().len())
        .max()
        .unwrap_or(0);
    if max_levels > 0 {
        core.grow_levels(max_levels);
    }
    for (cell, eh) in counters.iter().enumerate() {
        core.import_cell(cell, eh);
    }
    core
}

/// A grid of exponential-histogram cells backed by one contiguous slab —
/// the `CellStorage` the `ecm` crate's `EcmSketch<ExponentialHistogram>`
/// selects. See the [module docs](self) for the layout.
///
/// Windows shorter than `2³²` ticks store bucket end-ticks as `u32`
/// offsets (half the slab bytes); wider windows use a `u64` slab with the
/// same logic.
#[derive(Debug, Clone)]
pub struct EhGrid(Repr);

#[derive(Debug, Clone)]
enum Repr {
    Narrow(SlabCore<u32>),
    Wide(SlabCore<u64>),
}

macro_rules! on_core {
    ($self:expr, $core:ident => $body:expr) => {
        match &$self.0 {
            Repr::Narrow($core) => $body,
            Repr::Wide($core) => $body,
        }
    };
}

macro_rules! on_core_mut {
    ($self:expr, $core:ident => $body:expr) => {
        match &mut $self.0 {
            Repr::Narrow($core) => $body,
            Repr::Wide($core) => $body,
        }
    };
}

impl EhGrid {
    /// A grid of `n_cells` empty histograms configured by `cfg`.
    pub fn new(cfg: &EhConfig, n_cells: usize) -> Self {
        if cfg.window < (1u64 << 32) {
            EhGrid(Repr::Narrow(SlabCore::new(cfg, n_cells)))
        } else {
            EhGrid(Repr::Wide(SlabCore::new(cfg, n_cells)))
        }
    }

    fn from_histograms(cfg: &EhConfig, counters: &[ExponentialHistogram]) -> Self {
        // Anything our own encoder produced spans less than one window per
        // cell, but the defensive per-cell decoder accepts wider states —
        // keep those addressable by falling back to the u64 slab.
        let narrow = cfg.window < (1u64 << 32)
            && counters.iter().all(|c| {
                let ends = || c.raw_levels().iter().flat_map(|l| l.iter().copied());
                match (ends().min(), ends().max()) {
                    (Some(lo), Some(hi)) => hi - lo <= u32::MAX as u64,
                    _ => true,
                }
            });
        if narrow {
            EhGrid(Repr::Narrow(import_all(cfg, counters)))
        } else {
            EhGrid(Repr::Wide(import_all(cfg, counters)))
        }
    }

    /// The shared cell configuration.
    pub fn config(&self) -> &EhConfig {
        on_core!(self, c => &c.cfg)
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        on_core!(self, c => c.cells.len())
    }

    /// Read-only view of one cell.
    ///
    /// # Panics
    /// If `idx` is out of bounds.
    pub fn cell(&self, idx: usize) -> EhCellRef<'_> {
        assert!(idx < self.n_cells(), "cell {idx} out of bounds");
        EhCellRef { grid: self, idx }
    }

    /// Mutable view of one cell.
    ///
    /// # Panics
    /// If `idx` is out of bounds.
    pub fn cell_mut(&mut self, idx: usize) -> EhCellMut<'_> {
        assert!(idx < self.n_cells(), "cell {idx} out of bounds");
        EhCellMut { grid: self, idx }
    }
}

/// Read-only view of one slab cell, mirroring the standalone histogram's
/// query surface.
#[derive(Debug, Clone, Copy)]
pub struct EhCellRef<'a> {
    grid: &'a EhGrid,
    idx: usize,
}

impl EhCellRef<'_> {
    /// Estimated 1-bits with tick in `(now − range, now]`.
    pub fn estimate(&self, now: u64, range: u64) -> f64 {
        on_core!(self.grid, c => c.estimate(self.idx, now, range))
    }

    /// Unexpired 1-bits currently held.
    pub fn stored_ones(&self) -> u64 {
        on_core!(self.grid, c => c.cells[self.idx].total)
    }

    /// Lifetime 1-bits inserted.
    pub fn lifetime_ones(&self) -> u64 {
        on_core!(self.grid, c => c.cells[self.idx].lifetime)
    }

    /// Tick of the most recent insertion (0 if empty).
    pub fn last_tick(&self) -> u64 {
        on_core!(self.grid, c => c.cells[self.idx].last_ts)
    }

    /// Buckets currently held.
    pub fn bucket_count(&self) -> usize {
        on_core!(self.grid, c => (0..usize::from(c.cells[self.idx].levels))
            .map(|l| c.len_of(self.idx, l))
            .sum())
    }

    /// Copy the cell out as a standalone histogram.
    pub fn to_histogram(&self) -> ExponentialHistogram {
        on_core!(self.grid, c => c.materialize(self.idx))
    }

    /// Check the cell's structural invariants.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        on_core!(self.grid, c => c.validate(self.idx))
    }
}

/// Mutable view of one slab cell, mirroring the standalone histogram's
/// insert/expire surface (the cascade runs over `(head, len)` cursors into
/// the shared slab).
#[derive(Debug)]
pub struct EhCellMut<'a> {
    grid: &'a mut EhGrid,
    idx: usize,
}

impl EhCellMut<'_> {
    /// Record one 1-bit at tick `ts` (non-decreasing per cell).
    pub fn insert_one(&mut self, ts: u64) {
        self.insert_ones(ts, 1);
    }

    /// Record `n` 1-bits, all at tick `ts` — bit-identical to `n`
    /// [`insert_one`](Self::insert_one) calls.
    pub fn insert_ones(&mut self, ts: u64, n: u64) {
        on_core_mut!(self.grid, c => c.insert_ones(self.idx, ts, n));
    }

    /// Drop buckets that no longer overlap the window ending at `now`.
    pub fn expire(&mut self, now: u64) {
        on_core_mut!(self.grid, c => c.expire(self.idx, now));
    }

    /// Downgrade to a read-only view.
    pub fn as_ref(&self) -> EhCellRef<'_> {
        EhCellRef {
            grid: self.grid,
            idx: self.idx,
        }
    }
}

impl sealed::Sealed for EhGrid {}

impl CellStorage<ExponentialHistogram> for EhGrid {
    fn new_grid(cfg: &EhConfig, n_cells: usize) -> Self {
        EhGrid::new(cfg, n_cells)
    }

    fn n_cells(&self) -> usize {
        EhGrid::n_cells(self)
    }

    #[inline]
    fn insert(&mut self, idx: usize, ts: u64, _id: u64) {
        on_core_mut!(self, c => c.insert_ones(idx, ts, 1));
    }

    #[inline]
    fn insert_weighted(&mut self, idx: usize, ts: u64, _first_id: u64, n: u64) {
        on_core_mut!(self, c => c.insert_ones(idx, ts, n));
    }

    fn insert_run(&mut self, idx: usize, first_ts: u64, _first_id: u64, n: u64) {
        on_core_mut!(self, c => {
            for k in 0..n {
                c.insert_ones(idx, first_ts + k, 1);
            }
        });
    }

    #[inline]
    fn query(&self, idx: usize, now: u64, range: u64) -> f64 {
        on_core!(self, c => c.estimate(idx, now, range))
    }

    fn window_len(&self) -> u64 {
        self.config().window
    }

    fn memory_bytes(&self) -> usize {
        on_core!(self, c => c.memory_bytes())
    }

    fn encode_cell(&self, idx: usize, buf: &mut Vec<u8>) {
        on_core!(self, c => c.encode_cell(idx, buf));
    }

    fn decode_grid(cfg: &EhConfig, n_cells: usize, input: &mut &[u8]) -> Result<Self, CodecError> {
        let mut counters = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            counters.push(ExponentialHistogram::decode(cfg, input)?);
        }
        Ok(EhGrid::from_histograms(cfg, &counters))
    }

    fn cell_ref(&self, idx: usize) -> Option<&ExponentialHistogram> {
        // Slab cells have no standalone representation to borrow.
        let _ = idx;
        None
    }

    fn materialize(&self, idx: usize) -> ExponentialHistogram {
        on_core!(self, c => c.materialize(idx))
    }

    fn from_counters(cfg: &EhConfig, counters: Vec<ExponentialHistogram>) -> Self {
        EhGrid::from_histograms(cfg, &counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::WindowCounter;
    use proptest::prelude::*;

    /// Mirror of a grid cell as a standalone histogram, fed identically.
    fn encode_eh(eh: &ExponentialHistogram) -> Vec<u8> {
        let mut buf = Vec::new();
        eh.encode(&mut buf);
        buf
    }

    fn encode_cell(grid: &EhGrid, idx: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        CellStorage::encode_cell(grid, idx, &mut buf);
        buf
    }

    /// Drive one grid cell and one standalone histogram through the same
    /// op sequence, checking estimates and encodings at every step.
    fn differential(cfg: &EhConfig, ops: &[(u64, u64)]) {
        let mut grid = EhGrid::new(cfg, 1);
        let mut eh = ExponentialHistogram::new(cfg);
        for &(ts, n) in ops {
            grid.cell_mut(0).insert_ones(ts, n);
            eh.insert_ones(ts, n);
        }
        grid.cell(0).validate().expect("slab invariants");
        eh.validate().expect("deque invariants");
        let now = ops.last().map(|&(ts, _)| ts).unwrap_or(0);
        for range in [0, 1, 3, cfg.window / 7 + 1, cfg.window / 2, cfg.window] {
            assert_eq!(
                grid.cell(0).estimate(now, range).to_bits(),
                eh.estimate(now, range).to_bits(),
                "range {range}"
            );
        }
        assert_eq!(grid.cell(0).stored_ones(), eh.stored_ones());
        assert_eq!(grid.cell(0).bucket_count(), eh.bucket_count());
        assert_eq!(encode_cell(&grid, 0), encode_eh(&eh), "wire bytes differ");
        // Materialized cells are the histogram, byte for byte.
        assert_eq!(encode_eh(&grid.cell(0).to_histogram()), encode_eh(&eh));
    }

    #[test]
    fn matches_per_cell_histogram_on_dense_stream() {
        let cfg = EhConfig::new(0.1, 1_000);
        let ops: Vec<(u64, u64)> = (1..=5_000u64).map(|t| (t, 1)).collect();
        differential(&cfg, &ops);
    }

    #[test]
    fn matches_per_cell_histogram_on_bursts() {
        let cfg = EhConfig::new(0.05, 10_000);
        let mut ops = Vec::new();
        let mut ts = 1u64;
        for i in 0..600u64 {
            ts += i % 37;
            // Mix sub-threshold and bulk-path burst sizes.
            ops.push((ts, 1 + (i * i) % 513));
        }
        differential(&cfg, &ops);
    }

    #[test]
    fn matches_per_cell_histogram_across_gaps_and_expiry() {
        let cfg = EhConfig::new(0.2, 100);
        let ops = [
            (1, 5),
            (2, 1),
            (90, 300),
            (150, 2),
            (151, 1),
            (4_000, 7),
            (4_001, 1_000),
            (100_000, 1),
        ];
        differential(&cfg, &ops);
    }

    #[test]
    fn u32_offsets_rebase_across_the_word_boundary() {
        // Window fits u32, but ticks march far past it: the narrow slab
        // must rebase and stay bit-identical.
        let cfg = EhConfig::new(0.1, 1_000);
        assert!(matches!(EhGrid::new(&cfg, 1).0, Repr::Narrow(_)));
        let mut ops = Vec::new();
        let mut ts = 1u64;
        for i in 0..40u64 {
            ts += (1u64 << 30) + i; // crosses u32::MAX repeatedly
            ops.push((ts, 1 + i % 80));
        }
        differential(&cfg, &ops);
    }

    #[test]
    fn wide_windows_use_the_u64_slab() {
        let cfg = EhConfig::new(0.25, 1u64 << 33);
        let grid = EhGrid::new(&cfg, 2);
        assert!(matches!(grid.0, Repr::Wide(_)));
        let ops: Vec<(u64, u64)> = (1..300u64).map(|i| (i * (1 << 22), 1 + i % 9)).collect();
        differential(&cfg, &ops);
    }

    #[test]
    fn grid_cells_are_independent() {
        let cfg = EhConfig::new(0.1, 500);
        let mut grid = EhGrid::new(&cfg, 3);
        let mut mirrors: Vec<ExponentialHistogram> =
            (0..3).map(|_| ExponentialHistogram::new(&cfg)).collect();
        for t in 1..=2_000u64 {
            let cell = (t % 3) as usize;
            grid.cell_mut(cell).insert_ones(t, 1 + t % 4);
            mirrors[cell].insert_ones(t, 1 + t % 4);
        }
        for (i, eh) in mirrors.iter().enumerate() {
            assert_eq!(encode_cell(&grid, i), encode_eh(eh), "cell {i}");
            grid.cell(i).validate().unwrap();
        }
    }

    #[test]
    fn decode_grid_round_trips_and_matches_per_cell_decoder() {
        let cfg = EhConfig::new(0.1, 1_000);
        let mut grid = EhGrid::new(&cfg, 4);
        for t in 1..=3_000u64 {
            grid.cell_mut((t % 4) as usize).insert_ones(t, 1 + t % 3);
        }
        let mut wire = Vec::new();
        for i in 0..4 {
            CellStorage::encode_cell(&grid, i, &mut wire);
        }
        let mut input = wire.as_slice();
        let back = <EhGrid as CellStorage<ExponentialHistogram>>::decode_grid(&cfg, 4, &mut input)
            .expect("round trip");
        assert!(input.is_empty());
        for i in 0..4 {
            assert_eq!(encode_cell(&back, i), encode_cell(&grid, i), "cell {i}");
            assert_eq!(
                back.cell(i).estimate(3_000, 500).to_bits(),
                grid.cell(i).estimate(3_000, 500).to_bits()
            );
        }
        // Truncated inputs fail exactly like the per-cell decoder.
        for cut in [0, 1, wire.len() / 2, wire.len() - 1] {
            let mut input = &wire[..cut];
            assert!(
                <EhGrid as CellStorage<ExponentialHistogram>>::decode_grid(&cfg, 4, &mut input)
                    .is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn slab_is_denser_than_per_cell_layout() {
        let cfg = EhConfig::new(0.05, 1 << 20);
        let n = 64usize;
        let mut grid = EhGrid::new(&cfg, n);
        let mut cells: Vec<ExponentialHistogram> =
            (0..n).map(|_| ExponentialHistogram::new(&cfg)).collect();
        for t in 1..=200_000u64 {
            let cell = (t % n as u64) as usize;
            grid.cell_mut(cell).insert_ones(t, 1);
            cells[cell].insert_ones(t, 1);
        }
        let slab = CellStorage::<ExponentialHistogram>::memory_bytes(&grid);
        let per_cell: usize = cells.iter().map(WindowCounter::memory_bytes).sum();
        assert!(
            (slab as f64) <= 0.7 * per_cell as f64,
            "slab {slab} must undercut per-cell {per_cell} by ≥30%"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random op sequences: gaps, bursts across the bulk threshold,
        /// long silences — the slab cell and the standalone histogram
        /// never diverge.
        #[test]
        fn prop_slab_matches_per_cell(
            seed_ops in proptest::collection::vec((0u64..5_000, 1u64..400), 1..120),
            narrow_window in 1u64..10_000,
            wide in 0u32..4,
            eps in 0.02f64..0.9,
        ) {
            // One case in four runs on the u64 (wide-window) slab.
            let window = if wide == 0 { 1u64 << 33 } else { narrow_window };
            let cfg = EhConfig::new(eps, window);
            let mut ts = 0u64;
            let ops: Vec<(u64, u64)> = seed_ops
                .into_iter()
                .map(|(gap, n)| {
                    ts += gap;
                    (ts.max(1), n)
                })
                .collect();
            differential(&cfg, &ops);
        }
    }
}
