//! Equi-width sub-window counter — the baseline design of Hung & Ting
//! (LATIN 2008) and Dimitropoulos et al. (Computer Networks 2008) that the
//! paper's related-work section contrasts ECM-sketches against (§2): the
//! window is cut into a fixed number of equal sub-windows, each holding one
//! plain count.
//!
//! Simple and fast, but the paper's criticism is structural and this
//! implementation reproduces it faithfully: the only error control is the
//! sub-window width, so a query whose range is comparable to (or smaller
//! than) one sub-window can be off by an entire bucket's mass — there is
//! **no multiplicative error guarantee**, especially for small query
//! ranges. `crates/bench/src/bin/baseline_equiwidth.rs` measures exactly
//! this failure mode against the exponential histogram.

use std::collections::VecDeque;

use crate::codec::{get_u8, get_varint, put_u8, put_varint};
use crate::error::{CodecError, MergeError};
use crate::traits::{MergeableCounter, WindowCounter, WindowGuarantee};

const CODEC_VERSION: u8 = 4;

/// Construction parameters for an [`EquiWidthWindow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiWidthConfig {
    /// Window length in ticks.
    pub window: u64,
    /// Number of equal sub-windows the window is cut into.
    pub buckets: usize,
}

impl EquiWidthConfig {
    /// Build a config.
    ///
    /// # Panics
    /// If `window == 0`, `buckets == 0`, or `buckets > window` (sub-windows
    /// must span at least one tick).
    pub fn new(window: u64, buckets: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(buckets > 0, "need at least one bucket");
        assert!(
            buckets as u64 <= window,
            "buckets ({buckets}) must not exceed window ticks ({window})"
        );
        EquiWidthConfig { window, buckets }
    }

    /// Width of one sub-window in ticks.
    pub fn bucket_width(&self) -> u64 {
        self.window.div_ceil(self.buckets as u64)
    }
}

/// One retained sub-window: its slot index on the absolute tick grid and
/// its arrival count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Absolute slot index: `tick / bucket_width`.
    index: u64,
    count: u64,
}

/// Fixed equi-width sub-window counter (baseline; no ε guarantee).
///
/// Sub-windows are aligned to the absolute tick grid (`tick / width`), which
/// makes counters built over disjoint streams trivially mergeable — the one
/// advantage this baseline has — at the price of unbounded relative error
/// on narrow ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiWidthWindow {
    window: u64,
    width: u64,
    max_slots: usize,
    /// Retained slots, oldest at the front; indexes strictly increasing.
    slots: VecDeque<Slot>,
    last_ts: u64,
    lifetime: u64,
}

impl EquiWidthWindow {
    /// Create an empty counter.
    pub fn new(cfg: &EquiWidthConfig) -> Self {
        EquiWidthWindow {
            window: cfg.window,
            width: cfg.bucket_width(),
            // One extra slot so a window can straddle slot boundaries.
            max_slots: cfg.buckets + 1,
            slots: VecDeque::new(),
            last_ts: 0,
            lifetime: 0,
        }
    }

    /// Record `n` arrivals at tick `ts` (non-decreasing).
    pub fn insert_ones(&mut self, ts: u64, n: u64) {
        debug_assert!(
            self.lifetime == 0 || ts >= self.last_ts,
            "timestamps must be non-decreasing"
        );
        if n == 0 {
            return;
        }
        self.last_ts = ts;
        self.lifetime += n;
        let index = ts / self.width;
        match self.slots.back_mut() {
            Some(s) if s.index == index => s.count += n,
            _ => self.slots.push_back(Slot { index, count: n }),
        }
        while self.slots.len() > self.max_slots {
            self.slots.pop_front();
        }
    }

    /// Estimate arrivals in `(now − range, now]`: full slots plus a
    /// *prorated* share of the two straddling slots (uniformity assumption —
    /// the source of the unbounded error).
    pub fn estimate(&self, now: u64, range: u64) -> f64 {
        let range = range.min(self.window);
        let cutoff = now.saturating_sub(range);
        let mut sum = 0.0;
        for s in &self.slots {
            let slot_lo = s.index * self.width;
            let slot_hi = slot_lo + self.width - 1;
            if slot_hi <= cutoff || slot_lo > now {
                continue;
            }
            // Overlap of (cutoff, now] with [slot_lo, slot_hi].
            let lo = slot_lo.max(cutoff + 1);
            let hi = slot_hi.min(now);
            if lo > hi {
                continue;
            }
            let frac = (hi - lo + 1) as f64 / self.width as f64;
            sum += s.count as f64 * frac.min(1.0);
        }
        sum
    }

    /// Lifetime arrivals.
    pub fn lifetime_ones(&self) -> u64 {
        self.lifetime
    }
}

impl WindowCounter for EquiWidthWindow {
    type Config = EquiWidthConfig;
    type GridStorage = crate::grid::VecCells<Self>;

    fn new(cfg: &Self::Config) -> Self {
        EquiWidthWindow::new(cfg)
    }

    fn insert(&mut self, ts: u64, _id: u64) {
        self.insert_ones(ts, 1);
    }

    fn insert_weighted(&mut self, ts: u64, _first_id: u64, n: u64) {
        self.insert_ones(ts, n);
    }

    fn query(&self, now: u64, range: u64) -> f64 {
        self.estimate(now, range)
    }

    fn window_len(&self) -> u64 {
        self.window
    }

    fn guarantee(_cfg: &Self::Config) -> Option<WindowGuarantee> {
        None
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.slots.capacity() * std::mem::size_of::<Slot>()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, self.slots.len() as u64);
        let mut prev = 0u64;
        for s in &self.slots {
            put_varint(buf, s.index - prev);
            put_varint(buf, s.count);
            prev = s.index;
        }
        put_varint(buf, self.last_ts);
        put_varint(buf, self.lifetime);
    }

    fn decode(cfg: &Self::Config, input: &mut &[u8]) -> Result<Self, CodecError> {
        let version = get_u8(input, "ew version")?;
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let n = get_varint(input, "ew slots")? as usize;
        if n > cfg.buckets + 1 {
            return Err(CodecError::Corrupt {
                context: "ew slots",
            });
        }
        let mut slots = VecDeque::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let di = get_varint(input, "ew index")?;
            let count = get_varint(input, "ew count")?;
            if count == 0 || (i > 0 && di == 0) {
                return Err(CodecError::Corrupt { context: "ew slot" });
            }
            prev = prev.checked_add(di).ok_or(CodecError::Corrupt {
                context: "ew index",
            })?;
            slots.push_back(Slot { index: prev, count });
        }
        let last_ts = get_varint(input, "ew last_ts")?;
        let lifetime = get_varint(input, "ew lifetime")?;
        Ok(EquiWidthWindow {
            window: cfg.window,
            width: cfg.bucket_width(),
            max_slots: cfg.buckets + 1,
            slots,
            last_ts,
            lifetime,
        })
    }
}

impl MergeableCounter for EquiWidthWindow {
    const LOSSLESS_MERGE: bool = true;

    /// Grid-aligned slot-wise sum. Exact with respect to the slot grid
    /// (both inputs bucket arrivals identically), so the merged counter
    /// equals the counter of the interleaved union stream.
    fn merge(parts: &[&Self], out_cfg: &Self::Config) -> Result<Self, MergeError> {
        if parts.is_empty() {
            return Err(MergeError::Empty);
        }
        for (i, p) in parts.iter().enumerate() {
            if p.window != out_cfg.window || p.width != out_cfg.bucket_width() {
                return Err(MergeError::IncompatibleConfig {
                    detail: format!(
                        "part {i}: window/width {}x{} vs config {}x{}",
                        p.window,
                        p.width,
                        out_cfg.window,
                        out_cfg.bucket_width()
                    ),
                });
            }
        }
        let mut all: Vec<Slot> = parts.iter().flat_map(|p| p.slots.iter().copied()).collect();
        all.sort_unstable_by_key(|s| s.index);
        let mut out = EquiWidthWindow::new(out_cfg);
        for s in all {
            match out.slots.back_mut() {
                Some(last) if last.index == s.index => last.count += s.count,
                _ => out.slots.push_back(s),
            }
        }
        while out.slots.len() > out.max_slots {
            out.slots.pop_front();
        }
        out.last_ts = parts.iter().map(|p| p.last_ts).max().unwrap_or(0);
        out.lifetime = parts.iter().map(|p| p.lifetime).sum();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(window: u64, buckets: usize, ticks: &[u64]) -> EquiWidthWindow {
        let mut w = EquiWidthWindow::new(&EquiWidthConfig::new(window, buckets));
        for &t in ticks {
            w.insert_ones(t, 1);
        }
        w
    }

    #[test]
    fn whole_window_counts_are_close() {
        let ticks: Vec<u64> = (1..=1000u64).collect();
        let w = build(1000, 10, &ticks);
        let est = w.estimate(1000, 1000);
        assert!((est - 1000.0).abs() <= 100.0, "est={est}");
    }

    #[test]
    fn small_ranges_have_unbounded_relative_error() {
        // All mass arrives at the START of each 100-tick slot; a query for
        // the last 10 ticks truly holds 0 arrivals, but proration charges
        // 10% of the straddling slot — the paper's criticism in one test.
        let mut w = EquiWidthWindow::new(&EquiWidthConfig::new(1000, 10));
        for slot in 0..10u64 {
            w.insert_ones(slot * 100 + 1, 100); // burst at slot start
        }
        let now = 999u64;
        let est = w.estimate(now, 10);
        // True count in (989, 999] is 0; estimate is ~10.
        assert!(est > 5.0, "proration must misattribute mass, est={est}");
    }

    #[test]
    fn alignment_makes_merge_exact_wrt_grid() {
        let cfg = EquiWidthConfig::new(1000, 10);
        let mut a = EquiWidthWindow::new(&cfg);
        let mut b = EquiWidthWindow::new(&cfg);
        let mut whole = EquiWidthWindow::new(&cfg);
        for t in 1..=800u64 {
            whole.insert_ones(t, 1);
            if t % 2 == 0 {
                a.insert_ones(t, 1);
            } else {
                b.insert_ones(t, 1);
            }
        }
        let merged = EquiWidthWindow::merge(&[&a, &b], &cfg).unwrap();
        for range in [100u64, 500, 1000] {
            assert_eq!(merged.estimate(800, range), whole.estimate(800, range));
        }
        assert_eq!(merged.lifetime_ones(), 800);
    }

    #[test]
    fn merge_rejects_mismatched_grids() {
        let a = EquiWidthWindow::new(&EquiWidthConfig::new(1000, 10));
        let cfg2 = EquiWidthConfig::new(1000, 20);
        assert!(matches!(
            EquiWidthWindow::merge(&[&a], &cfg2),
            Err(MergeError::IncompatibleConfig { .. })
        ));
        assert!(matches!(
            EquiWidthWindow::merge(&[], &cfg2),
            Err(MergeError::Empty)
        ));
    }

    #[test]
    fn codec_round_trips() {
        let cfg = EquiWidthConfig::new(5_000, 25);
        let ticks: Vec<u64> = (1..=3_000u64).step_by(3).collect();
        let mut w = EquiWidthWindow::new(&cfg);
        for &t in &ticks {
            w.insert_ones(t, 2);
        }
        let mut buf = Vec::new();
        w.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = EquiWidthWindow::decode(&cfg, &mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back, w);
        for cut in 0..buf.len().min(40) {
            let mut s = &buf[..cut];
            if let Ok(partial) = EquiWidthWindow::decode(&cfg, &mut s) {
                assert_ne!(partial, w);
            }
        }
    }

    #[test]
    fn slot_expiry_bounds_memory() {
        let cfg = EquiWidthConfig::new(100, 4);
        let mut w = EquiWidthWindow::new(&cfg);
        for t in 1..=10_000u64 {
            w.insert_ones(t, 1);
        }
        assert!(w.slots.len() <= 5);
        // Recent window count stays near 100.
        let est = w.estimate(10_000, 100);
        assert!((est - 100.0).abs() <= 26.0, "est={est}");
    }

    #[test]
    #[should_panic(expected = "buckets")]
    fn too_many_buckets_rejected() {
        let _ = EquiWidthConfig::new(5, 10);
    }
}
