//! Error types shared by the sliding-window synopses and their codecs.

use std::fmt;

/// Failure while merging synopses with the order-preserving `⊕` operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The inputs were built with incompatible configurations
    /// (different window lengths, hash seeds, or dimensions).
    IncompatibleConfig {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Nothing to merge.
    Empty,
    /// The synopsis type does not support order-preserving aggregation
    /// under the requested clock model (e.g. count-based windows, paper Fig. 2).
    Unsupported {
        /// Why the aggregation is impossible.
        detail: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::IncompatibleConfig { detail } => {
                write!(f, "incompatible merge inputs: {detail}")
            }
            MergeError::Empty => write!(f, "no synopses supplied to merge"),
            MergeError::Unsupported { detail } => {
                write!(f, "unsupported aggregation: {detail}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Failure while decoding a synopsis from its compact wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-structure.
    Truncated {
        /// What was being decoded when the input ended.
        context: &'static str,
    },
    /// A tag or length field held an impossible value.
    Corrupt {
        /// What was being decoded.
        context: &'static str,
    },
    /// The encoded structure version is not understood.
    BadVersion {
        /// The version byte found on the wire.
        found: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "truncated input while decoding {context}")
            }
            CodecError::Corrupt { context } => {
                write!(f, "corrupt field while decoding {context}")
            }
            CodecError::BadVersion { found } => {
                write!(f, "unsupported codec version {found}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_error_display_mentions_detail() {
        let e = MergeError::IncompatibleConfig {
            detail: "window 10 vs 20".into(),
        };
        assert!(e.to_string().contains("window 10 vs 20"));
        assert!(MergeError::Empty.to_string().contains("no synopses"));
        let u = MergeError::Unsupported {
            detail: "count-based".into(),
        };
        assert!(u.to_string().contains("count-based"));
    }

    #[test]
    fn codec_error_display_mentions_context() {
        let e = CodecError::Truncated { context: "bucket" };
        assert!(e.to_string().contains("bucket"));
        let c = CodecError::Corrupt { context: "level" };
        assert!(c.to_string().contains("level"));
        assert!(CodecError::BadVersion { found: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MergeError>();
        assert_err::<CodecError>();
    }
}
