//! Exact sliding-window counter: the zero-error, `O(arrivals)`-space baseline
//! used as ground truth by the test and benchmark suites.

use std::collections::VecDeque;

use crate::codec::{get_u8, get_varint, put_u8, put_varint};
use crate::error::{CodecError, MergeError};
use crate::traits::{MergeableCounter, WindowCounter, WindowGuarantee};

const CODEC_VERSION: u8 = 1;

/// Construction parameters for an [`ExactWindow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactWindowConfig {
    /// Window length in ticks.
    pub window: u64,
}

impl ExactWindowConfig {
    /// Build a config. Panics if `window == 0`.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        ExactWindowConfig { window }
    }
}

/// Exact sliding-window counter storing `(tick, multiplicity)` runs.
///
/// Consecutive arrivals at the same tick are run-length compressed, so space
/// is `O(distinct ticks in window)` rather than `O(arrivals)`.
#[derive(Debug, Clone)]
pub struct ExactWindow {
    window: u64,
    /// `(tick, count)` runs, oldest at the front; ticks strictly increasing.
    runs: VecDeque<(u64, u64)>,
    total: u64,
    last_ts: u64,
    lifetime: u64,
}

impl ExactWindow {
    /// Create an empty counter.
    pub fn new(cfg: &ExactWindowConfig) -> Self {
        ExactWindow {
            window: cfg.window,
            runs: VecDeque::new(),
            total: 0,
            last_ts: 0,
            lifetime: 0,
        }
    }

    /// Record `n` arrivals at tick `ts` (non-decreasing).
    pub fn insert_ones(&mut self, ts: u64, n: u64) {
        debug_assert!(
            self.runs.is_empty() || ts >= self.last_ts,
            "timestamps must be non-decreasing"
        );
        if n == 0 {
            return;
        }
        self.last_ts = ts;
        self.lifetime += n;
        match self.runs.back_mut() {
            Some((t, c)) if *t == ts => *c += n,
            _ => self.runs.push_back((ts, n)),
        }
        self.total += n;
        self.expire(ts);
    }

    /// Drop runs that left the window ending at `now`.
    pub fn expire(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.window);
        while let Some(&(t, c)) = self.runs.front() {
            if t <= cutoff {
                self.runs.pop_front();
                self.total -= c;
            } else {
                break;
            }
        }
    }

    /// Exact number of arrivals with tick in `(now - range, now]`.
    pub fn count(&self, now: u64, range: u64) -> u64 {
        let range = range.min(self.window);
        let cutoff = now.saturating_sub(range);
        // Runs are sorted by tick: binary search the first in-range run.
        let (a, b) = self.runs.as_slices();
        let mut sum = 0u64;
        let ia = a.partition_point(|&(t, _)| t <= cutoff);
        for &(t, c) in &a[ia..] {
            if t <= now {
                sum += c;
            }
        }
        let ib = b.partition_point(|&(t, _)| t <= cutoff);
        for &(t, c) in &b[ib..] {
            if t <= now {
                sum += c;
            }
        }
        sum
    }

    /// Arrivals currently retained (the full window).
    pub fn stored_ones(&self) -> u64 {
        self.total
    }

    /// Lifetime arrivals inserted.
    pub fn lifetime_ones(&self) -> u64 {
        self.lifetime
    }
}

impl WindowCounter for ExactWindow {
    type Config = ExactWindowConfig;
    type GridStorage = crate::grid::VecCells<Self>;

    fn new(cfg: &Self::Config) -> Self {
        ExactWindow::new(cfg)
    }

    fn insert(&mut self, ts: u64, _id: u64) {
        self.insert_ones(ts, 1);
    }

    fn insert_weighted(&mut self, ts: u64, _first_id: u64, n: u64) {
        self.insert_ones(ts, n);
    }

    fn query(&self, now: u64, range: u64) -> f64 {
        self.count(now, range) as f64
    }

    fn window_len(&self) -> u64 {
        self.window
    }

    fn guarantee(_cfg: &Self::Config) -> Option<WindowGuarantee> {
        Some(WindowGuarantee::EXACT)
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.runs.capacity() * std::mem::size_of::<(u64, u64)>()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, self.runs.len() as u64);
        let mut prev = 0u64;
        for &(t, c) in &self.runs {
            put_varint(buf, t - prev);
            put_varint(buf, c);
            prev = t;
        }
        put_varint(buf, self.last_ts);
        put_varint(buf, self.lifetime);
    }

    fn decode(cfg: &Self::Config, input: &mut &[u8]) -> Result<Self, CodecError> {
        let version = get_u8(input, "exact version")?;
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let n = get_varint(input, "exact runs")? as usize;
        // A corrupted length must not pre-allocate unbounded memory; the
        // deque grows naturally if the runs genuinely decode.
        let mut runs = VecDeque::with_capacity(n.min(1024));
        let mut prev = 0u64;
        let mut total = 0u64;
        for _ in 0..n {
            let dt = get_varint(input, "exact tick")?;
            let c = get_varint(input, "exact count")?;
            if c == 0 || (prev > 0 && dt == 0) {
                return Err(CodecError::Corrupt {
                    context: "exact run",
                });
            }
            prev = prev.checked_add(dt).ok_or(CodecError::Corrupt {
                context: "exact tick",
            })?;
            total = total.checked_add(c).ok_or(CodecError::Corrupt {
                context: "exact count",
            })?;
            runs.push_back((prev, c));
        }
        let last_ts = get_varint(input, "exact last_ts")?;
        let lifetime = get_varint(input, "exact lifetime")?;
        Ok(ExactWindow {
            window: cfg.window,
            runs,
            total,
            last_ts,
            lifetime,
        })
    }
}

impl MergeableCounter for ExactWindow {
    const LOSSLESS_MERGE: bool = true;

    /// Exact merge: interleave runs by tick. Always lossless.
    fn merge(parts: &[&Self], out_cfg: &Self::Config) -> Result<Self, MergeError> {
        if parts.is_empty() {
            return Err(MergeError::Empty);
        }
        for (i, p) in parts.iter().enumerate() {
            if p.window != out_cfg.window {
                return Err(MergeError::IncompatibleConfig {
                    detail: format!(
                        "window mismatch at part {i}: {} vs {}",
                        p.window, out_cfg.window
                    ),
                });
            }
        }
        let mut events: Vec<(u64, u64)> =
            parts.iter().flat_map(|p| p.runs.iter().copied()).collect();
        events.sort_unstable_by_key(|&(t, _)| t);
        let mut out = ExactWindow::new(out_cfg);
        for (t, c) in events {
            out.insert_ones(t, c);
        }
        let now = parts.iter().map(|p| p.last_ts).max().unwrap_or(0);
        if now > out.last_ts {
            out.last_ts = now;
            out.expire(now);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_are_exact() {
        let mut w = ExactWindow::new(&ExactWindowConfig::new(100));
        for t in 1..=50u64 {
            w.insert_ones(t, 2);
        }
        assert_eq!(w.count(50, 100), 100);
        assert_eq!(w.count(50, 10), 20);
        assert_eq!(w.count(50, 1), 2);
        assert_eq!(w.stored_ones(), 100);
        assert_eq!(w.lifetime_ones(), 100);
    }

    #[test]
    fn expiry_is_exact() {
        let mut w = ExactWindow::new(&ExactWindowConfig::new(10));
        for t in 1..=100u64 {
            w.insert_ones(t, 1);
        }
        assert_eq!(w.stored_ones(), 10); // ticks 91..=100
        assert_eq!(w.count(100, 10), 10);
        assert_eq!(w.count(100, 5), 5);
    }

    #[test]
    fn run_length_compression_collapses_same_tick() {
        let mut w = ExactWindow::new(&ExactWindowConfig::new(100));
        for _ in 0..1000 {
            w.insert_ones(5, 1);
        }
        assert_eq!(w.runs.len(), 1);
        assert_eq!(w.count(5, 100), 1000);
    }

    #[test]
    fn merge_is_lossless() {
        let cfg = ExactWindowConfig::new(1000);
        let mut a = ExactWindow::new(&cfg);
        let mut b = ExactWindow::new(&cfg);
        for t in 1..=100u64 {
            if t % 2 == 0 {
                a.insert_ones(t, 1);
            } else {
                b.insert_ones(t, 3);
            }
        }
        let merged = ExactWindow::merge(&[&a, &b], &cfg).unwrap();
        assert_eq!(
            merged.count(100, 1000),
            a.count(100, 1000) + b.count(100, 1000)
        );
        assert_eq!(merged.count(100, 7), a.count(100, 7) + b.count(100, 7));
    }

    #[test]
    fn merge_rejects_mismatched_windows() {
        let a = ExactWindow::new(&ExactWindowConfig::new(10));
        let cfg = ExactWindowConfig::new(20);
        assert!(matches!(
            ExactWindow::merge(&[&a], &cfg),
            Err(MergeError::IncompatibleConfig { .. })
        ));
        assert!(matches!(
            ExactWindow::merge(&[], &cfg),
            Err(MergeError::Empty)
        ));
    }

    #[test]
    fn codec_round_trips() {
        let cfg = ExactWindowConfig::new(500);
        let mut w = ExactWindow::new(&cfg);
        for t in [3u64, 3, 9, 12, 400, 401, 401] {
            w.insert_ones(t, 1);
        }
        let mut buf = Vec::new();
        w.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = ExactWindow::decode(&cfg, &mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.count(401, 500), w.count(401, 500));
        assert_eq!(back.count(401, 10), w.count(401, 10));
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert!(ExactWindow::decode(&cfg, &mut s).is_err());
        }
    }

    proptest! {
        #[test]
        fn prop_matches_naive(
            gaps in proptest::collection::vec((0u64..5, 1u64..4), 1..300),
            window in 10u64..500,
            range in 1u64..600,
        ) {
            let cfg = ExactWindowConfig::new(window);
            let mut w = ExactWindow::new(&cfg);
            let mut all: Vec<(u64, u64)> = Vec::new();
            let mut t = 1u64;
            for (g, c) in gaps {
                t += g;
                w.insert_ones(t, c);
                all.push((t, c));
            }
            let now = t;
            let eff = range.min(window);
            let cutoff = now.saturating_sub(eff);
            let naive: u64 = all
                .iter()
                .filter(|&&(ts, _)| ts > cutoff && ts <= now)
                .map(|&(_, c)| c)
                .sum();
            prop_assert_eq!(w.count(now, range), naive);
        }
    }
}
