//! Order-preserving aggregation `⊕` of time-based exponential histograms
//! (paper §5.1, Theorem 4).
//!
//! Each input histogram is treated as a log of its own stream: a bucket of
//! size `|b|` is replayed as `|b|/2` 1-bits at the bucket's start tick and
//! `|b|/2` at its end tick (a size-1 bucket is replayed exactly, at its end
//! tick, which *is* its bit's arrival tick). The replayed events of all
//! inputs are interleaved in tick order and inserted into a fresh histogram
//! with error parameter ε′.
//!
//! Theorem 4: if the inputs were built with error ε, the result answers any
//! query with maximum relative error `ε + ε′ + ε·ε′`. The error is additive
//! across aggregation levels (err₂ of the paper), so an `h`-level hierarchy
//! yields `h·ε·(1+ε) + ε` — see [`multilevel_epsilon`] for the inverse.

use super::{EhConfig, ExponentialHistogram};
use crate::error::MergeError;

/// Merge time-based exponential histograms into one summarizing the
/// order-preserving union of their streams.
///
/// All inputs must cover the same window length; their ε may differ (the
/// effective input error is the maximum). The output is built with
/// `out_cfg.epsilon` = ε′.
///
/// ```
/// use sliding_window::{EhConfig, ExponentialHistogram};
/// use sliding_window::merge_exponential_histograms;
///
/// let cfg = EhConfig::new(0.1, 10_000);
/// let mut site_a = ExponentialHistogram::new(&cfg);
/// let mut site_b = ExponentialHistogram::new(&cfg);
/// for t in 1..=3000u64 {
///     if t % 2 == 0 { site_a.insert_one(t) } else { site_b.insert_one(t) }
/// }
/// let global = merge_exponential_histograms(&[&site_a, &site_b], &cfg).unwrap();
/// // Theorem 4: relative error ≤ ε + ε' + ε·ε' = 0.21 on the union stream.
/// let est = global.estimate(3000, 1000);
/// assert!((est - 1000.0).abs() <= 0.21 * 1000.0 + 2.0);
/// ```
///
/// # Errors
/// [`MergeError::Empty`] if `parts` is empty, and
/// [`MergeError::IncompatibleConfig`] on window-length mismatch.
pub fn merge_exponential_histograms(
    parts: &[&ExponentialHistogram],
    out_cfg: &EhConfig,
) -> Result<ExponentialHistogram, MergeError> {
    if parts.is_empty() {
        return Err(MergeError::Empty);
    }
    let window = parts[0].cfg.window;
    for (i, p) in parts.iter().enumerate() {
        if p.cfg.window != window {
            return Err(MergeError::IncompatibleConfig {
                detail: format!(
                    "window mismatch: part 0 covers {window} ticks, part {i} covers {}",
                    p.cfg.window
                ),
            });
        }
    }
    if out_cfg.window != window {
        return Err(MergeError::IncompatibleConfig {
            detail: format!("output window {} != input window {window}", out_cfg.window),
        });
    }

    // Replay each bucket as half its bits at the start tick, half at the end.
    let mut events: Vec<(u64, u64)> = Vec::new();
    for p in parts {
        for b in p.buckets() {
            if b.size == 1 {
                events.push((b.end, 1));
            } else {
                events.push((b.start, b.size / 2));
                events.push((b.end, b.size - b.size / 2));
            }
        }
    }
    events.sort_unstable_by_key(|&(ts, _)| ts);

    let mut out = ExponentialHistogram::new(out_cfg);
    for (ts, n) in events {
        out.insert_ones(ts, n);
    }
    // Advance the merged clock to the latest input clock so that expiry and
    // subsequent window queries line up even if one site was idle.
    let now = parts.iter().map(|p| p.last_ts).max().unwrap_or(0);
    if now > out.last_ts {
        out.last_ts = now;
        out.expire(now);
    }
    Ok(out)
}

/// Per-site ε that makes an `h`-level aggregation hierarchy come out at a
/// target relative error `ε_target` (paper §5.1, multi-level aggregation):
/// solves `h·ε·(1+ε) + ε = ε_target` for ε, i.e.
/// `ε = (√(1 + 2h + h² + 4h·ε_target) − 1 − h) / (2h)`.
///
/// For `h == 0` (no aggregation) this is just `ε_target`.
pub fn multilevel_epsilon(eps_target: f64, levels: u32) -> f64 {
    assert!(eps_target > 0.0, "target epsilon must be positive");
    if levels == 0 {
        return eps_target;
    }
    let h = f64::from(levels);
    ((1.0 + 2.0 * h + h * h + 4.0 * h * eps_target).sqrt() - 1.0 - h) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multilevel_epsilon_inverts_error_recursion() {
        for &target in &[0.05, 0.1, 0.2, 0.3] {
            for h in 1..6u32 {
                let eps = multilevel_epsilon(target, h);
                assert!(eps > 0.0 && eps < target);
                let achieved = f64::from(h) * eps * (1.0 + eps) + eps;
                assert!(
                    (achieved - target).abs() < 1e-9,
                    "h={h} target={target} eps={eps} achieved={achieved}"
                );
            }
        }
    }

    #[test]
    fn multilevel_epsilon_zero_levels_is_identity() {
        assert_eq!(multilevel_epsilon(0.1, 0), 0.1);
    }

    #[test]
    fn merge_rejects_empty_and_mismatched_windows() {
        let cfg = EhConfig::new(0.1, 100);
        assert!(matches!(
            merge_exponential_histograms(&[], &cfg),
            Err(MergeError::Empty)
        ));
        let a = ExponentialHistogram::new(&EhConfig::new(0.1, 100));
        let b = ExponentialHistogram::new(&EhConfig::new(0.1, 200));
        assert!(matches!(
            merge_exponential_histograms(&[&a, &b], &cfg),
            Err(MergeError::IncompatibleConfig { .. })
        ));
        let bad_out = EhConfig::new(0.1, 50);
        assert!(matches!(
            merge_exponential_histograms(&[&a], &bad_out),
            Err(MergeError::IncompatibleConfig { .. })
        ));
    }
}
