//! Exponential histograms (Datar, Gionis, Indyk, Motwani — SIAM J. Comput. 2002),
//! the default sliding-window counter of the ECM-sketch (paper §3, §4).
//!
//! The structure partitions the recent stream into *buckets* of exponentially
//! growing sizes (powers of two). Bucket boundaries maintain **invariant 1**
//! of the paper: for every bucket `j` (1 = most recent),
//! `C_j / (2 (1 + Σ_{i<j} C_i)) ≤ ε`, which caps the relative error of any
//! window query by ε — the only uncertain bucket is the oldest, partially
//! overlapping one, and the query counts half of it.
//!
//! # Representation
//!
//! Following the paper's implementation notes (§7.1), buckets live in
//! per-size *levels*: `levels[i]` is a deque of the end-timestamps of the
//! buckets of size `2^i`, newest at the front. Levels are allocated lazily.
//! This gives O(1) amortized insertion (bucket merges are two `pop_back`s and
//! one `push_front`) and lets queries binary-search each level.

mod merge;

pub use merge::{merge_exponential_histograms, multilevel_epsilon};

use std::collections::VecDeque;

use crate::codec::{get_u8, get_varint, put_u8, put_varint};
use crate::error::CodecError;
use crate::traits::{MergeableCounter, WindowCounter, WindowGuarantee};

pub(crate) const CODEC_VERSION: u8 = 1;

/// Construction parameters for an [`ExponentialHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct EhConfig {
    /// Target relative error ε ∈ (0, 1].
    pub epsilon: f64,
    /// Window length in ticks (time units for time-based windows, arrivals
    /// for count-based ones).
    pub window: u64,
}

impl EhConfig {
    /// Build a config, validating the parameter ranges.
    ///
    /// # Panics
    /// Panics if `epsilon ∉ (0, 1]` or `window == 0`.
    pub fn new(epsilon: f64, window: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        assert!(window > 0, "window must be positive");
        EhConfig { epsilon, window }
    }

    /// Maximum number of buckets kept per size class: `⌈k/2⌉ + 2` for
    /// `k = ⌈1/ε⌉` (Datar et al.), which enforces invariant 1.
    pub fn level_capacity(&self) -> usize {
        let k = (1.0 / self.epsilon).ceil() as usize;
        k.div_ceil(2) + 2
    }
}

/// A bucket, as exposed to the order-preserving aggregation algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketView {
    /// Tick at which the bucket's range starts. Every 1-bit in the bucket
    /// arrived at a tick in `[start, end]`. For the oldest bucket this is the
    /// first arrival's tick (or the end of the last expired bucket).
    pub start: u64,
    /// Tick of the bucket's most recent 1-bit.
    pub end: u64,
    /// Number of 1-bits in the bucket (a power of two).
    pub size: u64,
}

/// Deterministic ε-approximate sliding-window counter.
///
/// See the [module docs](self) for the algorithm; see
/// [`merge_exponential_histograms`] for the order-preserving aggregation
/// operator `⊕` of paper §5.1.
///
/// ```
/// use sliding_window::{EhConfig, ExponentialHistogram};
///
/// // 10%-approximate counting over the last 1000 ticks.
/// let mut eh = ExponentialHistogram::new(&EhConfig::new(0.1, 1000));
/// for t in 1..=5000u64 {
///     eh.insert_one(t);
/// }
/// // ~1000 arrivals in the window, ~100 in the last 100 ticks.
/// let est = eh.estimate(5000, 1000);
/// assert!((est - 1000.0).abs() <= 100.0);
/// let est = eh.estimate(5000, 100);
/// assert!((est - 100.0).abs() <= 100.0 * 0.1 + 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExponentialHistogram {
    cfg: EhConfig,
    cap: usize,
    /// `levels[i]`: end-ticks of size-`2^i` buckets, **front = newest**.
    levels: Vec<VecDeque<u64>>,
    /// 1-bits currently held (unexpired buckets).
    total: u64,
    /// Tick of the most recent insertion.
    last_ts: u64,
    /// Tick of the first insertion ever, if any.
    first_ts: Option<u64>,
    /// End-tick of the most recently expired bucket: the start of the oldest
    /// retained bucket's range.
    dropped_end: Option<u64>,
    /// Lifetime number of 1-bits inserted.
    lifetime: u64,
}

impl ExponentialHistogram {
    /// Create an empty histogram.
    pub fn new(cfg: &EhConfig) -> Self {
        ExponentialHistogram {
            cap: cfg.level_capacity(),
            cfg: cfg.clone(),
            levels: Vec::new(),
            total: 0,
            last_ts: 0,
            first_ts: None,
            dropped_end: None,
            lifetime: 0,
        }
    }

    /// The configuration this histogram was built with.
    pub fn config(&self) -> &EhConfig {
        &self.cfg
    }

    /// Raw level deques (newest bucket at each front) — the slab grid
    /// imports and materializes cells through these.
    pub(crate) fn raw_levels(&self) -> &[VecDeque<u64>] {
        &self.levels
    }

    /// Raw scalar state: `(total, last_ts, first_ts, dropped_end,
    /// lifetime)`.
    pub(crate) fn raw_meta(&self) -> (u64, u64, Option<u64>, Option<u64>, u64) {
        (
            self.total,
            self.last_ts,
            self.first_ts,
            self.dropped_end,
            self.lifetime,
        )
    }

    /// Assemble a histogram from raw state (the slab grid's materialization
    /// path); callers are responsible for handing over a consistent state.
    pub(crate) fn from_raw_parts(
        cfg: &EhConfig,
        levels: Vec<VecDeque<u64>>,
        total: u64,
        last_ts: u64,
        first_ts: Option<u64>,
        dropped_end: Option<u64>,
        lifetime: u64,
    ) -> Self {
        ExponentialHistogram {
            cap: cfg.level_capacity(),
            cfg: cfg.clone(),
            levels,
            total,
            last_ts,
            first_ts,
            dropped_end,
            lifetime,
        }
    }

    /// Record one 1-bit at tick `ts`. Ticks must be non-decreasing.
    pub fn insert_one(&mut self, ts: u64) {
        self.insert_ones(ts, 1);
    }

    /// Record `n` 1-bits, all at tick `ts`.
    ///
    /// Cost is `O(levels · capacity)` independent of `n`: same-tick bits
    /// are carried up the level cascade arithmetically (see
    /// `push_bits_bulk`), producing a structure
    /// **bit-identical** to `n` successive [`insert_one`](Self::insert_one)
    /// calls — the equivalence the differential ingest suite pins down.
    pub fn insert_ones(&mut self, ts: u64, n: u64) {
        debug_assert!(
            self.first_ts.is_none() || ts >= self.last_ts,
            "timestamps must be non-decreasing: {ts} after {}",
            self.last_ts
        );
        if n == 0 {
            return;
        }
        if self.first_ts.is_none() {
            self.first_ts = Some(ts);
        }
        self.last_ts = ts;
        self.expire(ts);
        // Small bursts: the plain cascade is 2·n amortized deque ops, which
        // beats the bulk path's fixed O(capacity) per touched level until
        // the burst is a few times the level capacity.
        if n < 2 * self.cap as u64 {
            for _ in 0..n {
                self.push_bit(ts);
            }
        } else {
            self.push_bits_bulk(ts, n);
        }
        self.total += n;
        self.lifetime += n;
    }

    fn push_bit(&mut self, ts: u64) {
        if self.levels.is_empty() {
            self.levels.push(VecDeque::with_capacity(self.cap + 1));
        }
        self.levels[0].push_front(ts);
        // Cascade: merging the two oldest buckets of a full level produces one
        // bucket one level up, which is newer than everything already there.
        let mut i = 0;
        while self.levels[i].len() > self.cap {
            let _older = self.levels[i].pop_back().expect("level over capacity");
            let newer = self.levels[i].pop_back().expect("level over capacity");
            if self.levels.len() == i + 1 {
                self.levels.push(VecDeque::with_capacity(self.cap + 1));
            }
            // The merged bucket is newer than every bucket already one level
            // up (bucket sizes are non-decreasing with age), so it enters at
            // the front (newest side).
            self.levels[i + 1].push_front(newer);
            i += 1;
        }
    }

    /// Push `n` same-tick bits with one pass per level instead of `n`
    /// cascades.
    ///
    /// Level-by-level reformulation of the cascade: the buckets arriving at
    /// level `i` are exactly the carries level `i − 1` emitted, in emission
    /// order, and a level's final state depends only on its initial state
    /// and its arrival sequence. Each level's arrivals are `explicit`
    /// end-ticks (carries that merged pre-existing buckets; ascending, at
    /// most one per pre-existing bucket pair) followed by `run` buckets
    /// ending at `ts`. The explicit prefix is replayed one bucket at a time
    /// (`O(capacity)`); the `ts`-run is resolved arithmetically: once the
    /// level is topped up, every second push emits one `ts` carry, so the
    /// carry count, the surviving pre-existing buckets and the surviving
    /// `ts` buckets all follow in closed form.
    fn push_bits_bulk(&mut self, ts: u64, n: u64) {
        let cap = self.cap;
        let cap64 = cap as u64;
        // Carry buffers are reused across levels (≤ capacity entries each).
        let mut explicit: Vec<u64> = Vec::with_capacity(cap);
        let mut out_explicit: Vec<u64> = Vec::with_capacity(cap);
        let mut run: u64 = n;
        let mut i = 0usize;
        while !explicit.is_empty() || run > 0 {
            if self.levels.len() == i {
                self.levels.push(VecDeque::with_capacity(cap + 1));
            }
            let level = &mut self.levels[i];
            out_explicit.clear();
            // Replay the explicit carries individually: each may merge the
            // two oldest pre-existing buckets of this level.
            for &end in &explicit {
                level.push_front(end);
                if level.len() > cap {
                    let _older = level.pop_back().expect("level over capacity");
                    let newer = level.pop_back().expect("level over capacity");
                    out_explicit.push(newer);
                }
            }
            // The ts-run, in closed form. With `len` buckets present, the
            // first carry fires at push `cap − len + 1`, then one carry per
            // two pushes.
            let len = level.len() as u64;
            let carries = if run + len <= cap64 {
                0
            } else {
                1 + (run - (cap64 - len + 1)) / 2
            };
            // Carry j merges the (2j−1)-th and (2j)-th oldest buckets and
            // keeps the newer; while those are pre-existing buckets the
            // carry's end-tick is explicit, afterwards it is `ts`.
            let consumed_old = (2 * carries).min(len);
            for j in 1..=consumed_old {
                let end = level.pop_back().expect("old bucket");
                if j % 2 == 0 {
                    out_explicit.push(end);
                }
            }
            let ts_carries = carries - consumed_old / 2;
            // Surviving ts buckets: pushed minus those consumed by carries.
            let ts_kept = run - (2 * carries - consumed_old);
            for _ in 0..ts_kept {
                level.push_front(ts);
            }
            debug_assert!(level.len() <= cap);
            std::mem::swap(&mut explicit, &mut out_explicit);
            run = ts_carries;
            i += 1;
        }
    }

    /// Drop buckets that no longer overlap the window ending at `now`.
    pub fn expire(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.cfg.window);
        if cutoff == 0 {
            return;
        }
        // Bucket ages decrease with level index: everything in `levels[i+1]`
        // is older than everything in `levels[i]`.
        for i in (0..self.levels.len()).rev() {
            let size = 1u64 << i;
            let mut survivor = false;
            while let Some(&end) = self.levels[i].back() {
                if end <= cutoff {
                    self.levels[i].pop_back();
                    self.total -= size;
                    self.dropped_end = Some(match self.dropped_end {
                        Some(d) => d.max(end),
                        None => end,
                    });
                } else {
                    survivor = true;
                    break;
                }
            }
            if survivor {
                break;
            }
        }
        while matches!(self.levels.last(), Some(l) if l.is_empty()) {
            self.levels.pop();
        }
    }

    /// Estimated number of 1-bits with tick in `(now - range, now]`:
    /// full buckets plus half of the oldest, partially overlapping one.
    pub fn estimate(&self, now: u64, range: u64) -> f64 {
        let range = range.min(self.cfg.window);
        let cutoff = now.saturating_sub(range);
        let mut sum: f64 = 0.0;
        // Oldest in-range bucket lives in the highest level that has any
        // in-range bucket; the bucket just older than it (if retained) is the
        // next entry of the same level or absent entirely.
        let mut oldest: Option<(u64 /* size */, Option<u64> /* prev end */)> = None;
        for (i, level) in self.levels.iter().enumerate().rev() {
            if level.is_empty() {
                continue;
            }
            // Front = newest; ends decrease toward the back.
            let in_range = partition_desc(level, cutoff);
            if in_range == 0 {
                continue;
            }
            sum += ((in_range as u64) << i) as f64;
            if oldest.is_none() {
                let prev_end = level.get(in_range).copied().or(self.dropped_end);
                oldest = Some((1u64 << i, prev_end));
            }
        }
        if let Some((size, prev_end)) = oldest {
            // A size-1 bucket cannot straddle: its only bit sits at its end
            // tick, which is inside the range. Larger buckets are halved when
            // their range begins at or before the cutoff.
            let start = prev_end.or(self.first_ts);
            let straddles = size > 1
                && match start {
                    Some(s) => s <= cutoff,
                    None => false,
                };
            if straddles {
                sum -= size as f64 / 2.0;
            }
        }
        sum
    }

    /// Number of unexpired 1-bits currently held (no halving).
    pub fn stored_ones(&self) -> u64 {
        self.total
    }

    /// Lifetime number of 1-bits inserted.
    pub fn lifetime_ones(&self) -> u64 {
        self.lifetime
    }

    /// Tick of the most recent insertion (0 if empty).
    pub fn last_tick(&self) -> u64 {
        self.last_ts
    }

    /// Number of buckets currently held.
    pub fn bucket_count(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Iterate buckets from oldest to newest, with reconstructed start ticks.
    pub fn buckets(&self) -> impl Iterator<Item = BucketView> + '_ {
        let mut out = Vec::with_capacity(self.bucket_count());
        let mut prev_end = self.dropped_end.or(self.first_ts);
        for (i, level) in self.levels.iter().enumerate().rev() {
            let size = 1u64 << i;
            for &end in level.iter().rev() {
                let start = prev_end.unwrap_or(end);
                out.push(BucketView { start, end, size });
                prev_end = Some(end);
            }
        }
        out.into_iter()
    }

    /// Validate the structural invariants the construction maintains:
    /// per-level capacity, timestamp ordering within and across levels, and
    /// the consistency of the cached total. These are what operationally
    /// enforce invariant 1 of the paper (bucket sizes bounded relative to the
    /// newer mass); the resulting ε error guarantee is exercised separately
    /// by statistical property tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut sum = 0u64;
        for (i, level) in self.levels.iter().enumerate() {
            if level.len() > self.cap {
                return Err(format!(
                    "level {i} holds {} buckets, capacity {}",
                    level.len(),
                    self.cap
                ));
            }
            // Front = newest: ends must decrease (weakly) toward the back.
            for w in 0..level.len().saturating_sub(1) {
                if level[w] < level[w + 1] {
                    return Err(format!("level {i} out of order at {w}"));
                }
            }
            sum += (level.len() as u64) << i;
        }
        // Every bucket of level i+1 must be at least as old as every bucket
        // of level i (sizes non-decreasing with age).
        for i in 0..self.levels.len().saturating_sub(1) {
            if let (Some(&oldest_lo), Some(&newest_hi)) =
                (self.levels[i].back(), self.levels[i + 1].front())
            {
                if newest_hi > oldest_lo {
                    return Err(format!(
                        "level {} bucket newer than level {i} bucket",
                        i + 1
                    ));
                }
            }
        }
        if sum != self.total {
            return Err(format!("cached total {} != bucket sum {sum}", self.total));
        }
        Ok(())
    }
}

/// Number of leading entries (front side) of a descending-sorted deque that
/// are strictly greater than `cutoff`.
fn partition_desc(level: &VecDeque<u64>, cutoff: u64) -> usize {
    let (a, b) = level.as_slices();
    let pa = a.partition_point(|&e| e > cutoff);
    if pa < a.len() {
        pa
    } else {
        a.len() + b.partition_point(|&e| e > cutoff)
    }
}

impl WindowCounter for ExponentialHistogram {
    type Config = EhConfig;
    /// Grids of EH cells live in one contiguous slab (the level capacity is
    /// fixed at construction, so rings replace the per-level deques).
    type GridStorage = crate::eh_slab::EhGrid;

    fn new(cfg: &Self::Config) -> Self {
        ExponentialHistogram::new(cfg)
    }

    fn insert(&mut self, ts: u64, _id: u64) {
        self.insert_one(ts);
    }

    fn insert_weighted(&mut self, ts: u64, _first_id: u64, n: u64) {
        self.insert_ones(ts, n);
    }

    fn query(&self, now: u64, range: u64) -> f64 {
        self.estimate(now, range)
    }

    fn window_len(&self) -> u64 {
        self.cfg.window
    }

    fn guarantee(cfg: &Self::Config) -> Option<WindowGuarantee> {
        Some(WindowGuarantee::deterministic(cfg.epsilon))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.levels.capacity() * std::mem::size_of::<VecDeque<u64>>()
            + self
                .levels
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, self.levels.len() as u64);
        for level in &self.levels {
            put_varint(buf, level.len() as u64);
            // Ends decrease front → back: delta-encode for compactness.
            let mut prev = None;
            for &end in level {
                match prev {
                    None => put_varint(buf, end),
                    Some(p) => put_varint(buf, p - end),
                }
                prev = Some(end);
            }
        }
        put_varint(buf, self.total);
        put_varint(buf, self.last_ts);
        put_varint(buf, self.lifetime);
        match self.first_ts {
            Some(t) => {
                put_u8(buf, 1);
                put_varint(buf, t);
            }
            None => put_u8(buf, 0),
        }
        match self.dropped_end {
            Some(t) => {
                put_u8(buf, 1);
                put_varint(buf, t);
            }
            None => put_u8(buf, 0),
        }
    }

    fn decode(cfg: &Self::Config, input: &mut &[u8]) -> Result<Self, CodecError> {
        let version = get_u8(input, "eh version")?;
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let n_levels = get_varint(input, "eh levels")? as usize;
        if n_levels > 64 {
            return Err(CodecError::Corrupt {
                context: "eh levels",
            });
        }
        let cap = cfg.level_capacity();
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n = get_varint(input, "eh level len")? as usize;
            if n > cap + 1 {
                return Err(CodecError::Corrupt {
                    context: "eh level len",
                });
            }
            let mut level = VecDeque::with_capacity(cap + 1);
            let mut prev: Option<u64> = None;
            for _ in 0..n {
                let v = get_varint(input, "eh bucket end")?;
                let end = match prev {
                    None => v,
                    Some(p) => p.checked_sub(v).ok_or(CodecError::Corrupt {
                        context: "eh bucket delta",
                    })?,
                };
                level.push_back(end);
                prev = Some(end);
            }
            levels.push(level);
        }
        let total = get_varint(input, "eh total")?;
        let last_ts = get_varint(input, "eh last_ts")?;
        let lifetime = get_varint(input, "eh lifetime")?;
        let first_ts = if get_u8(input, "eh first flag")? == 1 {
            Some(get_varint(input, "eh first_ts")?)
        } else {
            None
        };
        let dropped_end = if get_u8(input, "eh dropped flag")? == 1 {
            Some(get_varint(input, "eh dropped_end")?)
        } else {
            None
        };
        // Checked fold: 64 corrupt levels of large buckets must error on
        // the mismatch, not overflow the consistency sum.
        let sum = levels
            .iter()
            .enumerate()
            .try_fold(0u64, |acc, (i, l)| {
                // checked_mul, not checked_shl: a shift silently discards
                // overflowing value bits and would let a crafted total pass.
                1u64.checked_shl(i as u32)
                    .and_then(|size| (l.len() as u64).checked_mul(size))
                    .and_then(|v| acc.checked_add(v))
            })
            .ok_or(CodecError::Corrupt {
                context: "eh total",
            })?;
        if sum != total {
            return Err(CodecError::Corrupt {
                context: "eh total",
            });
        }
        Ok(ExponentialHistogram {
            cap,
            cfg: cfg.clone(),
            levels,
            total,
            last_ts,
            first_ts,
            dropped_end,
            lifetime,
        })
    }
}

impl MergeableCounter for ExponentialHistogram {
    const LOSSLESS_MERGE: bool = false;

    fn merge(parts: &[&Self], out_cfg: &Self::Config) -> Result<Self, crate::error::MergeError> {
        merge_exponential_histograms(parts, out_cfg)
    }
}

#[cfg(test)]
mod tests;
