use super::*;
use crate::traits::WindowCounter;
use proptest::prelude::*;

/// Exact count of arrivals with tick in `(now - range, now]`.
fn exact_count(ticks: &[u64], now: u64, range: u64) -> u64 {
    let cutoff = now.saturating_sub(range);
    ticks.iter().filter(|&&t| t > cutoff && t <= now).count() as u64
}

fn build(eps: f64, window: u64, ticks: &[u64]) -> ExponentialHistogram {
    let mut eh = ExponentialHistogram::new(&EhConfig::new(eps, window));
    for &t in ticks {
        eh.insert_one(t);
    }
    eh
}

#[test]
fn empty_histogram_reports_zero() {
    let eh = ExponentialHistogram::new(&EhConfig::new(0.1, 100));
    assert_eq!(eh.estimate(50, 100), 0.0);
    assert_eq!(eh.stored_ones(), 0);
    assert_eq!(eh.bucket_count(), 0);
    assert!(eh.validate().is_ok());
}

#[test]
#[should_panic(expected = "epsilon")]
fn zero_epsilon_rejected() {
    let _ = EhConfig::new(0.0, 10);
}

#[test]
#[should_panic(expected = "window")]
fn zero_window_rejected() {
    let _ = EhConfig::new(0.1, 0);
}

#[test]
fn level_capacity_formula() {
    // k = ceil(1/eps); cap = ceil(k/2) + 2.
    assert_eq!(EhConfig::new(0.1, 10).level_capacity(), 7);
    assert_eq!(EhConfig::new(0.5, 10).level_capacity(), 3);
    assert_eq!(EhConfig::new(1.0, 10).level_capacity(), 3);
    assert_eq!(EhConfig::new(0.05, 10).level_capacity(), 12);
}

#[test]
fn small_streams_are_exact() {
    // While every bucket has size 1 the structure is lossless for queries
    // whose cutoff does not split a bucket.
    let eh = build(0.1, 1000, &[1, 2, 3, 4, 5]);
    assert_eq!(eh.estimate(5, 1000), 5.0);
    assert_eq!(eh.estimate(5, 2), 2.0); // ticks 4,5
    assert_eq!(eh.estimate(5, 4), 4.0); // ticks 2..=5
    assert_eq!(eh.stored_ones(), 5);
}

#[test]
fn expiry_drops_old_buckets() {
    let mut eh = build(0.1, 10, &(1..=100).collect::<Vec<_>>());
    eh.expire(100);
    // Everything with tick <= 90 is expirable; buckets may slightly lag but
    // stored ones must stay within the theoretical residue.
    assert!(eh.stored_ones() >= 10);
    assert!(eh.validate().is_ok());
    // A query over the window is close to the true 10.
    let est = eh.estimate(100, 10);
    assert!((est - 10.0).abs() <= 1.0 + 0.2 * 10.0, "est={est}");
}

#[test]
fn expiry_keeps_totals_consistent_over_long_stream() {
    let mut eh = ExponentialHistogram::new(&EhConfig::new(0.2, 50));
    for t in 1..=10_000u64 {
        eh.insert_one(t);
        if t % 997 == 0 {
            assert!(eh.validate().is_ok(), "at t={t}");
        }
    }
    assert!(eh.validate().is_ok());
    // Memory is bounded: levels * capacity.
    assert!(eh.bucket_count() <= 64 * eh.config().level_capacity());
}

#[test]
fn estimate_error_within_half_of_straddling_bucket() {
    // Deterministic guarantee: the only uncertainty is the oldest,
    // partially-overlapping bucket, counted as half its size.
    let ticks: Vec<u64> = (1..=5000).map(|i| i * 3 % 7919 + 1).collect();
    let mut sorted = ticks.clone();
    sorted.sort_unstable();
    let eh = build(0.1, 1_000_000, &sorted);
    let now = *sorted.last().unwrap();
    for range in [1u64, 10, 100, 1000, 5000, 10_000] {
        let est = eh.estimate(now, range);
        let exact = exact_count(&sorted, now, range) as f64;
        let cutoff = now.saturating_sub(range);
        let straddler = eh
            .buckets()
            .find(|b| b.end > cutoff)
            .map_or(0.0, |b| b.size as f64);
        assert!(
            (est - exact).abs() <= straddler / 2.0 + 1e-9,
            "range={range} est={est} exact={exact} straddler={straddler}"
        );
    }
}

#[test]
fn full_window_query_has_relative_error_eps() {
    for &eps in &[0.05, 0.1, 0.2] {
        let ticks: Vec<u64> = (1..=20_000u64).collect();
        let window = 5_000u64;
        let eh = build(eps, window, &ticks);
        let est = eh.estimate(20_000, window);
        let exact = 5_000.0;
        let rel = (est - exact).abs() / exact;
        assert!(rel <= eps, "eps={eps} rel={rel}");
    }
}

#[test]
fn buckets_iterate_oldest_to_newest_with_contiguous_ranges() {
    let eh = build(0.3, 10_000, &(1..=200).collect::<Vec<_>>());
    let buckets: Vec<BucketView> = eh.buckets().collect();
    assert!(!buckets.is_empty());
    for w in buckets.windows(2) {
        assert!(w[0].end <= w[1].end, "ends must be non-decreasing");
        assert_eq!(w[1].start, w[0].end, "ranges must chain");
        assert!(w[0].size >= w[1].size, "sizes non-increasing toward newest");
    }
    let total: u64 = buckets.iter().map(|b| b.size).sum();
    assert_eq!(total, eh.stored_ones());
}

#[test]
fn window_counter_trait_roundtrip() {
    let cfg = EhConfig::new(0.1, 500);
    let mut eh = <ExponentialHistogram as WindowCounter>::new(&cfg);
    for t in 1..=300u64 {
        eh.insert(t, t);
    }
    assert_eq!(eh.window_len(), 500);
    assert!(eh.memory_bytes() > 0);
    assert!((eh.query_window(300) - 300.0).abs() <= 0.1 * 300.0);
}

#[test]
fn codec_round_trips() {
    let cfg = EhConfig::new(0.1, 1000);
    let mut eh = ExponentialHistogram::new(&cfg);
    for t in 1..=2500u64 {
        eh.insert_one(t * 2);
    }
    let mut buf = Vec::new();
    eh.encode(&mut buf);
    assert_eq!(buf.len(), eh.encoded_len());
    let mut slice = buf.as_slice();
    let back = ExponentialHistogram::decode(&cfg, &mut slice).unwrap();
    assert!(slice.is_empty());
    assert_eq!(back.stored_ones(), eh.stored_ones());
    assert_eq!(back.lifetime_ones(), eh.lifetime_ones());
    for range in [10u64, 100, 999] {
        assert_eq!(back.estimate(5000, range), eh.estimate(5000, range));
    }
    assert!(back.validate().is_ok());
}

#[test]
fn codec_rejects_truncation_and_bad_version() {
    let cfg = EhConfig::new(0.1, 1000);
    let mut eh = ExponentialHistogram::new(&cfg);
    for t in 1..=100u64 {
        eh.insert_one(t);
    }
    let mut buf = Vec::new();
    eh.encode(&mut buf);
    for cut in 0..buf.len() {
        let mut slice = &buf[..cut];
        assert!(
            ExponentialHistogram::decode(&cfg, &mut slice).is_err(),
            "cut={cut} should fail"
        );
    }
    let mut bad = buf.clone();
    bad[0] = 99;
    let mut slice = bad.as_slice();
    assert!(matches!(
        ExponentialHistogram::decode(&cfg, &mut slice),
        Err(crate::CodecError::BadVersion { found: 99 })
    ));
}

#[test]
fn empty_codec_round_trips() {
    let cfg = EhConfig::new(0.25, 64);
    let eh = ExponentialHistogram::new(&cfg);
    let mut buf = Vec::new();
    eh.encode(&mut buf);
    let mut slice = buf.as_slice();
    let back = ExponentialHistogram::decode(&cfg, &mut slice).unwrap();
    assert_eq!(back.stored_ones(), 0);
    assert_eq!(back.estimate(100, 64), 0.0);
}

#[test]
fn merge_two_histograms_approximates_union() {
    let cfg = EhConfig::new(0.1, 100_000);
    let a_ticks: Vec<u64> = (1..=4000).map(|i| i * 2).collect();
    let b_ticks: Vec<u64> = (1..=4000).map(|i| i * 2 + 1).collect();
    let a = build(0.1, 100_000, &a_ticks);
    let b = build(0.1, 100_000, &b_ticks);
    let merged = merge_exponential_histograms(&[&a, &b], &cfg).unwrap();
    assert!(merged.validate().is_ok());

    let mut union: Vec<u64> = a_ticks.iter().chain(&b_ticks).copied().collect();
    union.sort_unstable();
    let now = *union.last().unwrap();
    // Theorem 4 envelope with eps = eps' = 0.1: 2eps + eps^2 = 0.21.
    let envelope = 0.21;
    for range in [500u64, 2000, 8000] {
        let est = merged.estimate(now, range);
        let exact = exact_count(&union, now, range) as f64;
        assert!(
            (est - exact).abs() <= envelope * exact + 2.0,
            "range={range} est={est} exact={exact}"
        );
    }
}

#[test]
fn merge_single_part_is_near_identity() {
    let cfg = EhConfig::new(0.05, 10_000);
    let ticks: Vec<u64> = (1..=3000u64).collect();
    let eh = build(0.05, 10_000, &ticks);
    let merged = merge_exponential_histograms(&[&eh], &cfg).unwrap();
    // Totals preserved exactly: replay moves bits within bucket ranges but
    // never loses them.
    assert_eq!(merged.stored_ones(), eh.stored_ones());
}

#[test]
fn merge_respects_idle_site_clock() {
    // One site saw recent events, the other has been idle; the merged clock
    // must advance to the most recent tick so expiry is correct.
    let cfg = EhConfig::new(0.1, 100);
    let idle = build(0.1, 100, &[1, 2, 3]);
    let busy = build(0.1, 100, &(200..=300).collect::<Vec<_>>());
    let merged = merge_exponential_histograms(&[&idle, &busy], &cfg).unwrap();
    assert_eq!(merged.last_tick(), 300);
    // The idle site's ancient ticks are outside the merged window.
    let est = merged.estimate(300, 100);
    assert!(
        (est - 100.0).abs() <= 0.21 * 100.0 + 2.0,
        "idle events must have expired, est={est}"
    );
}

#[test]
fn hierarchical_merge_error_stays_bounded() {
    // 4 sites, 2 levels of pairwise merging.
    let window = 1_000_000u64;
    let eps = 0.1;
    let cfg = EhConfig::new(eps, window);
    let mut site_ticks: Vec<Vec<u64>> = Vec::new();
    for s in 0..4u64 {
        site_ticks.push((1..=3000).map(|i| i * 4 + s).collect());
    }
    let sites: Vec<ExponentialHistogram> =
        site_ticks.iter().map(|t| build(eps, window, t)).collect();
    let l1a = merge_exponential_histograms(&[&sites[0], &sites[1]], &cfg).unwrap();
    let l1b = merge_exponential_histograms(&[&sites[2], &sites[3]], &cfg).unwrap();
    let root = merge_exponential_histograms(&[&l1a, &l1b], &cfg).unwrap();

    let mut union: Vec<u64> = site_ticks.concat();
    union.sort_unstable();
    let now = *union.last().unwrap();
    // h=2 levels: bound = h*eps*(1+eps) + eps = 0.32; observed is far lower.
    for range in [1000u64, 4000, 12_000] {
        let est = root.estimate(now, range);
        let exact = exact_count(&union, now, range) as f64;
        assert!(
            (est - exact).abs() <= 0.32 * exact + 2.0,
            "range={range} est={est} exact={exact}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core deterministic guarantee: estimate error never exceeds half the
    /// straddling bucket.
    #[test]
    fn prop_error_bounded_by_straddler(
        gaps in proptest::collection::vec(1u64..20, 1..800),
        eps in 0.05f64..0.5,
        range_frac in 0.01f64..1.0,
    ) {
        let mut ticks = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in gaps { t += g; ticks.push(t); }
        let now = *ticks.last().unwrap();
        let window = now + 1;
        let eh = build(eps, window, &ticks);
        prop_assert!(eh.validate().is_ok());
        let range = ((now as f64 * range_frac) as u64).max(1);
        let est = eh.estimate(now, range);
        let exact = exact_count(&ticks, now, range) as f64;
        let cutoff = now.saturating_sub(range);
        let straddler = eh
            .buckets()
            .find(|b| b.end > cutoff)
            .map_or(0.0, |b| b.size as f64);
        prop_assert!(
            (est - exact).abs() <= straddler / 2.0 + 1e-9,
            "est={} exact={} straddler={}", est, exact, straddler
        );
    }

    /// Paper-level guarantee on saturated windows: relative error ≤ ε
    /// for full-window queries once the window holds plenty of arrivals.
    #[test]
    fn prop_full_window_relative_error(
        n in 2000usize..6000,
        eps in 0.05f64..0.3,
    ) {
        let ticks: Vec<u64> = (1..=n as u64).collect();
        let window = (n / 2) as u64;
        let eh = build(eps, window, &ticks);
        let est = eh.estimate(n as u64, window);
        let exact = window as f64;
        let rel = (est - exact).abs() / exact;
        prop_assert!(rel <= eps + 1e-9, "rel={} eps={}", rel, eps);
    }

    /// Codec round-trips preserve estimates exactly.
    #[test]
    fn prop_codec_roundtrip(
        gaps in proptest::collection::vec(1u64..50, 0..300),
        eps in 0.05f64..0.5,
    ) {
        let cfg = EhConfig::new(eps, 10_000);
        let mut eh = ExponentialHistogram::new(&cfg);
        let mut t = 0u64;
        for g in &gaps { t += g; eh.insert_one(t); }
        let mut buf = Vec::new();
        eh.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = ExponentialHistogram::decode(&cfg, &mut slice).unwrap();
        prop_assert!(slice.is_empty());
        for range in [1u64, 7, 100, 9999] {
            prop_assert_eq!(back.estimate(t, range), eh.estimate(t, range));
        }
    }

    /// Theorem 4: merged estimate within (ε + ε' + εε') of the union stream,
    /// plus a one-bucket additive slack for degenerate tiny counts.
    #[test]
    fn prop_merge_error_theorem4(
        seed_a in proptest::collection::vec(1u64..9, 50..400),
        seed_b in proptest::collection::vec(1u64..9, 50..400),
        eps in 0.08f64..0.3,
    ) {
        let window = 1_000_000u64;
        let mut a_ticks = Vec::new();
        let mut t = 0u64;
        for g in seed_a { t += g; a_ticks.push(t); }
        let mut b_ticks = Vec::new();
        let mut t = 1u64;
        for g in seed_b { t += g; b_ticks.push(t); }
        let a = build(eps, window, &a_ticks);
        let b = build(eps, window, &b_ticks);
        let out_cfg = EhConfig::new(eps, window);
        let merged = merge_exponential_histograms(&[&a, &b], &out_cfg).unwrap();
        prop_assert!(merged.validate().is_ok());

        let mut union: Vec<u64> = a_ticks.iter().chain(&b_ticks).copied().collect();
        union.sort_unstable();
        let now = (*union.last().unwrap()).max(a.last_tick()).max(b.last_tick());
        let envelope = eps + eps + eps * eps;
        for frac in [0.25f64, 0.5, 1.0] {
            let range = ((now as f64 * frac) as u64).max(1);
            let est = merged.estimate(now, range);
            let exact = exact_count(&union, now, range) as f64;
            let straddler = merged
                .buckets()
                .find(|bk| bk.end > now.saturating_sub(range))
                .map_or(0.0, |bk| bk.size as f64);
            prop_assert!(
                (est - exact).abs() <= envelope * exact + straddler / 2.0 + 2.0,
                "est={} exact={} envelope={}", est, exact, envelope
            );
        }
    }
}

#[test]
fn bulk_insert_is_bit_identical_to_sequential() {
    // Bursts large enough to carry several levels up in one call, mixed
    // with singleton inserts and window-spanning gaps.
    let cfg = EhConfig::new(0.1, 500);
    let mut seq = ExponentialHistogram::new(&cfg);
    let mut bulk = ExponentialHistogram::new(&cfg);
    let mut t = 0u64;
    for (gap, w) in [(1u64, 1u64), (0, 900), (3, 7), (600, 1), (1, 4096), (2, 2)] {
        t += gap;
        for _ in 0..w {
            seq.insert_one(t);
        }
        bulk.insert_ones(t, w);
    }
    seq.validate().unwrap();
    bulk.validate().unwrap();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    seq.encode(&mut a);
    bulk.encode(&mut b);
    assert_eq!(a, b, "bulk cascade must replicate the sequential state");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The arithmetic carry propagation of `insert_ones` leaves exactly the
    /// state `n` single-bit cascades would: encodings are byte-identical
    /// across random bursty traces with ties and gaps.
    #[test]
    fn prop_bulk_insert_matches_sequential(
        steps in proptest::collection::vec((0u64..40, 1u64..300), 1..60),
        eps in 0.05f64..0.6,
        window in 20u64..2000,
    ) {
        let cfg = EhConfig::new(eps, window);
        let mut seq = ExponentialHistogram::new(&cfg);
        let mut bulk = ExponentialHistogram::new(&cfg);
        let mut t = 1u64;
        for (gap, w) in steps {
            t += gap;
            for _ in 0..w {
                seq.insert_one(t);
            }
            bulk.insert_ones(t, w);
        }
        prop_assert!(bulk.validate().is_ok(), "{:?}", bulk.validate());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        seq.encode(&mut a);
        bulk.encode(&mut b);
        prop_assert_eq!(a, b);
    }
}
