//! Pluggable storage for *grids* of window counters — the cell layer the
//! `ecm` crate's Count-Min array is built on.
//!
//! A sketch owns `width × depth` sliding-window counters that are updated
//! and queried by flat cell index. How those cells are laid out in memory is
//! an implementation decision per counter type, captured by the sealed
//! [`CellStorage`] trait and selected through
//! [`WindowCounter::GridStorage`]:
//!
//! * [`VecCells<W>`] — one heap value per cell (`Vec<W>`), the generic
//!   layout used by the wave, exact and equi-width counters, whose state is
//!   dynamically sized.
//! * [`EhGrid`](crate::eh_slab::EhGrid) — the slab specialization for
//!   exponential histograms: every level of every cell is a fixed-capacity
//!   ring carved out of **one contiguous slab allocation** for the whole
//!   grid (see [`crate::eh_slab`]).
//!
//! The trait is sealed: the grid contract (bit-identical updates, wire
//! compatibility with the per-cell codec) is pinned down by differential
//! tests in this workspace, and outside implementations could not be held
//! to it.

use crate::error::CodecError;
use crate::traits::WindowCounter;

pub(crate) mod sealed {
    /// Seals [`super::CellStorage`]: only layouts defined in this crate can
    /// implement it.
    pub trait Sealed {}
}

/// Storage of a fixed-size grid of [`WindowCounter`] cells, addressed by
/// flat index in `0..n_cells`.
///
/// Every method that touches one cell must behave exactly like the same
/// operation on a standalone counter value: `insert`/`insert_weighted`
/// mirror the [`WindowCounter`] contract per cell, [`encode_cell`] must
/// produce the byte-identical wire encoding of
/// [`WindowCounter::encode`], and [`decode_grid`] must accept what a
/// per-cell decoder would. This equivalence is what lets layouts be swapped
/// without touching the sketch codec or merge logic, and it is pinned down
/// by the slab differential suites.
///
/// [`encode_cell`]: CellStorage::encode_cell
/// [`decode_grid`]: CellStorage::decode_grid
pub trait CellStorage<W: WindowCounter>: Clone + std::fmt::Debug + sealed::Sealed {
    /// A grid of `n_cells` empty counters configured by `cfg`.
    fn new_grid(cfg: &W::Config, n_cells: usize) -> Self;

    /// Number of cells in the grid.
    fn n_cells(&self) -> usize;

    /// Record one arrival with stream-unique `id` at tick `ts` in cell
    /// `idx` (see [`WindowCounter::insert`]).
    fn insert(&mut self, idx: usize, ts: u64, id: u64);

    /// Record `n` arrivals at tick `ts` carrying consecutive ids starting
    /// at `first_id` in cell `idx` (see [`WindowCounter::insert_weighted`]).
    fn insert_weighted(&mut self, idx: usize, ts: u64, first_id: u64, n: u64);

    /// Record `n` arrivals at the **consecutive** ticks
    /// `first_ts .. first_ts + n`, carrying the consecutive ids
    /// `first_id .. first_id + n` — the burst shape of count-based windows.
    fn insert_run(&mut self, idx: usize, first_ts: u64, first_id: u64, n: u64) {
        for k in 0..n {
            self.insert(idx, first_ts + k, first_id + k);
        }
    }

    /// Record the same burst in several cells at once — one per sketch
    /// row, which is how a Count-Min update touches the grid. Equivalent
    /// to [`insert_weighted`](CellStorage::insert_weighted) per index;
    /// layouts whose per-cell work repeats a per-occurrence computation
    /// (the randomized wave's id-level sampling is identical in every
    /// row) override this to share it across the rows.
    fn insert_weighted_rows(&mut self, idxs: &[usize], ts: u64, first_id: u64, n: u64) {
        for &idx in idxs {
            self.insert_weighted(idx, ts, first_id, n);
        }
    }

    /// Cell `idx`'s estimate of the arrivals with tick in
    /// `(now − range, now]` (see [`WindowCounter::query`]).
    fn query(&self, idx: usize, now: u64, range: u64) -> f64;

    /// The configured window length shared by every cell (0 for an empty
    /// grid).
    fn window_len(&self) -> u64;

    /// Bytes of **heap** memory currently held by the whole grid, beyond
    /// its inline struct size (the grid value lives inline in its sketch,
    /// whose own `memory_bytes` counts that).
    fn memory_bytes(&self) -> usize;

    /// Append cell `idx`'s wire encoding — **byte-identical** to
    /// [`WindowCounter::encode`] on an equal standalone counter.
    fn encode_cell(&self, idx: usize, buf: &mut Vec<u8>);

    /// Decode `n_cells` consecutive per-cell encodings (the format
    /// [`encode_cell`](CellStorage::encode_cell) and the standalone
    /// [`WindowCounter::encode`] share) into a grid.
    ///
    /// # Errors
    /// [`CodecError`] exactly where the per-cell decoder would fail.
    fn decode_grid(cfg: &W::Config, n_cells: usize, input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Borrow cell `idx` as a standalone counter value, for layouts that
    /// store cells as such; `None` for packed layouts (the slab), whose
    /// cells must be [`materialize`](CellStorage::materialize)d. Lets the
    /// merge paths stay zero-copy wherever the layout allows.
    fn cell_ref(&self, idx: usize) -> Option<&W>;

    /// Materialize cell `idx` as a standalone counter value (used by the
    /// merge paths, which operate on counter values).
    fn materialize(&self, idx: usize) -> W;

    /// Build a grid holding exactly `counters` (used to store merge
    /// results); `cfg` must be the configuration the counters were built
    /// with.
    fn from_counters(cfg: &W::Config, counters: Vec<W>) -> Self;
}

/// The generic one-heap-value-per-cell layout: a plain `Vec<W>`.
///
/// This is the right storage for counters whose state is inherently
/// dynamically sized (wave sample queues, exact arrival logs); the
/// fixed-capacity exponential histogram uses the slab-backed
/// [`EhGrid`](crate::eh_slab::EhGrid) instead.
#[derive(Debug, Clone)]
pub struct VecCells<W> {
    cells: Vec<W>,
}

impl<W> VecCells<W> {
    /// The cells as a mutable slice — crate-internal so specialized grids
    /// (the randomized wave's shared-sampling [`RwGrid`]) can wrap a
    /// `VecCells` for all generic plumbing and reach in only for their
    /// custom update kernel.
    ///
    /// [`RwGrid`]: crate::randomized_wave::RwGrid
    pub(crate) fn cells_mut(&mut self) -> &mut [W] {
        &mut self.cells
    }
}

impl<W> sealed::Sealed for VecCells<W> {}

impl<W: WindowCounter> CellStorage<W> for VecCells<W> {
    fn new_grid(cfg: &W::Config, n_cells: usize) -> Self {
        VecCells {
            cells: (0..n_cells).map(|_| W::new(cfg)).collect(),
        }
    }

    fn n_cells(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn insert(&mut self, idx: usize, ts: u64, id: u64) {
        self.cells[idx].insert(ts, id);
    }

    #[inline]
    fn insert_weighted(&mut self, idx: usize, ts: u64, first_id: u64, n: u64) {
        self.cells[idx].insert_weighted(ts, first_id, n);
    }

    #[inline]
    fn query(&self, idx: usize, now: u64, range: u64) -> f64 {
        self.cells[idx].query(now, range)
    }

    fn window_len(&self) -> u64 {
        self.cells.first().map(W::window_len).unwrap_or(0)
    }

    fn memory_bytes(&self) -> usize {
        // Occupied buffer slots are covered by the per-cell inline sizes
        // inside `W::memory_bytes`; spare capacity is counted explicitly.
        (self.cells.capacity() - self.cells.len()) * std::mem::size_of::<W>()
            + self.cells.iter().map(W::memory_bytes).sum::<usize>()
    }

    fn encode_cell(&self, idx: usize, buf: &mut Vec<u8>) {
        self.cells[idx].encode(buf);
    }

    fn decode_grid(cfg: &W::Config, n_cells: usize, input: &mut &[u8]) -> Result<Self, CodecError> {
        let mut cells = Vec::with_capacity(n_cells);
        for _ in 0..n_cells {
            cells.push(W::decode(cfg, input)?);
        }
        Ok(VecCells { cells })
    }

    fn cell_ref(&self, idx: usize) -> Option<&W> {
        Some(&self.cells[idx])
    }

    fn materialize(&self, idx: usize) -> W {
        self.cells[idx].clone()
    }

    fn from_counters(_cfg: &W::Config, counters: Vec<W>) -> Self {
        VecCells { cells: counters }
    }
}
