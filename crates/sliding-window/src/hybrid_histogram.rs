//! Hybrid histogram — the sliding-window *range query* baseline of Qiao,
//! Agrawal and El Abbadi (SSDBM 2003) that the paper's related-work section
//! contrasts the dyadic ECM hierarchy against (§2).
//!
//! The structure marries the two simplest tools for each dimension: time is
//! tracked by an exponential histogram (buckets of exponentially growing
//! sizes, invariant 1, half-the-oldest-bucket queries), and *within each time
//! bucket* the value domain is cut into a fixed number of equi-width bins.
//! A range query `(value ∈ [lo, hi], last r ticks)` sums the matching bins of
//! the in-range time buckets, prorating partial bin overlaps uniformly.
//!
//! The paper's criticism is reproduced faithfully: the time dimension keeps
//! its ε guarantee, but the value dimension has none — a value range narrower
//! than one bin inherits whatever fraction of the bin's mass the uniformity
//! assumption assigns it, which can be arbitrarily wrong on skewed data.
//! `crates/bench/src/bin/baseline_hybrid.rs` measures this failure mode
//! against the dyadic ECM hierarchy, which answers the same queries with a
//! guaranteed error.
//!
//! Composition is also absent (the paper: "cannot be composed in a
//! distributed setting"): merging two hybrid histograms would need the
//! stream-reconstruction argument of §5.1 *per value bin*, which the bucket
//! bins do not retain enough information for. No `MergeableCounter` impl is
//! provided, deliberately.

use std::collections::VecDeque;

use crate::codec::{get_u8, get_varint, put_u8, put_varint};
use crate::error::CodecError;

const CODEC_VERSION: u8 = 7;

/// Construction parameters for a [`HybridHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// Target relative error ε of the *time* dimension (exponential
    /// histogram invariant). The value dimension has no error parameter —
    /// that is the point of this baseline.
    pub epsilon: f64,
    /// Window length in ticks.
    pub window: u64,
    /// Value universe: values are `0 .. domain`.
    pub domain: u64,
    /// Number of equi-width value bins per time bucket.
    pub bins: usize,
}

impl HybridConfig {
    /// Build a config, validating parameter ranges.
    ///
    /// # Panics
    /// If `epsilon ∉ (0, 1]`, `window == 0`, `domain == 0`, `bins == 0`, or
    /// `bins` exceeds `domain` (bins must span at least one value).
    pub fn new(epsilon: f64, window: u64, domain: u64, bins: usize) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        assert!(window > 0, "window must be positive");
        assert!(domain > 0, "domain must be positive");
        assert!(bins > 0, "need at least one bin");
        assert!(
            bins as u64 <= domain,
            "bins ({bins}) must not exceed domain ({domain})"
        );
        HybridConfig {
            epsilon,
            window,
            domain,
            bins,
        }
    }

    /// Width of one value bin: `⌈domain / bins⌉`.
    pub fn bin_width(&self) -> u64 {
        self.domain.div_ceil(self.bins as u64)
    }

    /// Maximum buckets per size class (same rule as the exponential
    /// histogram: `⌈k/2⌉ + 2` for `k = ⌈1/ε⌉`).
    pub fn level_capacity(&self) -> usize {
        let k = (1.0 / self.epsilon).ceil() as usize;
        k.div_ceil(2) + 2
    }
}

/// One time bucket: its end tick, its total arrival count (a power of two),
/// and the per-bin split of that count over the value domain.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HybridBucket {
    end: u64,
    bins: Vec<u64>,
}

impl HybridBucket {
    fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// Sliding-window range-query histogram (baseline; ε guarantee on the time
/// dimension only — the value dimension prorates uniformly, with no bound).
///
/// ```
/// use sliding_window::hybrid_histogram::{HybridConfig, HybridHistogram};
///
/// // Last 1000 ticks, values 0..100 in 10 bins, time error 10%.
/// let cfg = HybridConfig::new(0.1, 1000, 100, 10);
/// let mut h = HybridHistogram::new(&cfg);
/// for t in 1..=2000u64 {
///     h.insert(t, t % 100);
/// }
/// // Every value appears ~10 times in the last 1000 ticks, so the range
/// // [0, 49] holds ~500 arrivals.
/// let est = h.range_query(2000, 1000, 0, 49);
/// assert!((est - 500.0).abs() < 150.0, "est={est}");
/// ```
#[derive(Debug, Clone)]
pub struct HybridHistogram {
    cfg: HybridConfig,
    cap: usize,
    bin_width: u64,
    /// `levels[i]`: size-`2^i` buckets, **front = newest**.
    levels: Vec<VecDeque<HybridBucket>>,
    /// Arrivals currently held (unexpired buckets).
    total: u64,
    last_ts: u64,
    first_ts: Option<u64>,
    /// End tick of the most recently expired bucket.
    dropped_end: Option<u64>,
    lifetime: u64,
}

impl HybridHistogram {
    /// Create an empty histogram.
    pub fn new(cfg: &HybridConfig) -> Self {
        HybridHistogram {
            cap: cfg.level_capacity(),
            bin_width: cfg.bin_width(),
            cfg: cfg.clone(),
            levels: Vec::new(),
            total: 0,
            last_ts: 0,
            first_ts: None,
            dropped_end: None,
            lifetime: 0,
        }
    }

    /// The configuration this histogram was built with.
    pub fn config(&self) -> &HybridConfig {
        &self.cfg
    }

    /// Record the arrival of `value` at tick `ts` (non-decreasing ticks).
    ///
    /// # Panics
    /// Debug-panics on decreasing ticks or `value >= domain`.
    pub fn insert(&mut self, ts: u64, value: u64) {
        debug_assert!(
            self.first_ts.is_none() || ts >= self.last_ts,
            "timestamps must be non-decreasing: {ts} after {}",
            self.last_ts
        );
        debug_assert!(
            value < self.cfg.domain,
            "value {value} outside domain {}",
            self.cfg.domain
        );
        if self.first_ts.is_none() {
            self.first_ts = Some(ts);
        }
        self.last_ts = ts;
        self.expire(ts);
        let mut bins = vec![0u64; self.cfg.bins];
        bins[(value / self.bin_width) as usize] = 1;
        if self.levels.is_empty() {
            self.levels.push(VecDeque::with_capacity(self.cap + 1));
        }
        self.levels[0].push_front(HybridBucket { end: ts, bins });
        self.total += 1;
        self.lifetime += 1;
        // Cascade merges exactly like the exponential histogram; merging two
        // time buckets adds their value bins element-wise.
        let mut i = 0;
        while self.levels[i].len() > self.cap {
            let older = self.levels[i].pop_back().expect("level over capacity");
            let newer = self.levels[i].pop_back().expect("level over capacity");
            let mut bins = newer.bins;
            for (b, o) in bins.iter_mut().zip(&older.bins) {
                *b += o;
            }
            if self.levels.len() == i + 1 {
                self.levels.push(VecDeque::with_capacity(self.cap + 1));
            }
            self.levels[i + 1].push_front(HybridBucket {
                end: newer.end,
                bins,
            });
            i += 1;
        }
    }

    /// Drop buckets that no longer overlap the window ending at `now`.
    pub fn expire(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.cfg.window);
        if cutoff == 0 {
            return;
        }
        for i in (0..self.levels.len()).rev() {
            let mut survivor = false;
            while let Some(b) = self.levels[i].back() {
                if b.end <= cutoff {
                    let b = self.levels[i].pop_back().expect("non-empty");
                    self.total -= b.total();
                    self.dropped_end = Some(match self.dropped_end {
                        Some(d) => d.max(b.end),
                        None => b.end,
                    });
                } else {
                    survivor = true;
                    break;
                }
            }
            if survivor {
                break;
            }
        }
        while matches!(self.levels.last(), Some(l) if l.is_empty()) {
            self.levels.pop();
        }
    }

    /// Fraction of one bucket's mass that falls in the value range
    /// `[lo, hi]`, prorating partial bin overlaps uniformly.
    fn value_mass(&self, bins: &[u64], lo: u64, hi: u64) -> f64 {
        let mut sum = 0.0;
        let first = (lo / self.bin_width) as usize;
        let last = ((hi / self.bin_width) as usize).min(bins.len() - 1);
        for (i, &count) in bins.iter().enumerate().take(last + 1).skip(first) {
            if count == 0 {
                continue;
            }
            let bin_lo = i as u64 * self.bin_width;
            let bin_hi = (bin_lo + self.bin_width - 1).min(self.cfg.domain - 1);
            let ov_lo = bin_lo.max(lo);
            let ov_hi = bin_hi.min(hi);
            if ov_lo > ov_hi {
                continue;
            }
            let width = (bin_hi - bin_lo + 1) as f64;
            let frac = (ov_hi - ov_lo + 1) as f64 / width;
            sum += count as f64 * frac;
        }
        sum
    }

    /// Estimated number of arrivals with value in `[value_lo, value_hi]` and
    /// tick in `(now − range, now]`.
    ///
    /// Time straddling is handled the exponential-histogram way (half the
    /// oldest overlapping bucket); value straddling is prorated uniformly —
    /// no guarantee, by design.
    pub fn range_query(&self, now: u64, range: u64, value_lo: u64, value_hi: u64) -> f64 {
        let range = range.min(self.cfg.window);
        let (lo, hi) = if value_lo <= value_hi {
            (value_lo, value_hi)
        } else {
            (value_hi, value_lo)
        };
        let value_hi = hi.min(self.cfg.domain - 1);
        let value_lo = lo.min(value_hi);
        let cutoff = now.saturating_sub(range);
        let mut sum = 0.0;
        let mut oldest: Option<(&HybridBucket, Option<u64>)> = None;
        for level in self.levels.iter().rev() {
            let mut in_range = 0usize;
            for b in level {
                if b.end > cutoff {
                    in_range += 1;
                } else {
                    break;
                }
            }
            // Deques are front = newest, so in-range entries are a prefix.
            for b in level.iter().take(in_range) {
                sum += self.value_mass(&b.bins, value_lo, value_hi);
            }
            if oldest.is_none() && in_range > 0 {
                let b = &level[in_range - 1];
                let prev_end = level.get(in_range).map(|p| p.end).or(self.dropped_end);
                oldest = Some((b, prev_end));
            }
        }
        if let Some((b, prev_end)) = oldest {
            let start = prev_end.or(self.first_ts);
            let straddles = b.total() > 1
                && match start {
                    Some(s) => s <= cutoff,
                    None => false,
                };
            if straddles {
                sum -= self.value_mass(&b.bins, value_lo, value_hi) / 2.0;
            }
        }
        sum
    }

    /// Estimated arrivals of any value in `(now − range, now]` — the plain
    /// exponential-histogram count.
    pub fn count(&self, now: u64, range: u64) -> f64 {
        self.range_query(now, range, 0, self.cfg.domain - 1)
    }

    /// Estimated frequency of a single `value` in `(now − range, now]` —
    /// a width-1 range query, where the lack of a value-dimension guarantee
    /// bites hardest.
    pub fn point_query(&self, value: u64, now: u64, range: u64) -> f64 {
        self.range_query(now, range, value, value)
    }

    /// Arrivals currently held (unexpired buckets, no halving).
    pub fn stored(&self) -> u64 {
        self.total
    }

    /// Lifetime arrivals.
    pub fn lifetime_arrivals(&self) -> u64 {
        self.lifetime
    }

    /// Number of time buckets currently held.
    pub fn bucket_count(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Bytes of heap + inline memory currently held. Each bucket carries a
    /// full `bins`-wide counter vector — the structural cost the paper's
    /// comparison highlights.
    pub fn memory_bytes(&self) -> usize {
        let bucket =
            std::mem::size_of::<HybridBucket>() + self.cfg.bins * std::mem::size_of::<u64>();
        std::mem::size_of::<Self>()
            + self.levels.capacity() * std::mem::size_of::<VecDeque<HybridBucket>>()
            + self
                .levels
                .iter()
                .map(|l| l.capacity() * bucket)
                .sum::<usize>()
    }

    /// Append the compact wire encoding to `buf` (sparse bins).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, self.levels.len() as u64);
        for level in &self.levels {
            put_varint(buf, level.len() as u64);
            for b in level {
                put_varint(buf, b.end);
                let nonzero = b.bins.iter().filter(|&&c| c != 0).count();
                put_varint(buf, nonzero as u64);
                for (i, &c) in b.bins.iter().enumerate() {
                    if c != 0 {
                        put_varint(buf, i as u64);
                        put_varint(buf, c);
                    }
                }
            }
        }
        put_varint(buf, self.last_ts);
        put_varint(buf, self.lifetime);
        match self.first_ts {
            Some(t) => {
                put_u8(buf, 1);
                put_varint(buf, t);
            }
            None => put_u8(buf, 0),
        }
        match self.dropped_end {
            Some(t) => {
                put_u8(buf, 1);
                put_varint(buf, t);
            }
            None => put_u8(buf, 0),
        }
    }

    /// Decode a histogram previously produced by [`encode`](Self::encode).
    pub fn decode(cfg: &HybridConfig, input: &mut &[u8]) -> Result<Self, CodecError> {
        let version = get_u8(input, "hybrid version")?;
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let n_levels = get_varint(input, "hybrid levels")? as usize;
        if n_levels > 64 {
            return Err(CodecError::Corrupt {
                context: "hybrid levels",
            });
        }
        let cap = cfg.level_capacity();
        let mut levels = Vec::with_capacity(n_levels);
        let mut total = 0u64;
        for li in 0..n_levels {
            let n = get_varint(input, "hybrid level len")? as usize;
            if n > cap + 1 {
                return Err(CodecError::Corrupt {
                    context: "hybrid level len",
                });
            }
            let mut level = VecDeque::with_capacity(cap + 1);
            for _ in 0..n {
                let end = get_varint(input, "hybrid bucket end")?;
                let nonzero = get_varint(input, "hybrid nonzero")? as usize;
                if nonzero > cfg.bins {
                    return Err(CodecError::Corrupt {
                        context: "hybrid nonzero",
                    });
                }
                let mut bins = vec![0u64; cfg.bins];
                for _ in 0..nonzero {
                    let i = get_varint(input, "hybrid bin idx")? as usize;
                    let c = get_varint(input, "hybrid bin count")?;
                    if i >= cfg.bins || c == 0 {
                        return Err(CodecError::Corrupt {
                            context: "hybrid bin",
                        });
                    }
                    bins[i] = c;
                }
                // Checked sum: corrupted bin counts must error, not overflow.
                let bucket_total = bins
                    .iter()
                    .try_fold(0u64, |acc, &c| acc.checked_add(c))
                    .ok_or(CodecError::Corrupt {
                        context: "hybrid bucket size",
                    })?;
                if bucket_total != 1u64 << li {
                    return Err(CodecError::Corrupt {
                        context: "hybrid bucket size",
                    });
                }
                total = total.checked_add(bucket_total).ok_or(CodecError::Corrupt {
                    context: "hybrid total",
                })?;
                level.push_back(HybridBucket { end, bins });
            }
            levels.push(level);
        }
        let last_ts = get_varint(input, "hybrid last_ts")?;
        let lifetime = get_varint(input, "hybrid lifetime")?;
        let first_ts = if get_u8(input, "hybrid first flag")? == 1 {
            Some(get_varint(input, "hybrid first_ts")?)
        } else {
            None
        };
        let dropped_end = if get_u8(input, "hybrid dropped flag")? == 1 {
            Some(get_varint(input, "hybrid dropped_end")?)
        } else {
            None
        };
        Ok(HybridHistogram {
            cap,
            bin_width: cfg.bin_width(),
            cfg: cfg.clone(),
            levels,
            total,
            last_ts,
            first_ts,
            dropped_end,
            lifetime,
        })
    }

    /// Validate structural invariants (level capacities, timestamp ordering,
    /// power-of-two bucket totals, cached total).
    pub fn validate(&self) -> Result<(), String> {
        let mut sum = 0u64;
        for (i, level) in self.levels.iter().enumerate() {
            if level.len() > self.cap {
                return Err(format!("level {i} over capacity"));
            }
            for w in 0..level.len().saturating_sub(1) {
                if level[w].end < level[w + 1].end {
                    return Err(format!("level {i} out of order at {w}"));
                }
            }
            for b in level {
                if b.total() != 1u64 << i {
                    return Err(format!(
                        "level {i} bucket holds {} arrivals, expected {}",
                        b.total(),
                        1u64 << i
                    ));
                }
                sum += b.total();
            }
        }
        if sum != self.total {
            return Err(format!("cached total {} != bucket sum {sum}", self.total));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(cfg: &HybridConfig, n: u64) -> HybridHistogram {
        let mut h = HybridHistogram::new(cfg);
        for t in 1..=n {
            h.insert(t, t % cfg.domain);
        }
        h
    }

    #[test]
    fn whole_window_count_matches_eh_guarantee() {
        let cfg = HybridConfig::new(0.1, 1_000, 64, 8);
        let h = uniform(&cfg, 5_000);
        let est = h.count(5_000, 1_000);
        assert!((est - 1_000.0).abs() <= 100.0, "est={est}");
        h.validate().unwrap();
    }

    #[test]
    fn wide_value_ranges_are_accurate_on_uniform_data() {
        let cfg = HybridConfig::new(0.05, 2_000, 100, 10);
        let h = uniform(&cfg, 10_000);
        // Values 0..49 are half the uniform mass.
        let est = h.range_query(10_000, 2_000, 0, 49);
        assert!((est - 1_000.0).abs() <= 200.0, "est={est}");
    }

    #[test]
    fn narrow_ranges_have_no_guarantee_on_skewed_data() {
        // All arrivals share one value at the START of each bin's range;
        // querying a different value in the same bin charges the full
        // prorated share — unbounded relative error, the paper's point.
        let cfg = HybridConfig::new(0.1, 1_000, 100, 10);
        let mut h = HybridHistogram::new(&cfg);
        for t in 1..=1_000u64 {
            h.insert(t, 40); // all mass at value 40 (bin 4: values 40..49)
        }
        // True frequency of value 45 is 0, but the bin prorates ~1/10 of
        // ~1000 arrivals onto it.
        let est = h.point_query(45, 1_000, 1_000);
        assert!(est > 50.0, "proration must misattribute mass, est={est}");
        // And the true heavy value is underestimated by the same mechanism.
        let est_heavy = h.point_query(40, 1_000, 1_000);
        assert!(est_heavy < 200.0, "est_heavy={est_heavy}");
    }

    #[test]
    fn expiry_drops_old_mass() {
        let cfg = HybridConfig::new(0.1, 100, 16, 4);
        let mut h = HybridHistogram::new(&cfg);
        for t in 1..=10_000u64 {
            h.insert(t, t % 16);
        }
        let est = h.count(10_000, 100);
        assert!((est - 100.0).abs() <= 15.0, "est={est}");
        // Memory stays bounded: O(log(window)/eps) buckets.
        assert!(h.bucket_count() < 200, "{} buckets", h.bucket_count());
        h.validate().unwrap();
    }

    #[test]
    fn value_bounds_are_clamped() {
        let cfg = HybridConfig::new(0.1, 1_000, 50, 5);
        let h = uniform(&cfg, 2_000);
        // hi beyond the domain clamps; inverted bounds swap.
        let a = h.range_query(2_000, 1_000, 0, 10_000);
        let b = h.count(2_000, 1_000);
        assert_eq!(a, b);
        let c = h.range_query(2_000, 1_000, 30, 10);
        let d = h.range_query(2_000, 1_000, 10, 30);
        assert_eq!(c, d);
    }

    #[test]
    fn codec_round_trips() {
        let cfg = HybridConfig::new(0.15, 3_000, 128, 16);
        let mut h = HybridHistogram::new(&cfg);
        for t in 1..=4_000u64 {
            h.insert(t * 2, (t * 7) % 128);
        }
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut input = buf.as_slice();
        let back = HybridHistogram::decode(&cfg, &mut input).unwrap();
        assert!(input.is_empty());
        back.validate().unwrap();
        for range in [10u64, 100, 1_000, 3_000] {
            for (lo, hi) in [(0u64, 127u64), (0, 63), (32, 95), (5, 5)] {
                assert_eq!(
                    h.range_query(8_000, range, lo, hi),
                    back.range_query(8_000, range, lo, hi),
                    "range={range} [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn codec_rejects_truncation_and_corruption() {
        let cfg = HybridConfig::new(0.2, 500, 32, 4);
        let mut h = HybridHistogram::new(&cfg);
        for t in 1..=600u64 {
            h.insert(t, t % 32);
        }
        let mut buf = Vec::new();
        h.encode(&mut buf);
        for cut in [0usize, 1, 2, buf.len() / 2, buf.len() - 1] {
            let mut input = &buf[..cut];
            assert!(
                HybridHistogram::decode(&cfg, &mut input).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = buf.clone();
        bad[0] = 99; // version
        assert!(matches!(
            HybridHistogram::decode(&cfg, &mut bad.as_slice()),
            Err(CodecError::BadVersion { found: 99 })
        ));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let cfg = HybridConfig::new(0.1, 100, 10, 2);
        let h = HybridHistogram::new(&cfg);
        assert_eq!(h.count(50, 100), 0.0);
        assert_eq!(h.point_query(3, 50, 100), 0.0);
        h.validate().unwrap();
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(40))]

            /// The *time* dimension keeps the exponential-histogram ε
            /// guarantee: whole-domain counts over random streams and
            /// random ranges stay within ε of the truth.
            #[test]
            fn prop_time_dimension_keeps_eh_guarantee(
                gaps in proptest::collection::vec(0u64..5, 100..600),
                values in proptest::collection::vec(0u64..64, 100..600),
                range_frac in 0.05f64..1.0,
            ) {
                let cfg = HybridConfig::new(0.1, 10_000, 64, 8);
                let mut h = HybridHistogram::new(&cfg);
                let mut ticks = Vec::new();
                let mut now = 1u64;
                for (g, v) in gaps.iter().zip(&values) {
                    now += g;
                    h.insert(now, *v);
                    ticks.push(now);
                }
                h.validate().map_err(TestCaseError::fail)?;
                let range = ((now as f64 * range_frac) as u64)
                    .clamp(1, cfg.window);
                let cutoff = now.saturating_sub(range);
                let exact = ticks.iter().filter(|&&t| t > cutoff).count() as f64;
                let est = h.count(now, range);
                prop_assert!(
                    (est - exact).abs() <= 0.1 * exact + 1.0,
                    "est={} exact={} range={}", est, exact, range
                );
            }

            /// Codec round-trips preserve every query answer.
            #[test]
            fn prop_codec_round_trips(
                n in 50usize..400,
                domain_bits in 3u32..8,
            ) {
                let domain = 1u64 << domain_bits;
                let bins = (domain / 2) as usize;
                let cfg = HybridConfig::new(0.15, 2_000, domain, bins);
                let mut h = HybridHistogram::new(&cfg);
                for i in 1..=n as u64 {
                    h.insert(i * 3, (i * 11) % domain);
                }
                let mut buf = Vec::new();
                h.encode(&mut buf);
                let back = HybridHistogram::decode(&cfg, &mut buf.as_slice())
                    .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
                let now = n as u64 * 3;
                for range in [10u64, 500, 2_000] {
                    prop_assert_eq!(
                        h.range_query(now, range, 0, domain / 3),
                        back.range_query(now, range, 0, domain / 3)
                    );
                }
            }

            /// Range queries are monotone in the value range: widening the
            /// range never decreases the estimate.
            #[test]
            fn prop_range_monotone_in_value_bounds(
                n in 50usize..300,
                lo in 0u64..100,
                width_a in 0u64..50,
                width_b in 0u64..50,
            ) {
                let cfg = HybridConfig::new(0.1, 5_000, 128, 16);
                let mut h = HybridHistogram::new(&cfg);
                for i in 1..=n as u64 {
                    h.insert(i, (i * 17) % 128);
                }
                let now = n as u64;
                let narrow = h.range_query(now, 5_000, lo, lo + width_a.min(width_b));
                let wide = h.range_query(now, 5_000, lo, lo + width_a.max(width_b));
                prop_assert!(
                    wide >= narrow - 1e-9,
                    "wide={} < narrow={}", wide, narrow
                );
            }
        }
    }

    #[test]
    fn memory_scales_with_bins() {
        let narrow = uniform(&HybridConfig::new(0.1, 1_000, 1_000, 10), 3_000);
        let wide = uniform(&HybridConfig::new(0.1, 1_000, 1_000, 500), 3_000);
        assert!(
            wide.memory_bytes() > 5 * narrow.memory_bytes(),
            "bins must dominate memory: {} vs {}",
            wide.memory_bytes(),
            narrow.memory_bytes()
        );
    }
}
