//! Sliding-window counters for data-stream processing.
//!
//! This crate implements the three sliding-window "basic counting" synopses that
//! the ECM-sketch paper (Papapetrou, Garofalakis, Deligiannakis, VLDB 2012)
//! builds on, plus an exact baseline:
//!
//! * [`ExponentialHistogram`] — the deterministic synopsis of Datar, Gionis,
//!   Indyk and Motwani (SIAM J. Comput. 2002). `O(log²(N)/ε)` space,
//!   ε-relative-error counts, **order-preserving aggregation** (paper §5.1).
//! * [`DeterministicWave`] — Gibbons & Tirthapura (SPAA 2002). Same space as
//!   exponential histograms, flatter worst-case update cost.
//! * [`RandomizedWave`] — Gibbons & Tirthapura. `O(log(1/δ)/ε²)` space,
//!   (ε,δ)-approximation, **lossless aggregation** (paper §5.2).
//! * [`ExactWindow`] — exact counting in `O(arrivals)` space; the ground-truth
//!   baseline used throughout the test and benchmark suites.
//!
//! All four implement the [`WindowCounter`] trait, which is what the `ecm`
//! crate instantiates its Count-Min counters with.
//!
//! # Clock model
//!
//! Counters are clock-agnostic: a timestamp is a non-decreasing `u64` *tick*.
//! Feeding wall-clock time gives **time-based** windows; feeding the global
//! arrival index gives **count-based** windows (paper §4.2.1). The only place
//! the distinction matters is order-preserving aggregation, which is only
//! sound for time-based windows (paper Fig. 2); see
//! [`exponential_histogram::merge_exponential_histograms`].

pub mod codec;
pub mod decay;
pub mod deterministic_wave;
pub mod eh_slab;
pub mod equi_width;
pub mod error;
pub mod exact;
pub mod exponential_histogram;
pub mod grid;
pub mod hybrid_histogram;
pub mod randomized_wave;
pub mod reorder;
pub mod timestamp;
pub mod traits;

pub use decay::ExpDecayCounter;
pub use deterministic_wave::{DeterministicWave, DwConfig};
pub use eh_slab::{EhCellMut, EhCellRef, EhGrid};
pub use equi_width::{EquiWidthConfig, EquiWidthWindow};
pub use error::{CodecError, MergeError};
pub use exact::{ExactWindow, ExactWindowConfig};
pub use exponential_histogram::{
    merge_exponential_histograms, BucketView, EhConfig, ExponentialHistogram,
};
pub use grid::{CellStorage, VecCells};
pub use hybrid_histogram::{HybridConfig, HybridHistogram};
pub use randomized_wave::{merge_randomized_waves, RandomizedWave, RwConfig, RwGrid};
pub use reorder::{ReorderBuffer, ReorderConfig};
pub use timestamp::{compact_eh_bits, BitPacker, WrapClock};
pub use traits::{MergeableCounter, WindowCounter, WindowGuarantee};
