//! Randomized waves (Gibbons & Tirthapura, SPAA 2002): an (ε, δ)-approximate
//! sliding-window counter whose per-level *sampling* is driven by a shared
//! hash of the arrival identity — which is exactly what makes waves built
//! over disjoint streams **losslessly mergeable** (paper §5.2).
//!
//! Every arrival carries a stream-unique `id`. A seeded hash assigns it a
//! geometric level `ℓ(id)` (`P[ℓ ≥ i] = 2⁻ⁱ`) and the arrival is stored in
//! the queues of levels `0..=ℓ(id)`, each of which retains the most recent
//! `O(log(1/δ)/ε²)` entries. A query picks the finest level still covering
//! its cutoff and scales the in-range entry count by `2ⁱ`.
//!
//! Because the level assignment depends only on `(seed, id)` and never on
//! which site observed the arrival, concatenating the per-level queues of
//! several waves, re-sorting by tick and truncating to capacity reproduces
//! *exactly* the wave that a single site observing the union stream would
//! have built — the lossless aggregation the paper contrasts against the
//! lossy-but-compact exponential-histogram merge.

use std::collections::VecDeque;

use crate::codec::{get_u8, get_varint, put_u8, put_varint};
use crate::error::{CodecError, MergeError};
use crate::grid::{CellStorage, VecCells};
use crate::traits::{MergeableCounter, WindowCounter, WindowGuarantee};

const CODEC_VERSION: u8 = 3;

/// SplitMix64: tiny, high-quality 64-bit mixer used for level sampling.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Construction parameters for a [`RandomizedWave`].
#[derive(Debug, Clone, PartialEq)]
pub struct RwConfig {
    /// Target relative error ε ∈ (0, 1].
    pub epsilon: f64,
    /// Failure probability δ ∈ (0, 1).
    pub delta: f64,
    /// Window length in ticks.
    pub window: u64,
    /// Upper bound on arrivals within one window (sizes the level pyramid).
    pub max_arrivals: u64,
    /// Hash seed. Waves can only be merged when seeds match.
    pub seed: u64,
}

impl RwConfig {
    /// Build a config, validating ranges.
    ///
    /// # Panics
    /// If `epsilon ∉ (0,1]`, `delta ∉ (0,1)`, `window == 0`, or
    /// `max_arrivals == 0`.
    pub fn new(epsilon: f64, delta: f64, window: u64, max_arrivals: u64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0,1], got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        assert!(window > 0, "window must be positive");
        assert!(max_arrivals > 0, "max_arrivals must be positive");
        RwConfig {
            epsilon,
            delta,
            window,
            max_arrivals,
            seed,
        }
    }

    /// Entries retained per level: `⌈(4/ε²)·ln(4/δ)⌉` — the quadratic
    /// `1/ε²` dependence that makes randomized waves an order of magnitude
    /// larger than the deterministic synopses (paper §4.2.2, Table 2).
    pub fn level_capacity(&self) -> usize {
        ((4.0 / (self.epsilon * self.epsilon)) * (4.0 / self.delta).ln()).ceil() as usize
    }

    /// Number of sampling levels: enough that the coarsest level is expected
    /// to retain the whole window within the arrival bound.
    pub fn level_count(&self) -> usize {
        let cap = self.level_capacity() as u64;
        let mut l = 1usize;
        while cap.saturating_mul(1u64 << (l - 1)) < self.max_arrivals && l < 63 {
            l += 1;
        }
        l
    }
}

/// A sampled arrival: its tick and stream-unique identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    pos: u64,
    id: u64,
}

/// A grid of randomized-wave cells that shares the per-occurrence id
/// sampling across the cells of one update.
///
/// The geometric level of an arrival is a pure function of `(seed, id)`,
/// and every cell of one sketch is built from the same configuration — so
/// when a Count-Min update records one burst in `d` row cells, the mix,
/// level draw and level-0 churn decision are computed **once per
/// occurrence** here instead of once per occurrence *per row*
/// (see [`CellStorage::insert_weighted_rows`]). Cell states stay exactly
/// what per-cell insertion would produce.
#[derive(Debug, Clone)]
pub struct RwGrid {
    /// All generic grid plumbing delegates to the one-value-per-cell
    /// layout; only the burst kernel below is wave-specific.
    inner: VecCells<RandomizedWave>,
}

impl crate::grid::sealed::Sealed for RwGrid {}

impl CellStorage<RandomizedWave> for RwGrid {
    fn new_grid(cfg: &RwConfig, n_cells: usize) -> Self {
        RwGrid {
            inner: VecCells::new_grid(cfg, n_cells),
        }
    }

    fn n_cells(&self) -> usize {
        self.inner.n_cells()
    }

    #[inline]
    fn insert(&mut self, idx: usize, ts: u64, id: u64) {
        self.inner.insert(idx, ts, id);
    }

    #[inline]
    fn insert_weighted(&mut self, idx: usize, ts: u64, first_id: u64, n: u64) {
        self.inner.insert_weighted(idx, ts, first_id, n);
    }

    fn insert_weighted_rows(&mut self, idxs: &[usize], ts: u64, first_id: u64, n: u64) {
        if n == 0 {
            return;
        }
        let cells = self.inner.cells_mut();
        let Some((&first_idx, _)) = idxs.split_first() else {
            return;
        };
        // Shared sampling parameters: every cell of a grid is built from
        // one config (constructor and merge paths both guarantee it).
        let (seed, cap, top) = {
            let c = &cells[first_idx];
            (c.cfg.seed, c.cap, c.queues.len() - 1)
        };
        for &i in idxs {
            let c = &mut cells[i];
            debug_assert_eq!(c.cfg.seed, seed, "grid cells must share a config");
            debug_assert!(c.count == 0 || ts >= c.last_ts);
            c.last_ts = ts;
            c.count += n;
        }
        let skip = n.saturating_sub(cap as u64);
        if skip > 0 {
            for &i in idxs {
                cells[i].evicted[0] = true;
            }
        }
        for k in 0..n {
            let id = first_id + k;
            let h = splitmix64(id ^ seed);
            let in_level0 = k >= skip;
            if h & 1 != 0 {
                // Level 0 only; churned straight out during the skip phase.
                if in_level0 {
                    for &i in idxs {
                        cells[i].push_sampled(ts, id, 0, 0);
                    }
                }
                continue;
            }
            let lvl = (h.trailing_zeros() as usize).min(top);
            let lo = usize::from(!in_level0);
            for &i in idxs {
                cells[i].push_sampled(ts, id, lvl, lo);
            }
        }
    }

    #[inline]
    fn query(&self, idx: usize, now: u64, range: u64) -> f64 {
        self.inner.query(idx, now, range)
    }

    fn window_len(&self) -> u64 {
        self.inner.window_len()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn encode_cell(&self, idx: usize, buf: &mut Vec<u8>) {
        self.inner.encode_cell(idx, buf);
    }

    fn decode_grid(cfg: &RwConfig, n_cells: usize, input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(RwGrid {
            inner: VecCells::decode_grid(cfg, n_cells, input)?,
        })
    }

    fn cell_ref(&self, idx: usize) -> Option<&RandomizedWave> {
        self.inner.cell_ref(idx)
    }

    fn materialize(&self, idx: usize) -> RandomizedWave {
        self.inner.materialize(idx)
    }

    fn from_counters(cfg: &RwConfig, counters: Vec<RandomizedWave>) -> Self {
        RwGrid {
            inner: VecCells::from_counters(cfg, counters),
        }
    }
}

/// Push one sampled arrival into levels `1..=lvl` (level 0 already churned
/// it out); shared by the burst kernel's phases.
#[inline]
fn push_upper(
    queues: &mut [VecDeque<Sample>],
    evicted: &mut [bool],
    lvl: usize,
    cap: usize,
    pos: u64,
    id: u64,
) {
    for (q, ev) in queues[1..=lvl].iter_mut().zip(&mut evicted[1..]) {
        q.push_back(Sample { pos, id });
        if q.len() > cap {
            q.pop_front();
            *ev = true;
        }
    }
}

/// Randomized (ε, δ)-approximate sliding-window counter with lossless
/// aggregation. See the [module docs](self).
///
/// ```
/// use sliding_window::{merge_randomized_waves, RandomizedWave, RwConfig};
///
/// let cfg = RwConfig::new(0.2, 0.1, 1 << 20, 10_000, /*seed=*/ 7);
/// let mut site_a = RandomizedWave::new(&cfg);
/// let mut site_b = RandomizedWave::new(&cfg);
/// let mut union = RandomizedWave::new(&cfg);
/// for id in 1..=4000u64 {
///     let ts = id;
///     union.insert_one(ts, id);
///     if id % 2 == 0 { site_a.insert_one(ts, id) } else { site_b.insert_one(ts, id) }
/// }
/// // Same seed + disjoint ids ⇒ the merge is *identical* to the wave that
/// // watched the union stream (paper §5.2).
/// let merged = merge_randomized_waves(&[&site_a, &site_b], &cfg).unwrap();
/// assert_eq!(merged.estimate(4000, 2000), union.estimate(4000, 2000));
/// ```
#[derive(Debug, Clone)]
pub struct RandomizedWave {
    cfg: RwConfig,
    cap: usize,
    /// `queues[i]`: arrivals sampled at level ≥ i, oldest at the front.
    queues: Vec<VecDeque<Sample>>,
    /// Whether level `i` has ever evicted.
    evicted: Vec<bool>,
    /// Lifetime arrivals observed.
    count: u64,
    last_ts: u64,
}

impl RandomizedWave {
    /// Create an empty wave.
    pub fn new(cfg: &RwConfig) -> Self {
        let levels = cfg.level_count();
        RandomizedWave {
            cap: cfg.level_capacity(),
            cfg: cfg.clone(),
            queues: vec![VecDeque::new(); levels],
            evicted: vec![false; levels],
            count: 0,
            last_ts: 0,
        }
    }

    /// The configuration this wave was built with.
    pub fn config(&self) -> &RwConfig {
        &self.cfg
    }

    /// Sampling level of an arrival identity under this wave's seed.
    #[inline]
    fn level_of(&self, id: u64) -> usize {
        let h = splitmix64(id ^ self.cfg.seed);
        (h.trailing_zeros() as usize).min(self.queues.len() - 1)
    }

    /// Store one already-sampled arrival in levels `lo..=lvl` — the
    /// per-cell half of the shared-sampling grid kernel ([`RwGrid`]).
    #[inline]
    pub(crate) fn push_sampled(&mut self, pos: u64, id: u64, lvl: usize, lo: usize) {
        let cap = self.cap;
        for i in lo..=lvl {
            let q = &mut self.queues[i];
            q.push_back(Sample { pos, id });
            if q.len() > cap {
                q.pop_front();
                self.evicted[i] = true;
            }
        }
    }

    /// Record one arrival with stream-unique `id` at tick `ts`.
    pub fn insert_one(&mut self, ts: u64, id: u64) {
        debug_assert!(
            self.count == 0 || ts >= self.last_ts,
            "timestamps must be non-decreasing"
        );
        self.last_ts = ts;
        self.count += 1;
        let lvl = self.level_of(id);
        for i in 0..=lvl {
            self.queues[i].push_back(Sample { pos: ts, id });
            if self.queues[i].len() > self.cap {
                self.queues[i].pop_front();
                self.evicted[i] = true;
            }
        }
    }

    /// Record `n` arrivals at tick `ts` carrying the **consecutive** ids
    /// `first_id .. first_id + n` — a burst of distinct occurrences, not an
    /// increment-by-`n` (see the [`WindowCounter`] trait docs).
    ///
    /// Every id is still hashed individually — the geometric level of an
    /// arrival is a pure function of `(seed, id)` and admits no arithmetic
    /// shortcut — so the state is **bit-identical** to `n` successive
    /// [`insert_one`](Self::insert_one) calls. What the burst path saves is
    /// the level-0 queue churn: of the `n` level-0 entries only the last
    /// `capacity` can survive, so the rest are never pushed.
    pub fn insert_weighted(&mut self, ts: u64, first_id: u64, n: u64) {
        if n == 0 {
            return;
        }
        debug_assert!(
            self.count == 0 || ts >= self.last_ts,
            "timestamps must be non-decreasing"
        );
        self.last_ts = ts;
        self.count += n;
        // Hoist everything loop-invariant out of the occurrence loop: the
        // hash seed, the capacity, the level clamp and the queue slices are
        // all fixed for the burst, so the per-occurrence work reduces to
        // one SplitMix64 mix plus the sample pushes its level demands.
        let cap = self.cap;
        let seed = self.cfg.seed;
        let top = self.queues.len() - 1;
        let queues = &mut self.queues[..];
        let evicted = &mut self.evicted[..];
        // Level 0 stores every arrival: entries a sequential build would
        // push and evict again within this burst are skipped outright, and
        // skipping one is an eviction.
        let skip = n.saturating_sub(cap as u64);
        if skip > 0 {
            evicted[0] = true;
        }
        // Phase 1 — occurrences churned straight out of level 0. Half of
        // all ids sample level 0 only (odd mix), so the unrolled kernel
        // checks the low bit before touching any queue.
        let mut k = 0u64;
        while k + 4 <= skip {
            let h0 = splitmix64((first_id + k) ^ seed);
            let h1 = splitmix64((first_id + k + 1) ^ seed);
            let h2 = splitmix64((first_id + k + 2) ^ seed);
            let h3 = splitmix64((first_id + k + 3) ^ seed);
            for (j, h) in [h0, h1, h2, h3].into_iter().enumerate() {
                if h & 1 == 0 {
                    let lvl = (h.trailing_zeros() as usize).min(top);
                    push_upper(queues, evicted, lvl, cap, ts, first_id + k + j as u64);
                }
            }
            k += 4;
        }
        while k < skip {
            let h = splitmix64((first_id + k) ^ seed);
            if h & 1 == 0 {
                let lvl = (h.trailing_zeros() as usize).min(top);
                push_upper(queues, evicted, lvl, cap, ts, first_id + k);
            }
            k += 1;
        }
        // Phase 2 — the tail that survives in level 0.
        while k < n {
            let id = first_id + k;
            let lvl = (splitmix64(id ^ seed).trailing_zeros() as usize).min(top);
            for i in 0..=lvl {
                let q = &mut queues[i];
                q.push_back(Sample { pos: ts, id });
                if q.len() > cap {
                    q.pop_front();
                    evicted[i] = true;
                }
            }
            k += 1;
        }
    }

    /// Lifetime arrivals observed.
    pub fn lifetime_ones(&self) -> u64 {
        self.count
    }

    /// Tick of the latest arrival (0 if empty).
    pub fn last_tick(&self) -> u64 {
        self.last_ts
    }

    /// Estimated number of arrivals with tick in `(now - range, now]`.
    pub fn estimate(&self, now: u64, range: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let range = range.min(self.cfg.window);
        let cutoff = now.saturating_sub(range);
        for (i, q) in self.queues.iter().enumerate() {
            let covers = !self.evicted[i] || q.front().is_some_and(|s| s.pos <= cutoff);
            if !covers {
                continue;
            }
            let in_range = Self::count_in_range(q, cutoff, now);
            return (in_range as f64) * (1u64 << i) as f64;
        }
        let q = self.queues.last().expect("at least one level");
        let i = self.queues.len() - 1;
        (Self::count_in_range(q, cutoff, now) as f64) * (1u64 << i) as f64
    }

    fn count_in_range(q: &VecDeque<Sample>, cutoff: u64, now: u64) -> usize {
        let (a, b) = q.as_slices();
        let count_slice = |s: &[Sample]| {
            let lo = s.partition_point(|e| e.pos <= cutoff);
            let hi = s.partition_point(|e| e.pos <= now);
            hi - lo
        };
        count_slice(a) + count_slice(b)
    }
}

impl WindowCounter for RandomizedWave {
    type Config = RwConfig;
    /// Grids of wave cells share one id-sampling pass per update row set.
    type GridStorage = RwGrid;

    fn new(cfg: &Self::Config) -> Self {
        RandomizedWave::new(cfg)
    }

    fn insert(&mut self, ts: u64, id: u64) {
        self.insert_one(ts, id);
    }

    fn insert_weighted(&mut self, ts: u64, first_id: u64, n: u64) {
        RandomizedWave::insert_weighted(self, ts, first_id, n);
    }

    fn query(&self, now: u64, range: u64) -> f64 {
        self.estimate(now, range)
    }

    fn window_len(&self) -> u64 {
        self.cfg.window
    }

    fn guarantee(cfg: &Self::Config) -> Option<WindowGuarantee> {
        Some(WindowGuarantee {
            epsilon: cfg.epsilon,
            delta: cfg.delta,
        })
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.queues.capacity() * std::mem::size_of::<VecDeque<Sample>>()
            + self
                .queues
                .iter()
                .map(|q| q.capacity() * std::mem::size_of::<Sample>())
                .sum::<usize>()
            + self.evicted.capacity()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(buf, CODEC_VERSION);
        put_varint(buf, self.queues.len() as u64);
        for (i, q) in self.queues.iter().enumerate() {
            put_u8(buf, u8::from(self.evicted[i]));
            put_varint(buf, q.len() as u64);
            let mut prev_pos = 0u64;
            for &s in q {
                put_varint(buf, s.pos - prev_pos);
                put_varint(buf, s.id);
                prev_pos = s.pos;
            }
        }
        put_varint(buf, self.count);
        put_varint(buf, self.last_ts);
    }

    fn decode(cfg: &Self::Config, input: &mut &[u8]) -> Result<Self, CodecError> {
        let version = get_u8(input, "rw version")?;
        if version != CODEC_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let n_levels = get_varint(input, "rw levels")? as usize;
        if n_levels != cfg.level_count() {
            return Err(CodecError::Corrupt {
                context: "rw levels",
            });
        }
        let cap = cfg.level_capacity();
        let mut queues = Vec::with_capacity(n_levels);
        let mut evicted = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            evicted.push(get_u8(input, "rw evicted")? != 0);
            let n = get_varint(input, "rw queue len")? as usize;
            if n > cap {
                return Err(CodecError::Corrupt {
                    context: "rw queue len",
                });
            }
            let mut q = VecDeque::with_capacity(n);
            let mut prev_pos = 0u64;
            for _ in 0..n {
                let dp = get_varint(input, "rw pos")?;
                let id = get_varint(input, "rw id")?;
                prev_pos = prev_pos
                    .checked_add(dp)
                    .ok_or(CodecError::Corrupt { context: "rw pos" })?;
                q.push_back(Sample { pos: prev_pos, id });
            }
            queues.push(q);
        }
        let count = get_varint(input, "rw count")?;
        let last_ts = get_varint(input, "rw last_ts")?;
        Ok(RandomizedWave {
            cap,
            cfg: cfg.clone(),
            queues,
            evicted,
            count,
            last_ts,
        })
    }
}

/// Lossless aggregation of randomized waves built over disjoint streams with
/// identical configurations (paper §5.2): per level, concatenate, sort by
/// tick, and retain the newest `capacity` samples.
pub fn merge_randomized_waves(
    parts: &[&RandomizedWave],
    out_cfg: &RwConfig,
) -> Result<RandomizedWave, MergeError> {
    if parts.is_empty() {
        return Err(MergeError::Empty);
    }
    for (i, p) in parts.iter().enumerate() {
        if p.cfg != *out_cfg {
            return Err(MergeError::IncompatibleConfig {
                detail: format!(
                    "part {i} config differs from output config \
                     (seed/window/eps/delta/bound must all match)"
                ),
            });
        }
    }
    let mut out = RandomizedWave::new(out_cfg);
    for i in 0..out.queues.len() {
        let mut all: Vec<Sample> = parts
            .iter()
            .flat_map(|p| p.queues[i].iter().copied())
            .collect();
        all.sort_by_key(|s| s.pos);
        let evicted_any = parts.iter().any(|p| p.evicted[i]);
        let overflow = all.len().saturating_sub(out.cap);
        out.evicted[i] = evicted_any || overflow > 0;
        out.queues[i] = all.into_iter().skip(overflow).collect();
    }
    out.count = parts.iter().map(|p| p.count).sum();
    out.last_ts = parts.iter().map(|p| p.last_ts).max().unwrap_or(0);
    Ok(out)
}

impl MergeableCounter for RandomizedWave {
    const LOSSLESS_MERGE: bool = true;

    fn merge(parts: &[&Self], out_cfg: &Self::Config) -> Result<Self, MergeError> {
        merge_randomized_waves(parts, out_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(cfg: &RwConfig, arrivals: &[(u64, u64)]) -> RandomizedWave {
        let mut w = RandomizedWave::new(cfg);
        for &(ts, id) in arrivals {
            w.insert_one(ts, id);
        }
        w
    }

    #[test]
    fn empty_wave_reports_zero() {
        let cfg = RwConfig::new(0.2, 0.1, 100, 1000, 7);
        let w = RandomizedWave::new(&cfg);
        assert_eq!(w.estimate(50, 100), 0.0);
    }

    #[test]
    fn capacity_scales_quadratically_in_inverse_eps() {
        let c1 = RwConfig::new(0.2, 0.1, 1, 1, 0).level_capacity();
        let c2 = RwConfig::new(0.1, 0.1, 1, 1, 0).level_capacity();
        assert!(c2 >= 4 * c1 - 4, "c({c2}) should be ~4x c({c1})");
    }

    #[test]
    fn small_streams_are_exact_at_level_zero() {
        let cfg = RwConfig::new(0.3, 0.1, 1000, 10_000, 42);
        let arrivals: Vec<(u64, u64)> = (1..=40u64).map(|i| (i, i)).collect();
        let w = build(&cfg, &arrivals);
        // Level 0 holds everything (capacity far exceeds 40).
        assert_eq!(w.estimate(40, 1000), 40.0);
        assert_eq!(w.estimate(40, 10), 10.0);
    }

    #[test]
    fn estimate_within_eps_on_long_stream() {
        let eps = 0.15;
        let cfg = RwConfig::new(eps, 0.05, 1 << 20, 200_000, 99);
        let arrivals: Vec<(u64, u64)> = (1..=150_000u64).map(|i| (i, i)).collect();
        let w = build(&cfg, &arrivals);
        let now = 150_000u64;
        for range in [20_000u64, 60_000, 140_000] {
            let est = w.estimate(now, range);
            let exact = range as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel <= eps, "range={range} est={est} rel={rel}");
        }
    }

    #[test]
    fn merge_is_lossless_vs_union_built_wave() {
        // Build one wave over the union stream and two waves over a split of
        // it; the merged pair must be *identical* to the union wave.
        let cfg = RwConfig::new(0.2, 0.1, 1 << 20, 100_000, 1234);
        let mut union = RandomizedWave::new(&cfg);
        let mut a = RandomizedWave::new(&cfg);
        let mut b = RandomizedWave::new(&cfg);
        for i in 1..=50_000u64 {
            let ts = i;
            let id = splitmix64(i); // arbitrary unique ids
            union.insert_one(ts, id);
            if i % 2 == 0 {
                a.insert_one(ts, id);
            } else {
                b.insert_one(ts, id);
            }
        }
        let merged = merge_randomized_waves(&[&a, &b], &cfg).unwrap();
        assert_eq!(merged.count, union.count);
        for i in 0..union.queues.len() {
            assert_eq!(
                merged.queues[i], union.queues[i],
                "level {i} differs after merge"
            );
        }
        for range in [100u64, 5_000, 49_999] {
            assert_eq!(
                merged.estimate(50_000, range),
                union.estimate(50_000, range)
            );
        }
    }

    #[test]
    fn merge_rejects_mismatched_seeds() {
        let a = RandomizedWave::new(&RwConfig::new(0.2, 0.1, 100, 1000, 1));
        let cfg2 = RwConfig::new(0.2, 0.1, 100, 1000, 2);
        assert!(matches!(
            merge_randomized_waves(&[&a], &cfg2),
            Err(MergeError::IncompatibleConfig { .. })
        ));
        assert!(matches!(
            merge_randomized_waves(&[], &cfg2),
            Err(MergeError::Empty)
        ));
    }

    #[test]
    fn codec_round_trips() {
        let cfg = RwConfig::new(0.25, 0.1, 10_000, 20_000, 77);
        let arrivals: Vec<(u64, u64)> = (1..=5_000u64).map(|i| (i, splitmix64(i ^ 5))).collect();
        let w = build(&cfg, &arrivals);
        let mut buf = Vec::new();
        w.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = RandomizedWave::decode(&cfg, &mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.count, w.count);
        for range in [37u64, 800, 9_999] {
            assert_eq!(back.estimate(5_000, range), w.estimate(5_000, range));
        }
        for cut in 0..buf.len().min(200) {
            let mut s = &buf[..cut];
            assert!(RandomizedWave::decode(&cfg, &mut s).is_err());
        }
    }

    #[test]
    fn level_sampling_is_geometric() {
        let cfg = RwConfig::new(0.3, 0.1, 1 << 30, 1 << 20, 2024);
        let w = RandomizedWave::new(&cfg);
        let n = 100_000u64;
        let mut at_least_one = 0u64;
        for id in 0..n {
            if w.level_of(id) >= 1 {
                at_least_one += 1;
            }
        }
        let frac = at_least_one as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "P[lvl>=1]={frac}, want 0.5");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Estimates over a random split merge exactly like the union wave.
        #[test]
        fn prop_merge_lossless(split_mod in 2u64..6, n in 1000u64..20_000) {
            let cfg = RwConfig::new(0.25, 0.1, 1 << 20, 50_000, 555);
            let mut union = RandomizedWave::new(&cfg);
            let mut parts: Vec<RandomizedWave> =
                (0..split_mod).map(|_| RandomizedWave::new(&cfg)).collect();
            for i in 1..=n {
                let id = splitmix64(i.wrapping_mul(0x9e37));
                union.insert_one(i, id);
                parts[(i % split_mod) as usize].insert_one(i, id);
            }
            let refs: Vec<&RandomizedWave> = parts.iter().collect();
            let merged = merge_randomized_waves(&refs, &cfg).unwrap();
            for range in [n / 7 + 1, n / 2 + 1, n] {
                prop_assert_eq!(
                    merged.estimate(n, range),
                    union.estimate(n, range)
                );
            }
        }

        /// (ε,δ) accuracy envelope on uniform streams: allow a small number
        /// of excursions consistent with δ.
        #[test]
        fn prop_estimate_accuracy(seed in 0u64..50) {
            let eps = 0.2;
            let cfg = RwConfig::new(eps, 0.05, 1 << 20, 100_000, seed);
            let n = 60_000u64;
            let mut w = RandomizedWave::new(&cfg);
            for i in 1..=n {
                w.insert_one(i, splitmix64(i ^ (seed << 32)));
            }
            let range = 30_000u64;
            let est = w.estimate(n, range);
            let exact = range as f64;
            // 2ε envelope leaves headroom for the δ tail across cases.
            prop_assert!(
                (est - exact).abs() <= 2.0 * eps * exact,
                "est={} exact={}", est, exact
            );
        }
    }
}
