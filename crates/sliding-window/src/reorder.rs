//! Bounded-delay reordering for out-of-order arrivals.
//!
//! The deterministic synopses in this crate require non-decreasing ticks.
//! Real distributed streams deliver late (e.g. network-delayed) events; a
//! whole line of related work (Xu et al., Cormode–Tirthapura–Xu, Busch &
//! Tirthapura — paper §2) designs synopses tolerating this natively, at a
//! `1/ε²` space premium. [`ReorderBuffer`] is the practical alternative the
//! paper's deterministic structures pair with: buffer arrivals inside a
//! bounded-delay horizon `D`, release them in tick order, and *reject* (and
//! count) anything later than `D` — preserving the inner counter's ε
//! guarantee over the reordered stream.

use crate::traits::WindowCounter;
use std::collections::BTreeMap;

/// Configuration of a [`ReorderBuffer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderConfig {
    /// Maximum tolerated lateness in ticks: an arrival with
    /// `ts < watermark − delay_bound` is dropped (and counted).
    pub delay_bound: u64,
}

impl ReorderConfig {
    /// Build a config; a `delay_bound` of 0 accepts only in-order input.
    pub fn new(delay_bound: u64) -> Self {
        ReorderConfig { delay_bound }
    }
}

/// Wraps any [`WindowCounter`], accepting arrivals up to `delay_bound`
/// ticks late and feeding the inner counter in tick order.
///
/// The watermark is the maximum tick observed; events older than
/// `watermark − delay_bound` are flushed into the inner counter (their
/// order among themselves is fully restored), so queries lag the newest
/// arrivals by at most the delay bound unless [`flush_all`](Self::flush_all)
/// is called first.
///
/// ```
/// use sliding_window::{EhConfig, ExponentialHistogram};
/// use sliding_window::{ReorderBuffer, ReorderConfig};
///
/// let mut buf: ReorderBuffer<ExponentialHistogram> =
///     ReorderBuffer::new(&EhConfig::new(0.1, 1000), ReorderConfig::new(5));
/// assert!(buf.offer(10, 1));
/// assert!(buf.offer(8, 2));   // 2 ticks late: reordered
/// assert!(!buf.offer(2, 3));  // 8 ticks late: dropped
/// buf.flush_all();
/// assert_eq!(buf.inner().stored_ones(), 2);
/// assert_eq!(buf.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer<W: WindowCounter> {
    inner: W,
    cfg: ReorderConfig,
    /// Pending arrivals: tick → arrival ids at that tick.
    pending: BTreeMap<u64, Vec<u64>>,
    pending_count: usize,
    watermark: u64,
    /// Arrivals rejected for exceeding the delay bound.
    dropped: u64,
}

impl<W: WindowCounter> ReorderBuffer<W> {
    /// Wrap a fresh inner counter.
    pub fn new(inner_cfg: &W::Config, cfg: ReorderConfig) -> Self {
        ReorderBuffer {
            inner: W::new(inner_cfg),
            cfg,
            pending: BTreeMap::new(),
            pending_count: 0,
            watermark: 0,
            dropped: 0,
        }
    }

    /// Offer an arrival, possibly out of order. Returns `false` (and counts
    /// the drop) if it is older than the delay horizon.
    pub fn offer(&mut self, ts: u64, id: u64) -> bool {
        if ts + self.cfg.delay_bound < self.watermark {
            self.dropped += 1;
            return false;
        }
        self.watermark = self.watermark.max(ts);
        self.pending.entry(ts).or_default().push(id);
        self.pending_count += 1;
        self.drain_ripe();
        true
    }

    fn drain_ripe(&mut self) {
        let horizon = self.watermark.saturating_sub(self.cfg.delay_bound);
        // Ticks strictly below the horizon can no longer be preceded by any
        // acceptable future arrival.
        while let Some((&ts, _)) = self.pending.first_key_value() {
            if ts >= horizon {
                break;
            }
            let (ts, ids) = self.pending.pop_first().expect("nonempty");
            self.pending_count -= ids.len();
            for id in ids {
                self.inner.insert(ts, id);
            }
        }
    }

    /// Flush every pending arrival into the inner counter (e.g. before a
    /// query that must reflect the newest events, or at stream end).
    pub fn flush_all(&mut self) {
        while let Some((ts, ids)) = self.pending.pop_first() {
            self.pending_count -= ids.len();
            for id in ids {
                self.inner.insert(ts, id);
            }
        }
    }

    /// Arrivals currently buffered.
    pub fn pending(&self) -> usize {
        self.pending_count
    }

    /// Arrivals rejected as too late.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The max tick observed.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Read access to the inner counter (reflects flushed arrivals only).
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// Consume the wrapper, flushing pending arrivals first.
    pub fn into_inner(mut self) -> W {
        self.flush_all();
        self.inner
    }

    /// Query the inner counter. Arrivals still in the buffer are *not*
    /// included; call [`flush_all`](Self::flush_all) first when the query
    /// must see everything.
    pub fn query(&self, now: u64, range: u64) -> f64 {
        self.inner.query(now, range)
    }

    /// Memory of wrapper + inner counter.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
            + self.pending_count * std::mem::size_of::<(u64, u64)>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential_histogram::{EhConfig, ExponentialHistogram};
    use proptest::prelude::*;

    type Reh = ReorderBuffer<ExponentialHistogram>;

    fn make(delay: u64) -> Reh {
        ReorderBuffer::new(&EhConfig::new(0.1, 1_000_000), ReorderConfig::new(delay))
    }

    #[test]
    fn in_order_passthrough() {
        let mut r = make(0);
        for t in 1..=100u64 {
            assert!(r.offer(t, t));
        }
        r.flush_all();
        assert_eq!(r.inner().stored_ones(), 100);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn bounded_lateness_is_restored() {
        let mut r = make(10);
        // Offer a shuffled-within-10 stream: t, t-3, t+1, ...
        let mut offered = Vec::new();
        for base in (1..=500u64).step_by(5) {
            for &dt in &[4u64, 0, 3, 1, 2] {
                let ts = base + dt;
                assert!(r.offer(ts, ts), "ts={ts} rejected");
                offered.push(ts);
            }
        }
        r.flush_all();
        assert_eq!(r.inner().stored_ones(), offered.len() as u64);
        // Count over a sub-range matches the exact count despite disorder.
        offered.sort_unstable();
        let now = *offered.last().unwrap();
        let exact = offered.iter().filter(|&&t| t > now - 100).count() as f64;
        let est = r.query(now, 100);
        assert!(
            (est - exact).abs() <= 0.1 * exact + 1.0,
            "est={est} exact={exact}"
        );
    }

    #[test]
    fn too_late_arrivals_are_dropped_and_counted() {
        let mut r = make(5);
        assert!(r.offer(100, 1));
        assert!(r.offer(96, 2)); // 4 late: accepted
        assert!(!r.offer(90, 3)); // 10 late: dropped
        assert_eq!(r.dropped(), 1);
        r.flush_all();
        assert_eq!(r.inner().stored_ones(), 2);
    }

    #[test]
    fn ripe_events_drain_automatically() {
        let mut r = make(10);
        r.offer(1, 1);
        r.offer(2, 2);
        assert_eq!(r.pending(), 2);
        // Advancing the watermark past 12 makes ticks 1 and 2 ripe.
        r.offer(13, 3);
        assert!(r.pending() <= 1 + 1, "old ticks must have drained");
        assert_eq!(r.inner().stored_ones() + r.pending() as u64, 3);
    }

    #[test]
    fn into_inner_flushes() {
        let mut r = make(50);
        r.offer(10, 1);
        r.offer(5, 2);
        let eh = r.into_inner();
        assert_eq!(eh.stored_ones(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any stream with bounded disorder is counted exactly (no loss, no
        /// duplication), and sub-range estimates stay within the inner ε.
        #[test]
        fn prop_bounded_disorder_preserves_counts(
            jitters in proptest::collection::vec(0u64..8, 50..400),
        ) {
            let mut r = make(8);
            let mut ticks = Vec::new();
            for (i, &j) in jitters.iter().enumerate() {
                // Monotone base with bounded backward jitter.
                let base = (i as u64 + 1) * 2 + 8;
                let ts = base - j;
                prop_assert!(r.offer(ts, i as u64), "ts {} rejected", ts);
                ticks.push(ts);
            }
            r.flush_all();
            prop_assert_eq!(r.inner().stored_ones(), ticks.len() as u64);
            prop_assert_eq!(r.dropped(), 0);
            ticks.sort_unstable();
            let now = *ticks.last().unwrap();
            let range = now / 2 + 1;
            let exact = ticks.iter().filter(|&&t| t > now - range).count() as f64;
            let est = r.query(now, range);
            prop_assert!(
                (est - exact).abs() <= 0.1 * exact + 1.0,
                "est={} exact={}", est, exact
            );
        }
    }
}
