//! Wraparound timestamp counters (paper §4.2.1).
//!
//! Time-based exponential histograms identify every bucket by its arrival
//! tick. Stored naively, that is a full 64-bit word per bucket. The paper
//! observes that ticks only ever need to be compared *within one window*:
//! "to reduce memory, arrival times are stored in wraparound counters of
//! `O(log N)` bits, where `N` is the length of the sliding window".
//!
//! [`WrapClock`] implements that scheme: it maps a monotone `u64` tick into a
//! `b`-bit residue with `2^b > N`, and recovers the original tick — or the
//! age — of any *live* timestamp given the current tick. Recovery is
//! unambiguous precisely because a synopsis never retains a timestamp older
//! than one window plus one bucket, and the modulus is chosen to cover that
//! slack.
//!
//! [`BitPacker`] packs a sequence of such residues at `b` bits apiece, which
//! is how the paper's `O(log N + log log u)` bits-per-bucket memory accounting
//! is realized physically. The synopsis structs in this crate keep plain
//! `u64`s in their working representation for speed; the wire codecs and the
//! `compact_bits` helpers below are where the wraparound representation pays.

use crate::codec::{get_varint, put_varint};
use crate::error::CodecError;

/// A fixed-width wraparound clock for timestamps that live at most
/// `span` ticks in the past.
///
/// ```
/// use sliding_window::timestamp::WrapClock;
///
/// // Timestamps within a window of 1000 ticks, plus slack for the oldest,
/// // partially-expired bucket.
/// let clock = WrapClock::for_window(1000);
/// assert!(clock.modulus() > 2 * 1000);
///
/// let now = 123_456_789_u64;
/// let ts = now - 997; // lives inside the window
/// let wrapped = clock.wrap(ts);
/// assert!(wrapped < clock.modulus());
/// assert_eq!(clock.unwrap(wrapped, now), ts);
/// assert_eq!(clock.age(wrapped, now), 997);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapClock {
    bits: u32,
    mask: u64,
}

impl WrapClock {
    /// Smallest clock whose modulus strictly exceeds `2 * window`.
    ///
    /// The factor two covers the paper's slack: the oldest retained bucket of
    /// an exponential histogram may *end* inside the window while *starting*
    /// up to one full window earlier (its range is what the half-bucket query
    /// rule reasons about), so live ticks span at most `2N`.
    ///
    /// # Panics
    /// Panics if `window == 0` or the doubled span overflows `u64`.
    pub fn for_window(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        let span = window.checked_mul(2).expect("window span overflows u64");
        Self::for_span(span)
    }

    /// Smallest clock whose modulus strictly exceeds `span`.
    ///
    /// Use this directly when the caller guarantees a tighter bound on how
    /// old a live timestamp can be (e.g. `span = window` for structures that
    /// only ever store in-window end ticks).
    ///
    /// # Panics
    /// Panics if `span == u64::MAX` (no strictly larger power of two fits).
    pub fn for_span(span: u64) -> Self {
        assert!(span < u64::MAX, "span too large for a 64-bit clock");
        // Smallest b with 2^b > span.
        let bits = 64 - span.leading_zeros();
        let bits = bits.max(1);
        WrapClock::with_bits(bits)
    }

    /// A clock with an explicit residue width in bits (1..=64).
    ///
    /// # Panics
    /// Panics if `bits` is zero or exceeds 64.
    pub fn with_bits(bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        WrapClock { bits, mask }
    }

    /// Residue width in bits — the paper's `O(log N)`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of distinct residues (`2^bits`); saturates at `u64::MAX` for
    /// the degenerate 64-bit clock.
    pub fn modulus(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            1u64 << self.bits
        }
    }

    /// Wrap a monotone tick into its residue.
    #[inline]
    pub fn wrap(&self, ts: u64) -> u64 {
        ts & self.mask
    }

    /// Recover the latest tick `t <= now` whose residue is `wrapped`.
    ///
    /// Correct whenever the original tick satisfies
    /// `now - ts < modulus()` — i.e. the timestamp is still *live* for the
    /// span this clock was sized for.
    ///
    /// # Panics
    /// Debug-panics if `wrapped` is not a valid residue.
    #[inline]
    pub fn unwrap(&self, wrapped: u64, now: u64) -> u64 {
        debug_assert!(wrapped <= self.mask, "residue {wrapped} out of range");
        now - self.age(wrapped, now)
    }

    /// Age `now - ts` of the live timestamp with residue `wrapped`.
    #[inline]
    pub fn age(&self, wrapped: u64, now: u64) -> u64 {
        (self.wrap(now).wrapping_sub(wrapped)) & self.mask
    }

    /// Whether a live timestamp with residue `wrapped` falls in the query
    /// range `(now - range, now]`.
    #[inline]
    pub fn in_range(&self, wrapped: u64, now: u64, range: u64) -> bool {
        self.age(wrapped, now) < range
    }
}

/// Append-only bit-level packer for fixed-width residues.
///
/// Stores `k` values of `width` bits in `⌈k·width/64⌉` words. This is the
/// physical layout behind the paper's bits-per-bucket memory accounting
/// (§4.2.1): an exponential histogram bucket costs `O(log N + log log u)`
/// bits, not a machine word.
///
/// ```
/// use sliding_window::timestamp::BitPacker;
///
/// let mut packer = BitPacker::new(11); // 11-bit residues: window 1024
/// for v in [0u64, 1, 2047, 1023, 512] {
///     packer.push(v);
/// }
/// assert_eq!(packer.len(), 5);
/// assert_eq!(packer.get(2), 2047);
/// assert_eq!(packer.bits_used(), 55);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPacker {
    width: u32,
    len: usize,
    words: Vec<u64>,
}

impl BitPacker {
    /// A packer for `width`-bit values (1..=64).
    ///
    /// # Panics
    /// Panics if `width` is zero or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        BitPacker {
            width,
            len: 0,
            words: Vec::new(),
        }
    }

    /// Value width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total bits consumed by the stored values.
    pub fn bits_used(&self) -> u64 {
        self.len as u64 * self.width as u64
    }

    /// Append a value.
    ///
    /// # Panics
    /// Debug-panics if `v` does not fit in `width` bits.
    pub fn push(&mut self, v: u64) {
        debug_assert!(
            self.width == 64 || v < (1u64 << self.width),
            "value {v} exceeds {} bits",
            self.width
        );
        let bit = self.len as u64 * self.width as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= v << off;
        let spill = off as u64 + self.width as u64;
        if spill > 64 {
            // Value straddles a word boundary.
            self.words.push(v >> (64 - off));
        }
        self.len += 1;
    }

    /// Read the value at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    pub fn get(&self, idx: usize) -> u64 {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        let bit = idx as u64 * self.width as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let lo = self.words[word] >> off;
        let spill = off as u64 + self.width as u64;
        let v = if spill > 64 {
            lo | (self.words[word + 1] << (64 - off))
        } else {
            lo
        };
        v & mask
    }

    /// Iterate the stored values in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Append the wire encoding (width, length, raw words) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.width as u64);
        put_varint(buf, self.len as u64);
        let words = self.bits_used().div_ceil(64) as usize;
        for &w in &self.words[..words] {
            put_varint(buf, w);
        }
    }

    /// Decode a packer previously produced by [`encode`](BitPacker::encode).
    pub fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let width = get_varint(input, "bitpacker width")? as u32;
        if !(1..=64).contains(&width) {
            return Err(CodecError::Corrupt {
                context: "bitpacker width",
            });
        }
        let len = get_varint(input, "bitpacker len")? as usize;
        let bits = len as u64 * width as u64;
        let n_words = bits.div_ceil(64) as usize;
        // Cap pathological allocations before the words are actually present.
        if n_words > 1 << 28 {
            return Err(CodecError::Corrupt {
                context: "bitpacker len",
            });
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(get_varint(input, "bitpacker word")?);
        }
        Ok(BitPacker { width, len, words })
    }
}

/// Paper-faithful compact size of an exponential histogram, in bits:
/// `buckets` bucket end-ticks at `O(log N)` bits apiece (wraparound clock for
/// `window`) plus a per-bucket size exponent at `log₂ log₂ (max count)` bits
/// (§4.2.1's `log log u(N, S)` term) plus one full-width reference tick.
pub fn compact_eh_bits(buckets: usize, window: u64, max_count: u64) -> u64 {
    let ts_bits = WrapClock::for_window(window).bits() as u64;
    let exp_bits = 64 - max_count.max(2).leading_zeros() as u64; // log2(u)
    let size_bits = 64 - exp_bits.max(2).leading_zeros() as u64; // log2 log2(u)
    buckets as u64 * (ts_bits + size_bits) + 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_window_sizes_modulus() {
        let c = WrapClock::for_window(1000);
        assert!(c.modulus() > 2000);
        assert!(
            c.modulus() <= 4000,
            "modulus should be the next power of two"
        );
        assert_eq!(c.bits(), 11);
    }

    #[test]
    fn for_span_exact_powers() {
        // span = 2^k needs k+1 bits for a strictly larger modulus.
        assert_eq!(WrapClock::for_span(1024).bits(), 11);
        assert_eq!(WrapClock::for_span(1023).bits(), 10);
        assert_eq!(WrapClock::for_span(1).bits(), 1);
    }

    #[test]
    fn wrap_unwrap_round_trips_live_timestamps() {
        let c = WrapClock::for_window(500);
        let now = 10_000_000u64;
        for age in 0..=999 {
            let ts = now - age;
            assert_eq!(c.unwrap(c.wrap(ts), now), ts, "age {age}");
            assert_eq!(c.age(c.wrap(ts), now), age);
        }
    }

    #[test]
    fn unwrap_across_wrap_boundary() {
        let c = WrapClock::with_bits(4); // modulus 16
                                         // now wraps to 1, ts = now-3 wraps to 14: recovery must borrow.
        let now = 17u64;
        let ts = 14u64;
        assert_eq!(c.wrap(now), 1);
        assert_eq!(c.wrap(ts), 14);
        assert_eq!(c.unwrap(14, now), ts);
    }

    #[test]
    fn in_range_is_half_open() {
        let c = WrapClock::for_window(100);
        let now = 1_000u64;
        assert!(c.in_range(c.wrap(now), now, 10)); // age 0 in
        assert!(c.in_range(c.wrap(now - 9), now, 10)); // age 9 in
        assert!(!c.in_range(c.wrap(now - 10), now, 10)); // age 10 out
    }

    #[test]
    fn stale_timestamp_aliases_as_documented() {
        // A timestamp older than the modulus aliases onto a younger one —
        // the contract explicitly requires liveness.
        let c = WrapClock::with_bits(4);
        let now = 100u64;
        let stale = now - 16; // exactly one modulus ago
        assert_eq!(c.unwrap(c.wrap(stale), now), now);
    }

    #[test]
    fn degenerate_full_width_clock() {
        let c = WrapClock::with_bits(64);
        assert_eq!(c.wrap(u64::MAX), u64::MAX);
        assert_eq!(c.unwrap(u64::MAX - 5, u64::MAX), u64::MAX - 5);
    }

    #[test]
    fn bitpacker_round_trips_values() {
        for width in [1u32, 3, 7, 11, 13, 31, 33, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let mut p = BitPacker::new(width);
            let vals: Vec<u64> = (0..200u64)
                .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)) & mask)
                .collect();
            for &v in &vals {
                p.push(v);
            }
            assert_eq!(p.len(), vals.len());
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(p.get(i), v, "width {width} idx {i}");
            }
            let collected: Vec<u64> = p.iter().collect();
            assert_eq!(collected, vals, "width {width}");
        }
    }

    #[test]
    fn bitpacker_word_straddle() {
        // width 60: the second value straddles the first word boundary.
        let mut p = BitPacker::new(60);
        p.push(0x0FFF_FFFF_FFFF_FFFF);
        p.push(0x0ABC_DEF0_1234_5678);
        assert_eq!(p.get(0), 0x0FFF_FFFF_FFFF_FFFF);
        assert_eq!(p.get(1), 0x0ABC_DEF0_1234_5678);
    }

    #[test]
    fn bitpacker_codec_round_trips() {
        let mut p = BitPacker::new(11);
        for v in 0..500u64 {
            p.push(v % 2048);
        }
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut input = buf.as_slice();
        let q = BitPacker::decode(&mut input).expect("decode");
        assert!(input.is_empty(), "decoder must consume exactly its bytes");
        assert_eq!(p, q);
    }

    #[test]
    fn bitpacker_decode_rejects_truncation() {
        let mut p = BitPacker::new(17);
        for v in 0..64u64 {
            p.push(v * 3);
        }
        let mut buf = Vec::new();
        p.encode(&mut buf);
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut input = &buf[..cut];
            assert!(
                BitPacker::decode(&mut input).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bitpacker_decode_rejects_bad_width() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 0); // width 0
        put_varint(&mut buf, 0);
        assert!(BitPacker::decode(&mut buf.as_slice()).is_err());
        let mut buf = Vec::new();
        put_varint(&mut buf, 65); // width 65
        put_varint(&mut buf, 0);
        assert!(BitPacker::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn compact_bits_tracks_window_and_count() {
        // Bigger windows need more timestamp bits; bigger counts more size bits.
        let small = compact_eh_bits(100, 1_000, 1_000);
        let wide = compact_eh_bits(100, 1_000_000, 1_000);
        let tall = compact_eh_bits(100, 1_000, u64::MAX);
        assert!(wide > small);
        assert!(tall > small);
        // 100 buckets over a 1000-tick window: 11 ts bits + small size field.
        assert!(small < 100 * 20 + 64);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Every live timestamp round-trips through any adequately
            /// sized clock.
            #[test]
            fn prop_wrap_unwrap_round_trips(
                window in 1u64..1_000_000,
                now in 0u64..u64::MAX / 2,
                age_frac in 0.0f64..2.0,
            ) {
                let clock = WrapClock::for_window(window);
                // Live ticks span up to 2·window by the slack contract.
                let age = ((age_frac * window as f64) as u64).min(now);
                let ts = now - age;
                prop_assert_eq!(clock.unwrap(clock.wrap(ts), now), ts);
                prop_assert_eq!(clock.age(clock.wrap(ts), now), age);
            }

            /// BitPacker stores and recovers arbitrary width/value mixes.
            #[test]
            fn prop_bitpacker_round_trips(
                width in 1u32..64,
                raw in proptest::collection::vec(proptest::num::u64::ANY, 1..200),
            ) {
                let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
                let vals: Vec<u64> = raw.iter().map(|v| v & mask).collect();
                let mut p = BitPacker::new(width);
                for &v in &vals {
                    p.push(v);
                }
                let got: Vec<u64> = p.iter().collect();
                prop_assert_eq!(&got, &vals);
                // And through the codec.
                let mut buf = Vec::new();
                p.encode(&mut buf);
                let q = BitPacker::decode(&mut buf.as_slice())
                    .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
                prop_assert_eq!(p, q);
            }
        }
    }

    #[test]
    fn wrapclock_matches_eh_query_semantics() {
        // Round-tripping every bucket end of a live histogram through the
        // wraparound clock must not change any query answer.
        use crate::{EhConfig, ExponentialHistogram};
        let cfg = EhConfig::new(0.1, 1_000);
        let mut eh = ExponentialHistogram::new(&cfg);
        let mut now = 0u64;
        for i in 0..20_000u64 {
            now = i * 3 + i / 7;
            eh.insert_one(now);
        }
        let clock = WrapClock::for_window(cfg.window);
        for b in eh.buckets() {
            // Ends of retained buckets are live by construction.
            assert_eq!(clock.unwrap(clock.wrap(b.end), now), b.end);
        }
    }
}
