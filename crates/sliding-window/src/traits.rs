//! The [`WindowCounter`] abstraction that lets the ECM-sketch swap its
//! per-cell sliding-window algorithm (paper §4.2.2).

use crate::error::{CodecError, MergeError};

/// The accuracy contract a window counter's configuration promises: the
/// estimate of any in-window range count is within `epsilon` relative error
/// with probability at least `1 − delta`.
///
/// Deterministic synopses have `delta = 0`; the exact baseline has
/// `epsilon = 0` as well. Counters with no analytical guarantee (the
/// equi-width baseline) return `None` from
/// [`WindowCounter::guarantee`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowGuarantee {
    /// Relative error bound.
    pub epsilon: f64,
    /// Failure probability of the bound.
    pub delta: f64,
}

impl WindowGuarantee {
    /// An exact counter: zero error, zero failure probability.
    pub const EXACT: WindowGuarantee = WindowGuarantee {
        epsilon: 0.0,
        delta: 0.0,
    };

    /// A deterministic ε-bound (`delta = 0`).
    pub fn deterministic(epsilon: f64) -> Self {
        WindowGuarantee {
            epsilon,
            delta: 0.0,
        }
    }
}

/// A sliding-window "basic counting" synopsis: it summarizes a stream of
/// timestamped unit arrivals (*1-bits*) and answers *"how many arrivals fell
/// in the last `r` ticks?"* with bounded relative error.
///
/// # Contract
///
/// * Timestamps passed to [`insert`](WindowCounter::insert) must be
///   non-decreasing; implementations may debug-assert this.
/// * `id` is a stream-unique identifier of the arrival (the ECM-sketch uses
///   the global arrival sequence number). Deterministic synopses ignore it;
///   the [`RandomizedWave`](crate::RandomizedWave) hashes it to pick sample
///   levels, which is what makes independently built waves losslessly
///   mergeable.
/// * [`query`](WindowCounter::query) never sees a range larger than
///   [`window_len`](WindowCounter::window_len); callers clamp.
///
/// # Grid storage
///
/// Sketches hold `width × depth` counters as a *grid*. The
/// [`GridStorage`](WindowCounter::GridStorage) associated type selects the
/// memory layout of that grid: the generic per-cell
/// [`VecCells`](crate::grid::VecCells) for dynamically-sized counters, or a
/// dense specialization like the exponential histogram's contiguous
/// [`EhGrid`](crate::eh_slab::EhGrid) slab. Whatever the layout, every
/// grid operation must be bit-identical to the same operation on
/// standalone counter values — see [`crate::grid::CellStorage`].
///
/// # Arrival-id semantics of weighted inserts
///
/// [`insert_weighted`](WindowCounter::insert_weighted) records a *burst*:
/// `n` distinct arrivals that share one tick. It is **not** an
/// increment-by-`n` of a single arrival — each of the `n` occurrences keeps
/// its own stream-unique identity, namely the consecutive ids
/// `first_id, first_id + 1, …, first_id + n − 1`. Callers that assign ids
/// from a sequence counter must therefore advance the counter by `n`, not
/// by 1. This is what lets the randomized wave sample a burst exactly as if
/// the occurrences had arrived one at a time (and keeps independently built
/// waves losslessly mergeable); deterministic synopses ignore the ids and
/// only count the `n` bits.
pub trait WindowCounter: Clone + std::fmt::Debug + Send + Sync {
    /// Constructor parameters (window length, error targets, seeds, ...).
    /// `Send + Sync` (like the counter and its grid) so whole sketches can
    /// move onto worker threads — the serving layer shards its store per
    /// thread — and so a *published* snapshot of a sketch can be queried
    /// from many reader threads at once (the left-right read path in
    /// `ecm::publish`). Counters are plain data with no interior
    /// mutability, so the bound costs implementations nothing.
    type Config: Clone + std::fmt::Debug + Send + Sync;

    /// Memory layout used when this counter fills a grid of sketch cells
    /// (see the [trait docs](WindowCounter#grid-storage)).
    type GridStorage: crate::grid::CellStorage<Self> + Send + Sync;

    /// Create an empty counter.
    fn new(cfg: &Self::Config) -> Self;

    /// Record one arrival with stream-unique `id` at tick `ts`.
    fn insert(&mut self, ts: u64, id: u64);

    /// Record `n` arrivals, all at tick `ts`, carrying the consecutive
    /// stream-unique ids `first_id .. first_id + n` (see the trait docs for
    /// the arrival-id semantics). Equivalent to — and required to produce
    /// exactly the same state as — `n` calls of
    /// [`insert`](WindowCounter::insert) with incrementing ids, but
    /// implementations override it with sub-linear fast paths (the
    /// exponential histogram carries all `n` bits up its level cascade in
    /// `O(levels · capacity)` regardless of `n`).
    fn insert_weighted(&mut self, ts: u64, first_id: u64, n: u64) {
        for k in 0..n {
            self.insert(ts, first_id + k);
        }
    }

    /// Estimated number of arrivals with tick in `(now - range, now]`.
    ///
    /// Fractional results are meaningful: the exponential histogram counts
    /// half of its oldest, partially overlapping bucket.
    fn query(&self, now: u64, range: u64) -> f64;

    /// Estimated number of arrivals in the whole window ending at `now`.
    fn query_window(&self, now: u64) -> f64 {
        self.query(now, self.window_len())
    }

    /// Configured window length in ticks.
    fn window_len(&self) -> u64;

    /// The (ε, δ) accuracy contract `cfg` promises for in-window range
    /// estimates, or `None` for synopses without an analytical guarantee
    /// (the equi-width baseline). Consumed by the `ecm` crate's query layer
    /// to annotate every estimate with its end-to-end error bound.
    fn guarantee(cfg: &Self::Config) -> Option<WindowGuarantee>;

    /// Bytes of heap + inline memory currently held.
    fn memory_bytes(&self) -> usize;

    /// Append the compact wire encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode a counter previously produced by [`encode`](WindowCounter::encode),
    /// advancing `input` past the consumed bytes. `cfg` must match the encoder's.
    fn decode(cfg: &Self::Config, input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Size of the wire encoding, in bytes.
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Synopses supporting the order-preserving aggregation operator `⊕`
/// (paper §5): combining per-site counters into one counter for the
/// interleaved union stream.
pub trait MergeableCounter: WindowCounter {
    /// Whether `⊕`-merging preserves the inputs' accuracy exactly.
    ///
    /// `true` for randomized waves (lossless composition, paper §5.2), the
    /// exact baseline and the grid-aligned equi-width baseline; `false`
    /// for the deterministic synopses, whose every merge level inflates the
    /// window error by Theorem 4. Consumers (e.g. the `ecm` query layer's
    /// distributed backend) use this to decide whether merged estimates
    /// need their guarantees widened.
    const LOSSLESS_MERGE: bool;

    /// Merge `parts` into a fresh counter configured by `out_cfg`.
    ///
    /// For exponential histograms the output error parameter ε′ may differ
    /// from the inputs' ε — Theorem 4 bounds the combined error by
    /// `ε + ε′ + ε·ε′`. For randomized waves the merge is lossless and
    /// `out_cfg` must equal the inputs' config (same seed).
    fn merge(parts: &[&Self], out_cfg: &Self::Config) -> Result<Self, MergeError>;
}
