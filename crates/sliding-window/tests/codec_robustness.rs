//! Codec robustness: every synopsis round-trips its own encoding, and
//! **no** truncation or byte corruption of a valid encoding may panic,
//! loop, or allocate unboundedly — `decode` must return, with `CodecError`
//! on anything malformed. The LEB128 reader's overflow guards
//! (`codec::get_varint`) are what the mutated inputs ultimately land on.
//!
//! A truncated or mutated buffer *may* decode successfully when the damage
//! produces another well-formed encoding (delta codes make some prefixes
//! self-similar); in that case the decoded value must still be usable:
//! re-encoding and querying must not panic either.

use proptest::test_runner::TestRng;
use sliding_window::traits::WindowCounter;
use sliding_window::{
    DeterministicWave, DwConfig, EhConfig, EquiWidthConfig, EquiWidthWindow, ExactWindow,
    ExactWindowConfig, ExponentialHistogram, HybridConfig, HybridHistogram, RandomizedWave,
    RwConfig,
};

/// Drive one counter type through build → encode → fuzz.
fn fuzz_window_counter<W: WindowCounter>(cfg: &W::Config, label: &str, rng: &mut TestRng) {
    // A bursty, gappy trace: ties, runs, and window-spanning jumps.
    let mut w = W::new(cfg);
    let mut ts = 1u64;
    let mut id = 1u64;
    for _ in 0..400 {
        ts += rng.bounded(50);
        let burst = 1 + rng.bounded(12);
        w.insert_weighted(ts, id, burst);
        id += burst;
    }
    let mut buf = Vec::new();
    w.encode(&mut buf);

    // Round trip must be exact.
    let mut slice = buf.as_slice();
    let back = W::decode(cfg, &mut slice).unwrap_or_else(|e| panic!("{label}: {e:?}"));
    assert!(slice.is_empty(), "{label}: trailing bytes after decode");
    let mut re = Vec::new();
    back.encode(&mut re);
    assert_eq!(re, buf, "{label}: round trip must be byte-identical");

    // Every truncation: must return (Ok or CodecError), never panic.
    for cut in 0..buf.len() {
        let mut s = &buf[..cut];
        if let Ok(partial) = W::decode(cfg, &mut s) {
            // A shorter well-formed structure is acceptable; it must be
            // fully usable.
            let _ = partial.query(ts, 10);
            let mut scratch = Vec::new();
            partial.encode(&mut scratch);
        }
    }

    // Random byte corruptions, single and clustered.
    for _ in 0..300 {
        let mut bad = buf.clone();
        let flips = 1 + rng.bounded(4) as usize;
        for _ in 0..flips {
            let pos = rng.bounded(bad.len() as u64) as usize;
            bad[pos] = rng.next_u64() as u8;
        }
        let mut s = bad.as_slice();
        if let Ok(mutant) = W::decode(cfg, &mut s) {
            let _ = mutant.query(ts, 10);
            let _ = mutant.memory_bytes();
        }
    }

    // Pure garbage of assorted lengths.
    for _ in 0..100 {
        let len = rng.bounded(96) as usize;
        let junk: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut s = junk.as_slice();
        let _ = W::decode(cfg, &mut s);
    }
}

#[test]
fn exponential_histogram_codec_survives_fuzz() {
    let mut rng = TestRng::for_test("codec_robustness::eh", 1);
    fuzz_window_counter::<ExponentialHistogram>(&EhConfig::new(0.1, 5_000), "eh", &mut rng);
}

#[test]
fn deterministic_wave_codec_survives_fuzz() {
    let mut rng = TestRng::for_test("codec_robustness::dw", 2);
    fuzz_window_counter::<DeterministicWave>(&DwConfig::new(0.1, 5_000, 20_000), "dw", &mut rng);
}

#[test]
fn randomized_wave_codec_survives_fuzz() {
    let mut rng = TestRng::for_test("codec_robustness::rw", 3);
    fuzz_window_counter::<RandomizedWave>(
        &RwConfig::new(0.3, 0.2, 5_000, 20_000, 7),
        "rw",
        &mut rng,
    );
}

#[test]
fn exact_window_codec_survives_fuzz() {
    let mut rng = TestRng::for_test("codec_robustness::exact", 4);
    fuzz_window_counter::<ExactWindow>(&ExactWindowConfig::new(5_000), "exact", &mut rng);
}

#[test]
fn equi_width_codec_survives_fuzz() {
    let mut rng = TestRng::for_test("codec_robustness::ew", 5);
    fuzz_window_counter::<EquiWidthWindow>(&EquiWidthConfig::new(5_000, 25), "ew", &mut rng);
}

/// The hybrid histogram is not a `WindowCounter` (two-dimensional queries);
/// fuzz its codec through its own API.
#[test]
fn hybrid_histogram_codec_survives_fuzz() {
    let mut rng = TestRng::for_test("codec_robustness::hybrid", 6);
    let cfg = HybridConfig::new(0.15, 5_000, 128, 16);
    let mut h = HybridHistogram::new(&cfg);
    let mut ts = 1u64;
    for _ in 0..600 {
        ts += rng.bounded(20);
        h.insert(ts, rng.bounded(128));
    }
    let mut buf = Vec::new();
    h.encode(&mut buf);

    let back = HybridHistogram::decode(&cfg, &mut buf.as_slice()).expect("round trip");
    let mut re = Vec::new();
    back.encode(&mut re);
    assert_eq!(re, buf, "hybrid: round trip must be byte-identical");

    for cut in 0..buf.len() {
        let mut s = &buf[..cut];
        if let Ok(partial) = HybridHistogram::decode(&cfg, &mut s) {
            let _ = partial.range_query(ts, 100, 0, 127);
        }
    }
    for _ in 0..300 {
        let mut bad = buf.clone();
        let flips = 1 + rng.bounded(4) as usize;
        for _ in 0..flips {
            let pos = rng.bounded(bad.len() as u64) as usize;
            bad[pos] = rng.next_u64() as u8;
        }
        if let Ok(mutant) = HybridHistogram::decode(&cfg, &mut bad.as_slice()) {
            let _ = mutant.range_query(ts, 100, 0, 127);
        }
    }
    for _ in 0..100 {
        let len = rng.bounded(96) as usize;
        let junk: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = HybridHistogram::decode(&cfg, &mut junk.as_slice());
    }
}

/// The varint reader itself: arbitrary byte soup must terminate with a
/// value or a typed error — the overflow guard is the backstop every
/// synopsis decoder leans on.
#[test]
fn varint_reader_survives_arbitrary_bytes() {
    use sliding_window::codec::get_varint;
    let mut rng = TestRng::for_test("codec_robustness::varint", 7);
    for _ in 0..2_000 {
        let len = rng.bounded(24) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut s = bytes.as_slice();
        // Drain the whole buffer through the reader.
        while !s.is_empty() && get_varint(&mut s, "fuzz").is_ok() {}
    }
}
