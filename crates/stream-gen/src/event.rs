//! The stream event record shared by generators, oracles and the
//! distributed simulation.

/// One stream arrival: a key observed at a site at a tick.
///
/// Ticks are seconds in the synthetic traces (the paper's windows are
/// expressed in seconds, e.g. 10⁶ s ≈ 11.5 days).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Arrival tick (non-decreasing within a trace).
    pub ts: u64,
    /// Stream item (URL / MAC address surrogate).
    pub key: u64,
    /// Observing site (server / access point).
    pub site: u32,
}

/// Split a trace into per-site streams, preserving arrival order.
/// `n_sites` must cover every `site` index in `events`.
pub fn partition_by_site(events: &[Event], n_sites: u32) -> Vec<Vec<Event>> {
    let mut parts: Vec<Vec<Event>> = vec![Vec::new(); n_sites as usize];
    for &e in events {
        assert!(e.site < n_sites, "site {} out of range", e.site);
        parts[e.site as usize].push(e);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_preserves_order_and_counts() {
        let events: Vec<Event> = (0..100u64)
            .map(|i| Event {
                ts: i,
                key: i % 5,
                site: (i % 3) as u32,
            })
            .collect();
        let parts = partition_by_site(&events, 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        for part in &parts {
            for w in part.windows(2) {
                assert!(w[0].ts <= w[1].ts);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_unknown_site() {
        let e = [Event {
            ts: 0,
            key: 0,
            site: 5,
        }];
        let _ = partition_by_site(&e, 3);
    }
}
