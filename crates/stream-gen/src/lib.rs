//! Synthetic workload generators and exact ground-truth oracles for the
//! ECM-sketch evaluation.
//!
//! The paper evaluates on two real traces we cannot redistribute:
//! WorldCup'98 HTTP requests (1.089 B requests, 33 servers, URL keys) and
//! the CRAWDAD Dartmouth SNMP trace (134 M records, 535 APs, MAC keys).
//! The generators here are the documented substitutes (DESIGN.md §4): they
//! preserve the properties every measured quantity depends on — Zipfian key
//! skew, diurnally modulated arrival density, site partitioning — while
//! being deterministic from a seed and scalable to laptop sizes.

pub mod event;
pub mod oracle;
pub mod rng;
pub mod scenarios;
pub mod trace_io;
pub mod workloads;
pub mod zipf;

pub use event::{partition_by_site, Event};
pub use oracle::WindowOracle;
pub use rng::SeededRng;
pub use scenarios::{
    bounded_delay_shuffle, inject_flash_crowd, inject_poll_bursts, FlashCrowd, PollBursts,
};
pub use trace_io::{read_binary, read_csv, write_binary, write_csv, TraceError};
pub use workloads::{snmp_like, uniform_sites, worldcup_like, WorkloadSpec};
pub use zipf::ZipfSampler;
