//! Exact sliding-window frequency oracle: the ground truth against which
//! every sketch estimate in the test and benchmark suites is scored.
//!
//! Events are indexed per key as sorted tick vectors, so any
//! `(key, now, range)` frequency is two binary searches, and norms,
//! self-joins, inner products and exact heavy hitters are per-key scans.

use crate::event::Event;
use std::collections::HashMap;

/// Exact windowed-frequency index over a finished trace.
#[derive(Debug, Clone, Default)]
pub struct WindowOracle {
    /// Per-key sorted arrival ticks.
    per_key: HashMap<u64, Vec<u64>>,
    /// All arrival ticks, sorted.
    all_ts: Vec<u64>,
}

impl WindowOracle {
    /// Build the index from a trace (any order; ticks are sorted per key).
    pub fn from_events(events: &[Event]) -> Self {
        let mut per_key: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut all_ts = Vec::with_capacity(events.len());
        for e in events {
            per_key.entry(e.key).or_default().push(e.ts);
            all_ts.push(e.ts);
        }
        for v in per_key.values_mut() {
            v.sort_unstable();
        }
        all_ts.sort_unstable();
        WindowOracle { per_key, all_ts }
    }

    /// Number of distinct keys observed.
    pub fn distinct_keys(&self) -> usize {
        self.per_key.len()
    }

    /// Iterate the distinct keys.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.per_key.keys().copied()
    }

    /// Exact frequency of `key` among arrivals in `(now − range, now]`.
    pub fn frequency(&self, key: u64, now: u64, range: u64) -> u64 {
        self.per_key
            .get(&key)
            .map_or(0, |ts| count_in(ts, now, range))
    }

    /// Exact total arrivals (‖a_r‖₁) in the query range.
    pub fn total(&self, now: u64, range: u64) -> u64 {
        count_in(&self.all_ts, now, range)
    }

    /// Exact self-join size (F₂) of the query range.
    pub fn self_join(&self, now: u64, range: u64) -> f64 {
        self.per_key
            .values()
            .map(|ts| {
                let f = count_in(ts, now, range) as f64;
                f * f
            })
            .sum()
    }

    /// Exact inner product with another stream over the query range.
    pub fn inner_product(&self, other: &WindowOracle, now: u64, range: u64) -> f64 {
        // Iterate the smaller key set.
        let (small, big) = if self.per_key.len() <= other.per_key.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .per_key
            .iter()
            .map(|(&k, ts)| {
                let fa = count_in(ts, now, range) as f64;
                if fa == 0.0 {
                    0.0
                } else {
                    fa * big.frequency(k, now, range) as f64
                }
            })
            .sum()
    }

    /// Exact number of arrivals with key in `[key_lo, key_hi]` and tick in
    /// `(now − range, now]` — ground truth for sliding-window range queries.
    pub fn range_sum(&self, key_lo: u64, key_hi: u64, now: u64, range: u64) -> u64 {
        self.per_key
            .iter()
            .filter(|&(&k, _)| k >= key_lo && k <= key_hi)
            .map(|(_, ts)| count_in(ts, now, range))
            .sum()
    }

    /// Exact heavy hitters: keys with in-range frequency ≥ `threshold`,
    /// sorted by key.
    pub fn heavy_hitters(&self, threshold: u64, now: u64, range: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .per_key
            .iter()
            .filter_map(|(&k, ts)| {
                let f = count_in(ts, now, range);
                (f >= threshold && threshold > 0).then_some((k, f))
            })
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Exact rank quantile: smallest key whose cumulative in-range frequency
    /// (by increasing key) reaches `rank`; `None` beyond the total.
    pub fn quantile_by_rank(&self, rank: u64, now: u64, range: u64) -> Option<u64> {
        if rank == 0 || rank > self.total(now, range) {
            return None;
        }
        let mut keys: Vec<u64> = self.per_key.keys().copied().collect();
        keys.sort_unstable();
        let mut acc = 0u64;
        for k in keys {
            acc += self.frequency(k, now, range);
            if acc >= rank {
                return Some(k);
            }
        }
        None
    }

    /// Tick of the last arrival in the trace (0 if empty).
    pub fn last_tick(&self) -> u64 {
        self.all_ts.last().copied().unwrap_or(0)
    }
}

/// Count ticks in `(now − range, now]` within a sorted vector.
fn count_in(sorted: &[u64], now: u64, range: u64) -> u64 {
    let cutoff = now.saturating_sub(range);
    let lo = sorted.partition_point(|&t| t <= cutoff);
    let hi = sorted.partition_point(|&t| t <= now);
    (hi - lo) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, key: u64) -> Event {
        Event { ts, key, site: 0 }
    }

    #[test]
    fn frequencies_and_totals() {
        let events = vec![ev(1, 5), ev(2, 5), ev(3, 9), ev(10, 5), ev(11, 9)];
        let o = WindowOracle::from_events(&events);
        assert_eq!(o.frequency(5, 11, 100), 3);
        assert_eq!(o.frequency(5, 11, 2), 1); // only tick 10
        assert_eq!(o.frequency(9, 11, 1), 1);
        assert_eq!(o.frequency(404, 11, 100), 0);
        assert_eq!(o.total(11, 100), 5);
        assert_eq!(o.total(11, 1), 1);
        assert_eq!(o.distinct_keys(), 2);
        assert_eq!(o.last_tick(), 11);
    }

    #[test]
    fn self_join_and_inner_product() {
        let a = WindowOracle::from_events(&[ev(1, 1), ev(2, 1), ev(3, 2)]);
        // F2 = 2² + 1² = 5.
        assert_eq!(a.self_join(3, 100), 5.0);
        let b = WindowOracle::from_events(&[ev(1, 1), ev(2, 3)]);
        // a⊙b = f_a(1)·f_b(1) = 2·1.
        assert_eq!(a.inner_product(&b, 3, 100), 2.0);
        assert_eq!(b.inner_product(&a, 3, 100), 2.0);
    }

    #[test]
    fn windowing_excludes_cutoff_tick() {
        let o = WindowOracle::from_events(&[ev(5, 1), ev(6, 1)]);
        // Range 1 at now=6 covers (5, 6]: only the tick-6 arrival.
        assert_eq!(o.frequency(1, 6, 1), 1);
    }

    #[test]
    fn heavy_hitters_and_quantiles() {
        let mut events = Vec::new();
        for t in 1..=30u64 {
            events.push(ev(t, t % 3));
        }
        let o = WindowOracle::from_events(&events);
        let hh = o.heavy_hitters(10, 30, 30);
        assert_eq!(hh, vec![(0, 10), (1, 10), (2, 10)]);
        assert!(o.heavy_hitters(11, 30, 30).is_empty());
        assert!(o.heavy_hitters(0, 30, 30).is_empty());
        assert_eq!(o.quantile_by_rank(1, 30, 30), Some(0));
        assert_eq!(o.quantile_by_rank(15, 30, 30), Some(1));
        assert_eq!(o.quantile_by_rank(30, 30, 30), Some(2));
        assert_eq!(o.quantile_by_rank(31, 30, 30), None);
    }

    #[test]
    fn range_sums_match_frequency_sums() {
        let mut events = Vec::new();
        for t in 1..=100u64 {
            events.push(ev(t, t % 10));
        }
        let o = WindowOracle::from_events(&events);
        assert_eq!(o.range_sum(0, 9, 100, 100), 100);
        assert_eq!(o.range_sum(3, 5, 100, 100), 30);
        assert_eq!(o.range_sum(7, 3, 100, 100), 0); // inverted = empty
        assert_eq!(o.range_sum(42, 99, 100, 100), 0);
        // Windowing applies inside the range.
        assert_eq!(o.range_sum(0, 9, 100, 10), 10);
    }

    #[test]
    fn matches_brute_force_on_generated_trace() {
        let events = crate::workloads::worldcup_like(3_000, 2);
        let o = WindowOracle::from_events(&events);
        let now = events.last().unwrap().ts;
        for range in [1000u64, 100_000, 10_000_000] {
            let cutoff = now.saturating_sub(range);
            let brute_total = events.iter().filter(|e| e.ts > cutoff).count() as u64;
            assert_eq!(o.total(now, range), brute_total);
            let key = events[0].key;
            let brute_f = events
                .iter()
                .filter(|e| e.key == key && e.ts > cutoff)
                .count() as u64;
            assert_eq!(o.frequency(key, now, range), brute_f);
        }
    }
}
