//! Self-contained deterministic PRNG for workload generation.
//!
//! The generators only need reproducible, statistically reasonable draws —
//! not cryptographic strength — so a SplitMix64 core keeps the crate free of
//! external dependencies. Identical seeds give identical streams on every
//! platform and release.

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generator (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Create a generator whose output stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// If `p ∉ [0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.gen_f64() < p
    }

    /// Uniform draw from an integer range.
    ///
    /// # Panics
    /// If the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.draw(self)
    }

    /// Uniform draw in `[0, span)` by multiply-shift reduction.
    fn bounded(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample from an empty range");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Integer ranges [`SeededRng::gen_range`] can draw from.
pub trait SampleRange {
    /// The element type produced.
    type Out;
    /// Draw one uniform element.
    fn draw(self, rng: &mut SeededRng) -> Self::Out;
}

impl SampleRange for Range<u64> {
    type Out = u64;
    fn draw(self, rng: &mut SeededRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Out = u64;
    fn draw(self, rng: &mut SeededRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded(span + 1)
    }
}

impl SampleRange for Range<u32> {
    type Out = u32;
    fn draw(self, rng: &mut SeededRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange for Range<usize> {
    type Out = usize;
    fn draw(self, rng: &mut SeededRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(7);
        let mut b = SeededRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_cover_the_unit_interval() {
        let mut rng = SeededRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        let mut lo = 0u32;
        for _ in 0..n {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            if u < 0.5 {
                lo += 1;
            }
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        let frac = f64::from(lo) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut rng = SeededRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 must appear");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..=6);
            assert!(v == 5 || v == 6);
            let w = rng.gen_range(3u32..7);
            assert!((3..7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SeededRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "hits={hits}");
        assert!(!SeededRng::seed_from_u64(1).gen_bool(0.0));
        assert!(SeededRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let _ = SeededRng::seed_from_u64(1).gen_range(5u64..5);
    }
}
