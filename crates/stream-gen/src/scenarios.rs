//! Adversarial and event-driven scenario generators.
//!
//! The base workloads ([`crate::workloads`]) reproduce the *steady-state*
//! shape of the paper's two traces. The monitoring applications the paper
//! motivates (§1: DDoS detection, misbehaving wireless nodes) are about
//! *departures* from steady state, and the asynchronous-streams line of its
//! related work (§2: Xu et al., Cormode et al., Busch & Tirthapura) is about
//! arrival-order perturbations. This module generates both:
//!
//! * [`inject_flash_crowd`] — superimposes a DDoS-style burst toward one
//!   target key over a window of the trace, the event the intro's
//!   distributed-trigger example must detect.
//! * [`inject_poll_bursts`] — periodic synchronized bursts (SNMP poll
//!   rounds): every site emits a probe burst at fixed intervals.
//! * [`bounded_delay_shuffle`] — perturbs delivery order within a bounded
//!   delay horizon, producing the out-of-order arrival patterns that the
//!   `sliding-window` crate's `ReorderBuffer` exists to repair.

use crate::event::Event;
use crate::rng::SeededRng;

/// Parameters of a flash-crowd / DDoS injection.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// The attacked key (target IP / URL).
    pub target_key: u64,
    /// First tick of the burst.
    pub start: u64,
    /// Burst duration in ticks.
    pub duration: u64,
    /// Total extra events aimed at the target during the burst.
    pub volume: usize,
    /// Number of participating (attacking) sites; the burst is spread
    /// uniformly over sites `0..sources`.
    pub sources: u32,
    /// RNG seed for the burst's arrival jitter.
    pub seed: u64,
}

/// Superimpose a flash crowd on a timestamp-ordered base trace.
///
/// Returns a new, still timestamp-ordered trace containing all base events
/// plus `crowd.volume` extra arrivals of `crowd.target_key` spread uniformly
/// over `[start, start + duration)` and over the attacking sites.
///
/// ```
/// use stream_gen::{uniform_sites, inject_flash_crowd, FlashCrowd};
///
/// let base = uniform_sites(10_000, 8, 42);
/// let attacked = inject_flash_crowd(&base, &FlashCrowd {
///     target_key: 99,
///     start: 1_000_000,
///     duration: 50_000,
///     volume: 5_000,
///     sources: 8,
///     seed: 1,
/// });
/// assert_eq!(attacked.len(), 15_000);
/// ```
///
/// # Panics
/// If `duration == 0`, `volume == 0`, or `sources == 0`.
pub fn inject_flash_crowd(base: &[Event], crowd: &FlashCrowd) -> Vec<Event> {
    assert!(crowd.duration > 0, "burst duration must be positive");
    assert!(crowd.volume > 0, "burst volume must be positive");
    assert!(crowd.sources > 0, "need at least one source");
    let mut rng = SeededRng::seed_from_u64(crowd.seed);
    let mut burst: Vec<Event> = (0..crowd.volume)
        .map(|i| {
            // Stratified jitter keeps the burst dense across its whole span.
            let u = (i as f64 + rng.gen_f64()) / crowd.volume as f64;
            Event {
                ts: crowd.start + (u * crowd.duration as f64) as u64,
                key: crowd.target_key,
                site: rng.gen_range(0..crowd.sources),
            }
        })
        .collect();
    burst.sort_unstable_by_key(|e| e.ts);
    merge_sorted(base, &burst)
}

/// Parameters of periodic synchronized poll bursts.
#[derive(Debug, Clone)]
pub struct PollBursts {
    /// Tick interval between poll rounds.
    pub interval: u64,
    /// Events per site per round.
    pub per_site: usize,
    /// Number of sites, `0..sites` each emit every round.
    pub sites: u32,
    /// Key emitted by site `s` in round `r` is `key_base + s`.
    pub key_base: u64,
    /// First round's tick.
    pub start: u64,
    /// Last tick (rounds stop at or before this).
    pub end: u64,
}

/// Generate an SNMP-style poll trace: every `interval` ticks, every site
/// emits `per_site` arrivals of its own key within a short window at the
/// round boundary.
///
/// # Panics
/// If `interval == 0`, `per_site == 0`, `sites == 0`, or `end < start`.
pub fn inject_poll_bursts(base: &[Event], polls: &PollBursts) -> Vec<Event> {
    assert!(polls.interval > 0, "interval must be positive");
    assert!(polls.per_site > 0, "per_site must be positive");
    assert!(polls.sites > 0, "need at least one site");
    assert!(polls.end >= polls.start, "end must not precede start");
    let mut burst = Vec::new();
    let mut round_start = polls.start;
    while round_start <= polls.end {
        for s in 0..polls.sites {
            for i in 0..polls.per_site {
                burst.push(Event {
                    // Probes land in the first `per_site` ticks of the round.
                    ts: round_start + i as u64,
                    key: polls.key_base + u64::from(s),
                    site: s,
                });
            }
        }
        round_start += polls.interval;
    }
    burst.sort_unstable_by_key(|e| e.ts);
    merge_sorted(base, &burst)
}

/// Perturb delivery order within a bounded delay horizon: each event's
/// *delivery* is delayed by a uniform random amount in `[0, max_delay]`
/// ticks, and the trace is re-sorted by delivery time while keeping the
/// original timestamps. The result is the classic bounded-disorder stream:
/// an event may be delivered after events up to `max_delay` ticks younger.
///
/// Returns `(delivery_order, max_observed_inversion)` where the inversion is
/// the largest `ts_prev − ts_next` over consecutive delivered events —
/// by construction at most `max_delay`.
pub fn bounded_delay_shuffle(base: &[Event], max_delay: u64, seed: u64) -> (Vec<Event>, u64) {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut tagged: Vec<(u64, usize, Event)> = base
        .iter()
        .enumerate()
        .map(|(i, &e)| (e.ts + rng.gen_range(0..=max_delay), i, e))
        .collect();
    // Stable by (delivery, original index): equal delivery ticks preserve
    // stream order, as a real network with FIFO links would.
    tagged.sort_unstable_by_key(|&(d, i, _)| (d, i));
    let delivered: Vec<Event> = tagged.into_iter().map(|(_, _, e)| e).collect();
    let mut max_inv = 0u64;
    for w in delivered.windows(2) {
        max_inv = max_inv.max(w[0].ts.saturating_sub(w[1].ts));
    }
    (delivered, max_inv)
}

/// Merge two timestamp-ordered traces into one.
fn merge_sorted(a: &[Event], b: &[Event]) -> Vec<Event> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].ts <= b[j].ts {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::uniform_sites;

    fn is_sorted(events: &[Event]) -> bool {
        events.windows(2).all(|w| w[0].ts <= w[1].ts)
    }

    #[test]
    fn flash_crowd_adds_volume_in_its_window() {
        let base = uniform_sites(20_000, 4, 9);
        let crowd = FlashCrowd {
            target_key: 12345,
            start: 1_000_000,
            duration: 100_000,
            volume: 8_000,
            sources: 4,
            seed: 3,
        };
        let attacked = inject_flash_crowd(&base, &crowd);
        assert_eq!(attacked.len(), 28_000);
        assert!(is_sorted(&attacked));
        let in_window = attacked
            .iter()
            .filter(|e| {
                e.key == 12345 && e.ts >= crowd.start && e.ts < crowd.start + crowd.duration
            })
            .count();
        assert!(in_window >= 8_000, "burst mass missing: {in_window}");
        // Outside the burst window, the target key is (almost) absent.
        let outside = attacked
            .iter()
            .filter(|e| {
                e.key == 12345 && (e.ts < crowd.start || e.ts >= crowd.start + crowd.duration)
            })
            .count();
        assert!(outside < 50, "too much target mass outside: {outside}");
    }

    #[test]
    fn flash_crowd_spreads_over_sources() {
        let crowd = FlashCrowd {
            target_key: 1,
            start: 10,
            duration: 1_000,
            volume: 4_000,
            sources: 4,
            seed: 8,
        };
        let attacked = inject_flash_crowd(&[], &crowd);
        let mut per_site = [0u32; 4];
        for e in &attacked {
            per_site[e.site as usize] += 1;
        }
        for (s, &c) in per_site.iter().enumerate() {
            assert!(
                (500..=1_500).contains(&c),
                "site {s} got {c} of 4000 events"
            );
        }
    }

    #[test]
    fn poll_bursts_hit_every_site_every_round() {
        let polls = PollBursts {
            interval: 300,
            per_site: 5,
            sites: 3,
            key_base: 1_000,
            start: 0,
            end: 899, // rounds at 0, 300, 600
        };
        let trace = inject_poll_bursts(&[], &polls);
        assert_eq!(trace.len(), 3 * 3 * 5);
        assert!(is_sorted(&trace));
        for s in 0..3u32 {
            let count = trace.iter().filter(|e| e.site == s).count();
            assert_eq!(count, 15, "site {s}");
            assert!(trace
                .iter()
                .filter(|e| e.site == s)
                .all(|e| e.key == 1_000 + u64::from(s)));
        }
    }

    #[test]
    fn poll_bursts_merge_with_base() {
        let base = uniform_sites(5_000, 3, 4);
        let polls = PollBursts {
            interval: 100_000,
            per_site: 10,
            sites: 3,
            key_base: 10_000_000,
            start: 0,
            end: 2_600_000,
        };
        let merged = inject_poll_bursts(&base, &polls);
        assert_eq!(merged.len(), 5_000 + 27 * 30);
        assert!(is_sorted(&merged));
    }

    #[test]
    fn shuffle_bounds_inversions() {
        let base = uniform_sites(10_000, 2, 6);
        for max_delay in [0u64, 10, 1_000, 50_000] {
            let (delivered, max_inv) = bounded_delay_shuffle(&base, max_delay, 77);
            assert_eq!(delivered.len(), base.len());
            assert!(
                max_inv <= max_delay,
                "inversion {max_inv} exceeds bound {max_delay}"
            );
            // Same multiset of events.
            let mut a = base.clone();
            let mut b = delivered.clone();
            a.sort_unstable_by_key(|e| (e.ts, e.key, e.site));
            b.sort_unstable_by_key(|e| (e.ts, e.key, e.site));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn shuffle_with_zero_delay_is_identity() {
        let base = uniform_sites(2_000, 2, 1);
        let (delivered, max_inv) = bounded_delay_shuffle(&base, 0, 5);
        assert_eq!(delivered, base);
        assert_eq!(max_inv, 0);
    }

    #[test]
    fn shuffle_actually_disorders() {
        let base = uniform_sites(5_000, 2, 2);
        let (delivered, max_inv) = bounded_delay_shuffle(&base, 100_000, 2);
        assert!(max_inv > 0, "a large horizon must produce inversions");
        assert_ne!(delivered, base);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Flash-crowd injection always yields a sorted trace containing
            /// the base multiset plus exactly the burst volume.
            #[test]
            fn prop_flash_crowd_preserves_base(
                n_base in 100usize..2_000,
                volume in 1usize..2_000,
                start in 0u64..2_000_000,
                duration in 1u64..500_000,
                seed in proptest::num::u64::ANY,
            ) {
                let base = uniform_sites(n_base, 3, 7);
                let crowd = FlashCrowd {
                    target_key: 424242,
                    start,
                    duration,
                    volume,
                    sources: 3,
                    seed,
                };
                let merged = inject_flash_crowd(&base, &crowd);
                prop_assert_eq!(merged.len(), n_base + volume);
                prop_assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
                let injected = merged.iter().filter(|e| e.key == 424242).count();
                prop_assert!(injected >= volume, "{} < {}", injected, volume);
                // Base events survive untouched.
                let survivors = merged.iter().filter(|e| e.key != 424242).count();
                let base_other = base.iter().filter(|e| e.key != 424242).count();
                prop_assert_eq!(survivors, base_other);
            }

            /// The bounded-delay shuffle never exceeds its inversion bound
            /// and never loses or duplicates an event.
            #[test]
            fn prop_shuffle_respects_its_bound(
                n in 50usize..1_500,
                max_delay in 0u64..200_000,
                seed in proptest::num::u64::ANY,
            ) {
                let base = uniform_sites(n, 2, 11);
                let (delivered, max_inv) = bounded_delay_shuffle(&base, max_delay, seed);
                prop_assert!(max_inv <= max_delay);
                prop_assert_eq!(delivered.len(), base.len());
                let mut a = base.clone();
                let mut b = delivered.clone();
                a.sort_unstable_by_key(|e| (e.ts, e.key, e.site));
                b.sort_unstable_by_key(|e| (e.ts, e.key, e.site));
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn merge_sorted_handles_empty_and_interleaved() {
        let a = [
            Event {
                ts: 1,
                key: 0,
                site: 0,
            },
            Event {
                ts: 5,
                key: 0,
                site: 0,
            },
        ];
        let b = [Event {
            ts: 3,
            key: 1,
            site: 1,
        }];
        let m = merge_sorted(&a, &b);
        assert_eq!(m.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(merge_sorted(&[], &b), b.to_vec());
        assert_eq!(merge_sorted(&a, &[]), a.to_vec());
    }
}
