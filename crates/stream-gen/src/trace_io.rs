//! Trace import/export.
//!
//! The evaluation ships with synthetic substitutes for the paper's two
//! proprietary traces (DESIGN.md §4). Users who hold the real WorldCup'98 or
//! CRAWDAD data — or any other timestamped key stream — can run every
//! experiment on it by converting to the simple formats here:
//!
//! * **CSV** (`ts,key,site` per line, `#` comments allowed) — easy to
//!   produce with standard tools from the original datasets' readers.
//! * **Binary** — the workspace varint codec, ~3–6 bytes/event on sorted
//!   traces; the format the bench binaries cache regenerated workloads in.
//!
//! Both formats round-trip exactly and validate on load (timestamps must be
//! non-decreasing, since every synopsis in the workspace requires it).

use crate::event::Event;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised while loading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line or record could not be parsed.
    Parse {
        /// 1-based line (CSV) or record (binary) number.
        record: usize,
        /// What went wrong.
        detail: String,
    },
    /// Timestamps went backwards.
    OutOfOrder {
        /// 1-based record number of the offending event.
        record: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { record, detail } => {
                write!(f, "trace parse error at record {record}: {detail}")
            }
            TraceError::OutOfOrder { record } => {
                write!(f, "trace record {record} has a decreasing timestamp")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Write a trace as CSV (`ts,key,site`), one event per line.
pub fn write_csv<W: Write>(events: &[Event], out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# ts,key,site")?;
    for e in events {
        writeln!(w, "{},{},{}", e.ts, e.key, e.site)?;
    }
    w.flush()
}

/// Read a CSV trace. Blank lines and `#` comments are skipped; timestamps
/// must be non-decreasing.
pub fn read_csv<R: Read>(input: R) -> Result<Vec<Event>, TraceError> {
    let mut out = Vec::new();
    let mut last_ts = 0u64;
    for (i, line) in BufReader::new(input).lines().enumerate() {
        let record = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |name: &str| -> Result<u64, TraceError> {
            fields
                .next()
                .ok_or_else(|| TraceError::Parse {
                    record,
                    detail: format!("missing field `{name}`"),
                })?
                .trim()
                .parse()
                .map_err(|e| TraceError::Parse {
                    record,
                    detail: format!("bad `{name}`: {e}"),
                })
        };
        let ts = next("ts")?;
        let key = next("key")?;
        let site = next("site")?;
        if site > u64::from(u32::MAX) {
            return Err(TraceError::Parse {
                record,
                detail: format!("site {site} exceeds u32"),
            });
        }
        if !out.is_empty() && ts < last_ts {
            return Err(TraceError::OutOfOrder { record });
        }
        last_ts = ts;
        out.push(Event {
            ts,
            key,
            site: site as u32,
        });
    }
    Ok(out)
}

const BINARY_MAGIC: &[u8; 4] = b"ECMT";
const BINARY_VERSION: u8 = 1;

/// Write a trace in the compact binary format (delta-varint timestamps).
pub fn write_binary<W: Write>(events: &[Event], out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    let mut buf = Vec::with_capacity(events.len() * 6 + 16);
    buf.extend_from_slice(BINARY_MAGIC);
    buf.push(BINARY_VERSION);
    put_varint(&mut buf, events.len() as u64);
    let mut prev_ts = 0u64;
    for e in events {
        put_varint(&mut buf, e.ts - prev_ts);
        put_varint(&mut buf, e.key);
        put_varint(&mut buf, u64::from(e.site));
        prev_ts = e.ts;
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Read a binary trace written by [`write_binary`].
pub fn read_binary<R: Read>(mut input: R) -> Result<Vec<Event>, TraceError> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    let mut slice = bytes.as_slice();
    let mut header = [0u8; 5];
    if slice.len() < 5 {
        return Err(TraceError::Parse {
            record: 0,
            detail: "missing header".into(),
        });
    }
    header.copy_from_slice(&slice[..5]);
    slice = &slice[5..];
    if &header[..4] != BINARY_MAGIC {
        return Err(TraceError::Parse {
            record: 0,
            detail: "bad magic".into(),
        });
    }
    if header[4] != BINARY_VERSION {
        return Err(TraceError::Parse {
            record: 0,
            detail: format!("unsupported version {}", header[4]),
        });
    }
    let n = get_varint(&mut slice, 0)? as usize;
    if n > (1 << 33) {
        return Err(TraceError::Parse {
            record: 0,
            detail: format!("implausible event count {n}"),
        });
    }
    let mut out = Vec::with_capacity(n.min(1 << 24));
    let mut ts = 0u64;
    for record in 1..=n {
        let dt = get_varint(&mut slice, record)?;
        ts = ts.checked_add(dt).ok_or_else(|| TraceError::Parse {
            record,
            detail: "timestamp overflow".into(),
        })?;
        let key = get_varint(&mut slice, record)?;
        let site = get_varint(&mut slice, record)?;
        if site > u64::from(u32::MAX) {
            return Err(TraceError::Parse {
                record,
                detail: format!("site {site} exceeds u32"),
            });
        }
        out.push(Event {
            ts,
            key,
            site: site as u32,
        });
    }
    if !slice.is_empty() {
        return Err(TraceError::Parse {
            record: n,
            detail: format!("{} trailing bytes", slice.len()),
        });
    }
    Ok(out)
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(input: &mut &[u8], record: usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or_else(|| TraceError::Parse {
            record,
            detail: "truncated varint".into(),
        })?;
        *input = rest;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::Parse {
                record,
                detail: "overlong varint".into(),
            });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::worldcup_like;

    #[test]
    fn csv_round_trips() {
        let events = worldcup_like(2_000, 7);
        let mut buf = Vec::new();
        write_csv(&events, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let text = "# header\n\n10,5,0\n # another\n11,6,1\n";
        let events = read_csv(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1],
            Event {
                ts: 11,
                key: 6,
                site: 1
            }
        );
    }

    #[test]
    fn csv_rejects_garbage_and_disorder() {
        assert!(matches!(
            read_csv("abc,1,2\n".as_bytes()),
            Err(TraceError::Parse { record: 1, .. })
        ));
        assert!(matches!(
            read_csv("5,1\n".as_bytes()),
            Err(TraceError::Parse { .. })
        ));
        assert!(matches!(
            read_csv("5,1,0\n4,1,0\n".as_bytes()),
            Err(TraceError::OutOfOrder { record: 2 })
        ));
        assert!(matches!(
            read_csv("5,1,5000000000\n".as_bytes()),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn binary_round_trips_compactly() {
        let events = worldcup_like(5_000, 11);
        let mut bin = Vec::new();
        write_binary(&events, &mut bin).unwrap();
        let back = read_binary(bin.as_slice()).unwrap();
        assert_eq!(back, events);
        // Sorted traces delta-encode well: well under 8 bytes/event.
        assert!(
            bin.len() < events.len() * 8,
            "{} bytes for {} events",
            bin.len(),
            events.len()
        );
        // And far smaller than the CSV.
        let mut csv = Vec::new();
        write_csv(&events, &mut csv).unwrap();
        assert!(bin.len() * 2 < csv.len());
    }

    #[test]
    fn binary_rejects_corruption() {
        let events = worldcup_like(100, 3);
        let mut bin = Vec::new();
        write_binary(&events, &mut bin).unwrap();
        // Bad magic.
        let mut bad = bin.clone();
        bad[0] = b'X';
        assert!(read_binary(bad.as_slice()).is_err());
        // Bad version.
        let mut bad = bin.clone();
        bad[4] = 9;
        assert!(read_binary(bad.as_slice()).is_err());
        // Truncation.
        for cut in [3usize, 5, bin.len() / 2, bin.len() - 1] {
            assert!(read_binary(&bin[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut bad = bin.clone();
        bad.push(0);
        assert!(read_binary(bad.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut bin = Vec::new();
        write_binary(&[], &mut bin).unwrap();
        assert!(read_binary(bin.as_slice()).unwrap().is_empty());
        let mut csv = Vec::new();
        write_csv(&[], &mut csv).unwrap();
        assert!(read_csv(csv.as_slice()).unwrap().is_empty());
    }
}
