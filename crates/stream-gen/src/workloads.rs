//! Synthetic trace generators standing in for the paper's WorldCup'98 and
//! CRAWDAD SNMP datasets (substitution rationale in DESIGN.md §4).

use crate::event::Event;
use crate::rng::SeededRng;
use crate::zipf::ZipfSampler;

/// Parameters of a synthetic trace.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of events to generate.
    pub events: usize,
    /// Key-domain size (distinct URLs / MACs).
    pub keys: u64,
    /// Number of observing sites.
    pub sites: u32,
    /// Zipf skew of key popularity.
    pub key_skew: f64,
    /// Zipf skew of site load (0 = uniform load).
    pub site_skew: f64,
    /// Trace duration in ticks (seconds).
    pub duration: u64,
    /// Diurnal modulation amplitude in [0, 1): 0 = homogeneous arrivals.
    pub diurnal_amplitude: f64,
    /// Number of day cycles across the duration.
    pub day_cycles: u32,
    /// RNG seed; identical specs + seeds give identical traces.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the trace: events in non-decreasing tick order, keys
    /// Zipf-distributed, sites drawn per event, arrival density modulated
    /// by a sinusoidal day/night cycle.
    pub fn generate(&self) -> Vec<Event> {
        assert!(self.events > 0, "need at least one event");
        assert!(
            (0.0..1.0).contains(&self.diurnal_amplitude),
            "amplitude must be in [0,1)"
        );
        assert!(self.duration > 0, "duration must be positive");
        let mut rng = SeededRng::seed_from_u64(self.seed);
        let keys = ZipfSampler::new(self.keys, self.key_skew);
        let sites = ZipfSampler::new(u64::from(self.sites), self.site_skew);

        let n = self.events;
        let k = f64::from(self.day_cycles.max(1));
        let a = self.diurnal_amplitude;
        let two_pi_k = std::f64::consts::TAU * k;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // Jittered stratified phases keep ticks sorted without a sort.
            let u = (i as f64 + rng.gen_f64()) / n as f64;
            // Monotone warp with derivative 1 − a·cos(2πk·u): arrival
            // density peaks once per simulated day.
            let warped = u - a * (two_pi_k * u).sin() / two_pi_k;
            let ts = 1 + (warped * (self.duration - 1) as f64) as u64;
            out.push(Event {
                ts,
                key: keys.sample(&mut rng),
                site: sites.sample(&mut rng) as u32,
            });
        }
        out
    }
}

/// WorldCup'98-like trace: 33 servers, Zipf(0.85) URL popularity, mildly
/// skewed server load, ~30 simulated days of diurnal traffic. The paper's
/// sliding window of 10⁶ s (11.5 days) covers roughly half the trace.
pub fn worldcup_like(events: usize, seed: u64) -> Vec<Event> {
    WorkloadSpec {
        events,
        keys: 50_000,
        sites: 33,
        key_skew: 0.85,
        site_skew: 0.4,
        duration: 2_600_000, // ~30 days in seconds
        diurnal_amplitude: 0.6,
        day_cycles: 30,
        seed,
    }
    .generate()
}

/// SNMP-like trace: 535 access points, Zipf(1.1) client-MAC popularity,
/// stronger site skew (a few busy APs), ~30 simulated days.
pub fn snmp_like(events: usize, seed: u64) -> Vec<Event> {
    WorkloadSpec {
        events,
        keys: 15_000,
        sites: 535,
        key_skew: 1.1,
        site_skew: 0.7,
        duration: 2_600_000,
        diurnal_amplitude: 0.5,
        day_cycles: 30,
        seed,
    }
    .generate()
}

/// Uniform trace across `sites` sites (the artificial network of paper
/// Fig. 6: requests divided uniformly across 1..256 nodes).
pub fn uniform_sites(events: usize, sites: u32, seed: u64) -> Vec<Event> {
    WorkloadSpec {
        events,
        keys: 50_000,
        sites,
        key_skew: 0.85,
        site_skew: 0.0,
        duration: 2_600_000,
        diurnal_amplitude: 0.6,
        day_cycles: 30,
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let a = worldcup_like(5_000, 42);
        let b = worldcup_like(5_000, 42);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].ts <= w[1].ts, "ticks must be non-decreasing");
        }
        let c = worldcup_like(5_000, 43);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn keys_are_zipf_skewed() {
        let events = worldcup_like(50_000, 7);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for e in &events {
            *counts.entry(e.key).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top key should far exceed the median key.
        assert!(freqs[0] > 50, "top key too light: {}", freqs[0]);
        let distinct = freqs.len();
        assert!(distinct > 5_000, "too few distinct keys: {distinct}");
    }

    #[test]
    fn sites_cover_the_configured_range() {
        let events = snmp_like(30_000, 3);
        let max_site = events.iter().map(|e| e.site).max().unwrap();
        assert!(max_site < 535);
        let distinct: std::collections::HashSet<u32> = events.iter().map(|e| e.site).collect();
        assert!(distinct.len() > 300, "site coverage {}", distinct.len());
    }

    #[test]
    fn uniform_sites_balance_load() {
        let events = uniform_sites(64_000, 8, 5);
        let mut per_site = [0u32; 8];
        for e in &events {
            per_site[e.site as usize] += 1;
        }
        for (s, &c) in per_site.iter().enumerate() {
            let dev = (f64::from(c) - 8_000.0).abs() / 8_000.0;
            assert!(dev < 0.1, "site {s} holds {c} events");
        }
    }

    #[test]
    fn diurnal_modulation_shapes_density() {
        let spec = WorkloadSpec {
            events: 100_000,
            keys: 100,
            sites: 1,
            key_skew: 0.0,
            site_skew: 0.0,
            duration: 86_400, // one day
            diurnal_amplitude: 0.8,
            day_cycles: 1,
            seed: 11,
        };
        let events = spec.generate();
        // Peak density lands mid-day (warp derivative max at u = 0.5);
        // quarter-day bins must differ strongly.
        let mut bins = [0u32; 4];
        for e in &events {
            bins[((e.ts - 1) * 4 / 86_400).min(3) as usize] += 1;
        }
        let max = *bins.iter().max().unwrap() as f64;
        let min = *bins.iter().min().unwrap() as f64;
        assert!(max / min > 2.0, "bins={bins:?}");
    }

    #[test]
    fn ticks_start_at_one_and_fit_duration() {
        let events = worldcup_like(2_000, 1);
        assert!(events.first().unwrap().ts >= 1);
        assert!(events.last().unwrap().ts <= 2_600_000);
    }
}
