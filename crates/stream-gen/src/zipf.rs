//! Zipf-distributed sampling over a finite key domain via a precomputed
//! cumulative table and binary search — exact, O(log n) per draw, no extra
//! dependencies.

use crate::rng::SeededRng;

/// Samples keys `0..n` with `P(k) ∝ 1/(k+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities; `cdf[k]` = P(key ≤ k).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` keys with skew `s ≥ 0` (`s = 0` is uniform).
    ///
    /// # Panics
    /// If `n == 0` or `s < 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(s >= 0.0, "skew must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        ZipfSampler { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Probability mass of key `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        let k = k as usize;
        assert!(k < self.cdf.len(), "key outside domain");
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SeededRng) -> u64 {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_zero() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = ZipfSampler::new(1000, 1.1);
        let total: f64 = (0..1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..1000 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15, "pmf must decay");
        }
    }

    #[test]
    fn empirical_head_matches_pmf() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SeededRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = vec![0u64; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in 0..5u64 {
            let emp = counts[k as usize] as f64 / n as f64;
            let want = z.pmf(k);
            assert!(
                (emp - want).abs() < 0.15 * want + 0.002,
                "key {k}: emp {emp} vs pmf {want}"
            );
        }
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfSampler::new(7, 2.0);
        let mut rng = SeededRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
