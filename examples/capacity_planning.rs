//! Deploying a sketch hierarchy with an error budget (paper §5.1).
//!
//! An operator wants 10%-accurate sliding-window frequency statistics at the
//! root of a 64-site aggregation tree. Naively giving every site ε = 0.1
//! blows the budget — merge error is additive per level — so the deployment
//! must *budget*: [`HierarchyPlan`] derives the per-site ε, the sketch
//! dimensions, and memory/transfer predictions; the simulation then checks
//! the plan against a real aggregation run.
//!
//! ```bash
//! cargo run --release --example capacity_planning
//! ```

use distributed::{aggregate_tree, naive_compounded_epsilon, per_level_errors, HierarchyPlan};
use ecm::{EcmConfig, EcmEh, Query, SketchReader, WindowSpec};
use sliding_window::EhConfig;
use stream_gen::{partition_by_site, uniform_sites, WindowOracle};

const WINDOW: u64 = 1_000_000;
const SITES: usize = 64;
const TARGET_EPS: f64 = 0.1;

fn main() {
    // 1. Plan the deployment.
    let plan = HierarchyPlan::point_queries(TARGET_EPS, 0.05, WINDOW, SITES, 100_000);
    println!(
        "deployment plan for {} sites (h = {} levels):",
        plan.sites, plan.levels
    );
    println!("  end-to-end target      ε  = {:.4}", plan.target_epsilon);
    println!(
        "  window / hashing split    = {:.4} / {:.4}",
        plan.window_epsilon, plan.hashing_epsilon
    );
    println!("  budgeted per-site      ε  = {:.4}", plan.site_epsilon);
    println!(
        "  sketch dimensions         = {} × {}",
        plan.width, plan.depth
    );
    println!(
        "  predicted sketch size     ≈ {} KiB",
        plan.sketch_bytes / 1024
    );
    println!(
        "  predicted aggregation     ≈ {} KiB over {} transfers",
        plan.transfer_bytes / 1024,
        2 * (SITES - 1)
    );
    println!(
        "  budgeting memory premium  ≈ {:.1}×",
        plan.budgeting_memory_factor()
    );

    // What the error *would* do without budgeting, level by level.
    println!(
        "\nworst-case window error by level (site ε = window share {:.4}):",
        plan.window_epsilon
    );
    for (level, err) in per_level_errors(plan.window_epsilon, plan.levels)
        .iter()
        .enumerate()
    {
        println!(
            "  level {level}: {err:.4}{}",
            if *err > plan.window_epsilon * 1.001 {
                "  ← over budget"
            } else {
                ""
            }
        );
    }
    println!(
        "  (naive per-level compounding would predict {:.4})",
        naive_compounded_epsilon(plan.window_epsilon, plan.levels)
    );

    // 2. Simulate the deployment.
    let events = uniform_sites(150_000, SITES as u32, 2024);
    let oracle = WindowOracle::from_events(&events);
    let parts = partition_by_site(&events, SITES as u32);
    let cfg: EcmConfig<sliding_window::ExponentialHistogram> = EcmConfig {
        width: plan.width,
        depth: plan.depth,
        seed: 7,
        cell: EhConfig::new(plan.site_epsilon, WINDOW),
    };
    let out = aggregate_tree(
        SITES,
        |i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(i as u64 + 1);
            for e in &parts[i] {
                sk.insert(e.key, e.ts);
            }
            sk
        },
        &cfg.cell,
    )
    .expect("homogeneous sketches merge");

    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;
    let mut worst = 0.0f64;
    let mut sum = 0.0;
    let mut n = 0u32;
    for key in 0..5_000u64 {
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        if exact == 0.0 {
            continue;
        }
        let est = out
            .query(&Query::point(key), WindowSpec::time(now, WINDOW))
            .unwrap()
            .into_value()
            .value;
        let err = (est - exact).abs() / norm;
        worst = worst.max(err);
        sum += err;
        n += 1;
    }

    println!("\nsimulated aggregation over {} events:", events.len());
    println!(
        "  actual transfer volume    = {} KiB",
        out.stats.bytes / 1024
    );
    println!(
        "  observed error: avg {:.5}, worst {:.5} (target {TARGET_EPS})",
        sum / f64::from(n),
        worst
    );
    assert!(worst <= TARGET_EPS, "deployment must meet its budget");
    println!("  → plan verified: the root meets its end-to-end target");
}
