//! Checkpoint/restart walkthrough: a multi-tenant monitoring process
//! checkpoints its whole sketch fleet to disk, crashes, restarts from the
//! snapshot, catches up from an incremental delta, and keeps serving — with
//! every answer bit-identical to an uninterrupted run.
//!
//! The cycle:
//! 1. ingest → `write_snapshot()` (full base, self-describing + checksummed)
//! 2. keep ingesting → `write_incremental()` (only the dirtied keys ride)
//! 3. *crash*
//! 4. `load_snapshot()` + `apply_incremental()` → the fleet is whole again
//!
//! ```bash
//! cargo run --release --example checkpoint_restart
//! ```

use ecm::{Query, SketchSpec, SketchStore, StreamEvent, WindowSpec};
use stream_gen::{SeededRng, ZipfSampler};

const WINDOW: u64 = 3_600; // 1 hour of 1-second ticks
const TENANTS: u64 = 500;

fn traffic(from_tick: u64, to_tick: u64, seed: u64) -> Vec<(u64, StreamEvent)> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let tenants = ZipfSampler::new(TENANTS, 1.1);
    let mut out = Vec::new();
    for t in from_tick..to_tick {
        for _ in 0..rng.gen_range(1..8u64) {
            let tenant = tenants.sample(&mut rng);
            let endpoint = rng.gen_range(0..32u64);
            out.push((tenant, StreamEvent::new(endpoint, t)));
        }
    }
    out
}

fn main() {
    let spec = SketchSpec::time(WINDOW).epsilon(0.1).delta(0.1).seed(42);
    let dir = std::env::temp_dir();
    let base_path = dir.join("ecm_fleet_base.snap");
    let delta_path = dir.join("ecm_fleet_delta.snap");

    // ── Before the crash ────────────────────────────────────────────────
    let mut live: SketchStore<u64> = SketchStore::new(spec.clone()).expect("valid spec");

    // First half hour of traffic, then the periodic full checkpoint.
    let phase1 = traffic(1, 1_800, 7);
    live.ingest(&phase1);
    let base = live.write_snapshot().expect("fleet snapshots");
    std::fs::write(&base_path, &base).expect("write base snapshot");
    println!(
        "checkpoint #1 (full):        {:>8} keys, {:>9} bytes -> {}",
        live.len(),
        base.len(),
        base_path.display()
    );

    // More traffic; only the keys written since ride in the delta.
    let phase2 = traffic(1_800, 2_100, 8);
    live.ingest(&phase2);
    let dirtied = live.dirty_len();
    let delta = live.write_incremental().expect("fleet snapshots");
    std::fs::write(&delta_path, &delta).expect("write delta snapshot");
    println!(
        "checkpoint #2 (incremental): {:>8} keys, {:>9} bytes ({}x smaller)",
        dirtied,
        delta.len(),
        base.len() / delta.len().max(1)
    );

    // ── Crash ───────────────────────────────────────────────────────────
    drop(live);
    println!("\n*** process killed: in-memory fleet lost ***\n");

    // ── Restart ─────────────────────────────────────────────────────────
    let base = std::fs::read(&base_path).expect("read base snapshot");
    let delta = std::fs::read(&delta_path).expect("read delta snapshot");
    let mut restored = SketchStore::<u64>::load_snapshot(&base).expect("base restores");
    restored
        .apply_incremental(&delta)
        .expect("delta chains on the base");
    println!(
        "restored: {} keys at checkpoint seq {}",
        restored.len(),
        restored.checkpoint_seq()
    );

    // The restored fleet answers exactly like an uninterrupted one.
    let mut uninterrupted: SketchStore<u64> = SketchStore::new(spec).expect("valid spec");
    uninterrupted.ingest(&phase1);
    uninterrupted.ingest(&phase2);
    let w = WindowSpec::time(2_100, WINDOW);
    let mut checked = 0u32;
    for tenant in restored.keys() {
        let a = restored
            .query(&tenant, &Query::total_arrivals(), w)
            .expect("resident")
            .expect("in-window")
            .into_value()
            .value;
        let b = uninterrupted
            .query(&tenant, &Query::total_arrivals(), w)
            .expect("resident")
            .expect("in-window")
            .into_value()
            .value;
        assert_eq!(a.to_bits(), b.to_bits(), "tenant {tenant} diverged");
        checked += 1;
    }
    println!("verified {checked} tenants bit-identical to an uninterrupted run");

    // ...and keeps ingesting: the next delta chains on the restored seq.
    let phase3 = traffic(2_100, 2_400, 9);
    restored.ingest(&phase3);
    let next_delta = restored.write_incremental().expect("fleet snapshots");
    println!(
        "life goes on: next incremental checkpoint is {} bytes at seq {}",
        next_delta.len(),
        restored.checkpoint_seq()
    );

    let _ = std::fs::remove_file(base_path);
    let _ = std::fs::remove_file(delta_path);
}
