//! Continuous distributed monitoring with the geometric method (paper
//! §6.2): four sites keep local ECM-sketches; a coordinator must know at all
//! times whether the self-join size (a skew indicator) of the union stream's
//! recent window is above a threshold — while communicating only when some
//! site's local drift ball actually crosses it.
//!
//! ```bash
//! cargo run --release --example continuous_threshold
//! ```

use distributed::{GeometricMonitor, MonitorEvent, SelfJoinFn};
use ecm::{EcmBuilder, EcmEh, QueryKind};
use stream_gen::Event;

const SITES: u32 = 4;
const WINDOW: u64 = 5_000;

fn main() {
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW)
        .query_kind(QueryKind::InnerProduct)
        .seed(99)
        .eh_config();
    let nodes: Vec<EcmEh> = (0..SITES)
        .map(|i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(u64::from(i) + 1);
            sk
        })
        .collect();
    let func = SelfJoinFn {
        width: cfg.width,
        depth: cfg.depth,
    };
    // Threshold on the self-join of the *average* statistics vector.
    // Note the scaling: f(avg) ≈ F2(union)/n², so the diverse background
    // (≈ 62 500 / 16 ≈ 4 000) sits below, and the flood (≈ 16M / 16 ≈ 1M)
    // far above.
    let threshold = 50_000.0;
    let mut monitor = GeometricMonitor::new(nodes, func, threshold, WINDOW, 0);
    println!(
        "monitoring F2(avg vector) > {threshold} across {SITES} sites \
         (sketch {}x{})",
        cfg.width, cfg.depth
    );

    // Phase 1: diverse traffic (low skew). Phase 2: one key floods (skew
    // spikes → crossing). Phase 3: flood stops; window drains (crossing
    // back down).
    let mut events_seen = 0u64;
    let mut crossings = Vec::new();
    for t in 1..=30_000u64 {
        let key = if (8_000..12_000).contains(&t) {
            77 // flood
        } else {
            t % 400
        };
        let ev = Event {
            ts: t,
            key,
            site: (t % u64::from(SITES)) as u32,
        };
        events_seen += 1;
        if let MonitorEvent::Synced { value, above } = monitor.observe(ev) {
            crossings.push((t, value, above));
        }
    }

    println!("\nsynchronizations ({} total):", crossings.len());
    for &(t, value, above) in crossings.iter().take(12) {
        println!(
            "  t = {t:>6}: F2 ≈ {value:>10.0} → {}",
            if above { "ABOVE" } else { "below" }
        );
    }
    if crossings.len() > 12 {
        println!("  ... ({} more)", crossings.len() - 12);
    }

    let stats = monitor.stats();
    let naive_bytes = events_seen * monitor.sync_bytes() / u64::from(SITES) / 2;
    println!("\ncommunication:");
    println!("  local checks:     {:>10}", stats.checks);
    println!("  syncs:            {:>10}", stats.syncs);
    println!("  bytes shipped:    {:>10}", stats.bytes);
    println!("  ship-every-update baseline: {naive_bytes} bytes");
    println!("  savings: {:.1}x", naive_bytes as f64 / stats.bytes as f64);
    assert!(
        crossings.iter().any(|&(_, _, above)| above),
        "the flood must push the function above the threshold"
    );
    assert!(
        !crossings.last().unwrap().2,
        "after the window drains the function must come back down"
    );
}
