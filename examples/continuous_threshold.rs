//! Continuous distributed monitoring with the geometric method (paper
//! §6.2): four sites keep local ECM-sketches; a coordinator must know at all
//! times whether the self-join size (a skew indicator) of the union stream's
//! recent window is above a threshold — while communicating only when some
//! site's local drift ball actually crosses it.
//!
//! The union stream is also mirrored into a live `sketchd` through the
//! pipelining `sketch-client`: an in-process server by default, or an
//! external one when `SKETCHD_ADDR` is set (start it with a matching spec,
//! e.g. `SKETCHD_WINDOW=5000 SKETCHD_SEED=99`). The server side is a
//! registered standing view (`VIEW CREATE … threshold … self_join`): the
//! server maintains the windowed self-join incrementally on its ingest
//! path, and every synchronization point is a cheap `VIEW READ` — not a
//! recompute — cross-checked against the coordinator's value. A second
//! connection `SUBSCRIBE`s to the view and collects the pushed crossing
//! notifications. The network path and the in-process geometric method
//! must tell the same story.
//!
//! ```bash
//! cargo run --release --example continuous_threshold
//! # or against an already-running server:
//! SKETCHD_ADDR=127.0.0.1:7070 cargo run --release --example continuous_threshold
//! ```

use distributed::{GeometricMonitor, MonitorEvent, SelfJoinFn};
use ecm::{EcmBuilder, EcmEh, QueryKind};
use sketch_server::protocol::response::is_ok;
use sketch_server::{Client, Server, ServerConfig, SketchSpec};
use stream_gen::Event;

const SITES: u32 = 4;
const WINDOW: u64 = 5_000;
/// Events buffered client-side before they are shipped in one `BATCH` frame.
const MIRROR_BATCH: usize = 512;
/// Threshold on the self-join of the *average* statistics vector (the
/// monitor's scale); the served view watches the raw union-stream F₂, which
/// is n² times larger.
const F2_THRESHOLD: f64 = 50_000.0;

/// Mirror of the union stream inside a real `sketchd`.
///
/// Every event the monitor observes is also shipped to a server under one
/// tenant key, and each synchronization point additionally asks the server
/// for the windowed self-join over the wire.
struct ServerMirror {
    client: Client,
    /// A second connection in push mode, collecting the view's crossing
    /// notifications as the server's maintenance publishes them.
    subscriber: Client,
    /// `Some` when the example spawned its own in-process server (the
    /// default); `None` when `SKETCHD_ADDR` named an external one.
    spawned: Option<Server>,
    pending: Vec<String>,
    /// Per-sync rows: (t, coordinator f(avg), served f(avg), above).
    checks: Vec<(u64, f64, f64, bool)>,
}

impl ServerMirror {
    fn start() -> ServerMirror {
        let (client, spawned) = match std::env::var("SKETCHD_ADDR") {
            Ok(addr) => {
                println!("mirroring the union stream to live sketchd at {addr}");
                let client = Client::connect(&addr).expect("connect to SKETCHD_ADDR");
                (client, None)
            }
            Err(_) => {
                // Same accuracy contract as the sites: the InnerProduct
                // split spends the ε budget the way a self-join caller
                // should.
                let spec = SketchSpec::time(WINDOW)
                    .epsilon(0.1)
                    .delta(0.1)
                    .seed(99)
                    .query_kind(QueryKind::InnerProduct);
                let server =
                    Server::start(ServerConfig::new(spec)).expect("start in-process sketchd");
                let addr = server.local_addr();
                println!("mirroring the union stream to in-process sketchd at {addr}");
                let client = Client::connect(addr).expect("connect to in-process sketchd");
                (client, Some(server))
            }
        };
        let mut mirror =
            ServerMirror {
                client,
                subscriber: Client::connect(std::env::var("SKETCHD_ADDR").unwrap_or_else(|_| {
                    spawned.as_ref().expect("spawned").local_addr().to_string()
                }))
                .expect("connect subscriber"),
                spawned,
                pending: Vec::new(),
                checks: Vec::new(),
            };
        // Register the standing query once: the server re-evaluates it
        // incrementally as batches land, so sync points read a cached
        // answer instead of recomputing the window. The limit is on the
        // raw-F2 scale (f(avg) × n²).
        let limit = F2_THRESHOLD * f64::from(SITES * SITES);
        let ack = mirror
            .client
            .call(&format!(
                "VIEW CREATE f2 threshold union self_join {limit} time {WINDOW}"
            ))
            .expect("VIEW CREATE");
        assert!(
            is_ok(&ack) || ack.contains("duplicate_view"), // external reruns
            "server refused the view: {ack}"
        );
        // Push mode: threshold crossings arrive here without being polled.
        mirror
            .subscriber
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .expect("read timeout");
        let ack = mirror.subscriber.subscribe("f2").expect("SUBSCRIBE");
        assert!(is_ok(&ack), "server refused the subscription: {ack}");
        mirror
    }

    fn record(&mut self, ev: &Event) {
        self.pending.push(format!("union {} {}", ev.ts, ev.key));
        if self.pending.len() >= MIRROR_BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let ack = self.client.batch(&self.pending).expect("BATCH ingest");
        assert!(is_ok(&ack), "server refused a mirrored batch: {ack}");
        self.pending.clear();
    }

    /// At a sync point: drain the mirror, then read the standing view the
    /// server has been maintaining. The view's consistency point is the
    /// sketch's write clock — the event at tick `t` that triggered this
    /// sync is the last one flushed, so the cached answer covers exactly
    /// the window the coordinator just evaluated. The served estimate is
    /// for F2 of the raw union stream; dividing by n² puts it on the
    /// monitor's f(avg) scale.
    fn cross_check(&mut self, t: u64, monitor_value: f64, above: bool) {
        self.flush();
        let resp = self.client.call("VIEW READ f2").expect("view read");
        assert!(is_ok(&resp), "view read failed: {resp}");
        // An external server may carry state from earlier runs; only the
        // fresh in-process one pins its write clock to our stream.
        assert!(
            self.spawned.is_none() || resp.contains(&format!("\"now\":{t}")),
            "the view's consistency point must be the sync tick {t}: {resp}"
        );
        let raw = json_value(&resp);
        // The view's crossing verdict and its estimate must agree.
        let served_above = resp.contains("\"above\":true");
        assert_eq!(
            served_above,
            raw > F2_THRESHOLD * f64::from(SITES * SITES),
            "view verdict disagrees with its own estimate: {resp}"
        );
        let served = raw / f64::from(SITES * SITES);
        self.checks.push((t, monitor_value, served, above));
    }

    /// Drain what is left, collect the pushed crossing notifications, and,
    /// if the server is ours, take it down cleanly. Returns the threshold
    /// pushes the subscriber received.
    fn finish(mut self) -> Vec<String> {
        self.flush();
        // Maintenance publishes after the ingest ack; give the final
        // batch's notifications a moment to land, then drain.
        let mut pushes = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while std::time::Instant::now() < deadline {
            match self.subscriber.recv() {
                Ok(line) if line.contains("\"notify\":\"threshold\"") => pushes.push(line),
                Ok(_) => continue, // heartbeat
                Err(_) => {
                    if !pushes.is_empty() {
                        break; // quiet after the crossings: done
                    }
                }
            }
        }
        if self.spawned.is_some() {
            let ack = self.client.call("SHUTDOWN").expect("SHUTDOWN");
            assert!(is_ok(&ack), "shutdown refused: {ack}");
        }
        if let Some(server) = self.spawned.take() {
            server.join();
        }
        pushes
    }
}

/// Pull the `"value":` field out of a one-line JSON reply.
fn json_value(resp: &str) -> f64 {
    let idx = resp.find("\"value\":").expect("reply carries a value");
    let rest = &resp[idx + "\"value\":".len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().expect("numeric value")
}

fn main() {
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW)
        .query_kind(QueryKind::InnerProduct)
        .seed(99)
        .eh_config();
    let nodes: Vec<EcmEh> = (0..SITES)
        .map(|i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(u64::from(i) + 1);
            sk
        })
        .collect();
    let func = SelfJoinFn {
        width: cfg.width,
        depth: cfg.depth,
    };
    // Note the scaling: f(avg) ≈ F2(union)/n², so the diverse background
    // (≈ 62 500 / 16 ≈ 4 000) sits below, and the flood (≈ 16M / 16 ≈ 1M)
    // far above.
    let threshold = F2_THRESHOLD;
    let mut monitor = GeometricMonitor::new(nodes, func, threshold, WINDOW, 0);
    println!(
        "monitoring F2(avg vector) > {threshold} across {SITES} sites \
         (sketch {}x{})",
        cfg.width, cfg.depth
    );

    let mut mirror = ServerMirror::start();

    // Phase 1: diverse traffic (low skew). Phase 2: one key floods (skew
    // spikes → crossing). Phase 3: flood stops; window drains (crossing
    // back down).
    let mut events_seen = 0u64;
    let mut crossings = Vec::new();
    for t in 1..=30_000u64 {
        let key = if (8_000..12_000).contains(&t) {
            77 // flood
        } else {
            t % 400
        };
        let ev = Event {
            ts: t,
            key,
            site: (t % u64::from(SITES)) as u32,
        };
        events_seen += 1;
        mirror.record(&ev);
        if let MonitorEvent::Synced { value, above } = monitor.observe(ev) {
            crossings.push((t, value, above));
            mirror.cross_check(t, value, above);
        }
    }

    println!("\nsynchronizations ({} total):", crossings.len());
    for &(t, value, above) in crossings.iter().take(12) {
        println!(
            "  t = {t:>6}: F2 ≈ {value:>10.0} → {}",
            if above { "ABOVE" } else { "below" }
        );
    }
    if crossings.len() > 12 {
        println!("  ... ({} more)", crossings.len() - 12);
    }

    let stats = monitor.stats();
    let naive_bytes = events_seen * monitor.sync_bytes() / u64::from(SITES) / 2;
    println!("\ncommunication:");
    println!("  local checks:     {:>10}", stats.checks);
    println!("  syncs:            {:>10}", stats.syncs);
    println!("  bytes shipped:    {:>10}", stats.bytes);
    println!("  ship-every-update baseline: {naive_bytes} bytes");
    println!("  savings: {:.1}x", naive_bytes as f64 / stats.bytes as f64);
    assert!(
        crossings.iter().any(|&(_, _, above)| above),
        "the flood must push the function above the threshold"
    );
    assert!(
        !crossings.last().unwrap().2,
        "after the window drains the function must come back down"
    );

    println!("\nserved self-join at sync points (both on the f(avg) scale):");
    for &(t, coordinator, served, above) in mirror.checks.iter().take(12) {
        println!(
            "  t = {t:>6}: coordinator ≈ {coordinator:>10.0}, served ≈ {served:>10.0} → {}",
            if above { "ABOVE" } else { "below" }
        );
    }
    if mirror.checks.len() > 12 {
        println!("  ... ({} more)", mirror.checks.len() - 12);
    }
    // CM inner-product estimates never undershoot, so during the flood
    // (true f(avg) ≈ 1M ≫ threshold) the served value must agree with the
    // coordinator that the function is above.
    assert!(
        mirror
            .checks
            .iter()
            .any(|&(_, _, served, above)| above && served >= threshold),
        "the served self-join must also see the flood cross the threshold"
    );
    let own_server = mirror.spawned.is_some();
    let pushes = mirror.finish();
    println!("\nsubscriber received {} pushed crossing(s):", pushes.len());
    for line in pushes.iter().take(4) {
        println!("  {line}");
    }
    // On a fresh server the flood's upward crossing must have been pushed
    // (an external server may already have been above before we started).
    assert!(
        !own_server || pushes.iter().any(|l| l.contains("\"above\":true")),
        "the subscriber must see the flood's crossing pushed"
    );
}
