//! Continuous distributed monitoring with the geometric method (paper
//! §6.2): four sites keep local ECM-sketches; a coordinator must know at all
//! times whether the self-join size (a skew indicator) of the union stream's
//! recent window is above a threshold — while communicating only when some
//! site's local drift ball actually crosses it.
//!
//! The union stream is also mirrored into a live `sketchd` through the
//! pipelining `sketch-client`: an in-process server by default, or an
//! external one when `SKETCHD_ADDR` is set (start it with a matching spec,
//! e.g. `SKETCHD_WINDOW=5000 SKETCHD_SEED=99`). At every synchronization
//! point the server's windowed self-join estimate is cross-checked against
//! the coordinator's value — the network path and the in-process geometric
//! method must tell the same story.
//!
//! ```bash
//! cargo run --release --example continuous_threshold
//! # or against an already-running server:
//! SKETCHD_ADDR=127.0.0.1:7070 cargo run --release --example continuous_threshold
//! ```

use distributed::{GeometricMonitor, MonitorEvent, SelfJoinFn};
use ecm::{EcmBuilder, EcmEh, QueryKind};
use sketch_server::protocol::response::is_ok;
use sketch_server::{Client, Server, ServerConfig, SketchSpec};
use stream_gen::Event;

const SITES: u32 = 4;
const WINDOW: u64 = 5_000;
/// Events buffered client-side before they are shipped in one `BATCH` frame.
const MIRROR_BATCH: usize = 512;

/// Mirror of the union stream inside a real `sketchd`.
///
/// Every event the monitor observes is also shipped to a server under one
/// tenant key, and each synchronization point additionally asks the server
/// for the windowed self-join over the wire.
struct ServerMirror {
    client: Client,
    /// `Some` when the example spawned its own in-process server (the
    /// default); `None` when `SKETCHD_ADDR` named an external one.
    spawned: Option<Server>,
    pending: Vec<String>,
    /// Per-sync rows: (t, coordinator f(avg), served f(avg), above).
    checks: Vec<(u64, f64, f64, bool)>,
}

impl ServerMirror {
    fn start() -> ServerMirror {
        let (client, spawned) = match std::env::var("SKETCHD_ADDR") {
            Ok(addr) => {
                println!("mirroring the union stream to live sketchd at {addr}");
                let client = Client::connect(&addr).expect("connect to SKETCHD_ADDR");
                (client, None)
            }
            Err(_) => {
                // Same accuracy contract as the sites: the InnerProduct
                // split spends the ε budget the way a self-join caller
                // should.
                let spec = SketchSpec::time(WINDOW)
                    .epsilon(0.1)
                    .delta(0.1)
                    .seed(99)
                    .query_kind(QueryKind::InnerProduct);
                let server =
                    Server::start(ServerConfig::new(spec)).expect("start in-process sketchd");
                let addr = server.local_addr();
                println!("mirroring the union stream to in-process sketchd at {addr}");
                let client = Client::connect(addr).expect("connect to in-process sketchd");
                (client, Some(server))
            }
        };
        ServerMirror {
            client,
            spawned,
            pending: Vec::new(),
            checks: Vec::new(),
        }
    }

    fn record(&mut self, ev: &Event) {
        self.pending.push(format!("union {} {}", ev.ts, ev.key));
        if self.pending.len() >= MIRROR_BATCH {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let ack = self.client.batch(&self.pending).expect("BATCH ingest");
        assert!(is_ok(&ack), "server refused a mirrored batch: {ack}");
        self.pending.clear();
    }

    /// At a sync point: drain the mirror, then ask the server for the same
    /// self-join the coordinator just evaluated. The served estimate is for
    /// F2 of the raw union stream; dividing by n² puts it on the monitor's
    /// f(avg) scale.
    fn cross_check(&mut self, t: u64, monitor_value: f64, above: bool) {
        self.flush();
        let resp = self
            .client
            .call(&format!("QUERY union self_join time {t} {WINDOW}"))
            .expect("self-join query");
        assert!(is_ok(&resp), "self-join query failed: {resp}");
        let served = json_value(&resp) / f64::from(SITES * SITES);
        self.checks.push((t, monitor_value, served, above));
    }

    /// Drain what is left and, if the server is ours, take it down cleanly.
    fn finish(mut self) {
        self.flush();
        if self.spawned.is_some() {
            let ack = self.client.call("SHUTDOWN").expect("SHUTDOWN");
            assert!(is_ok(&ack), "shutdown refused: {ack}");
        }
        if let Some(server) = self.spawned.take() {
            server.join();
        }
    }
}

/// Pull the `"value":` field out of a one-line JSON reply.
fn json_value(resp: &str) -> f64 {
    let idx = resp.find("\"value\":").expect("reply carries a value");
    let rest = &resp[idx + "\"value\":".len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().expect("numeric value")
}

fn main() {
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW)
        .query_kind(QueryKind::InnerProduct)
        .seed(99)
        .eh_config();
    let nodes: Vec<EcmEh> = (0..SITES)
        .map(|i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(u64::from(i) + 1);
            sk
        })
        .collect();
    let func = SelfJoinFn {
        width: cfg.width,
        depth: cfg.depth,
    };
    // Threshold on the self-join of the *average* statistics vector.
    // Note the scaling: f(avg) ≈ F2(union)/n², so the diverse background
    // (≈ 62 500 / 16 ≈ 4 000) sits below, and the flood (≈ 16M / 16 ≈ 1M)
    // far above.
    let threshold = 50_000.0;
    let mut monitor = GeometricMonitor::new(nodes, func, threshold, WINDOW, 0);
    println!(
        "monitoring F2(avg vector) > {threshold} across {SITES} sites \
         (sketch {}x{})",
        cfg.width, cfg.depth
    );

    let mut mirror = ServerMirror::start();

    // Phase 1: diverse traffic (low skew). Phase 2: one key floods (skew
    // spikes → crossing). Phase 3: flood stops; window drains (crossing
    // back down).
    let mut events_seen = 0u64;
    let mut crossings = Vec::new();
    for t in 1..=30_000u64 {
        let key = if (8_000..12_000).contains(&t) {
            77 // flood
        } else {
            t % 400
        };
        let ev = Event {
            ts: t,
            key,
            site: (t % u64::from(SITES)) as u32,
        };
        events_seen += 1;
        mirror.record(&ev);
        if let MonitorEvent::Synced { value, above } = monitor.observe(ev) {
            crossings.push((t, value, above));
            mirror.cross_check(t, value, above);
        }
    }

    println!("\nsynchronizations ({} total):", crossings.len());
    for &(t, value, above) in crossings.iter().take(12) {
        println!(
            "  t = {t:>6}: F2 ≈ {value:>10.0} → {}",
            if above { "ABOVE" } else { "below" }
        );
    }
    if crossings.len() > 12 {
        println!("  ... ({} more)", crossings.len() - 12);
    }

    let stats = monitor.stats();
    let naive_bytes = events_seen * monitor.sync_bytes() / u64::from(SITES) / 2;
    println!("\ncommunication:");
    println!("  local checks:     {:>10}", stats.checks);
    println!("  syncs:            {:>10}", stats.syncs);
    println!("  bytes shipped:    {:>10}", stats.bytes);
    println!("  ship-every-update baseline: {naive_bytes} bytes");
    println!("  savings: {:.1}x", naive_bytes as f64 / stats.bytes as f64);
    assert!(
        crossings.iter().any(|&(_, _, above)| above),
        "the flood must push the function above the threshold"
    );
    assert!(
        !crossings.last().unwrap().2,
        "after the window drains the function must come back down"
    );

    println!("\nserved self-join at sync points (both on the f(avg) scale):");
    for &(t, coordinator, served, above) in mirror.checks.iter().take(12) {
        println!(
            "  t = {t:>6}: coordinator ≈ {coordinator:>10.0}, served ≈ {served:>10.0} → {}",
            if above { "ABOVE" } else { "below" }
        );
    }
    if mirror.checks.len() > 12 {
        println!("  ... ({} more)", mirror.checks.len() - 12);
    }
    // CM inner-product estimates never undershoot, so during the flood
    // (true f(avg) ≈ 1M ≫ threshold) the served value must agree with the
    // coordinator that the function is above.
    assert!(
        mirror
            .checks
            .iter()
            .any(|&(_, _, served, above)| above && served >= threshold),
        "the served self-join must also see the flood cross the threshold"
    );
    mirror.finish();
}
