//! The paper's motivating scenario (§1): network nodes maintain
//! sliding-window frequency statistics of target IPs; a coordinator
//! aggregates them and flags targets whose recent request count exceeds a
//! capacity threshold — the distributed-trigger DDoS detection scheme of
//! Jain et al.
//!
//! This example runs 8 "routers", injects a flood toward one target IP in
//! the last quarter of the trace, aggregates the per-router hierarchies and
//! reports sliding-window heavy hitters.
//!
//! ```bash
//! cargo run --release --example ddos_monitor
//! ```

use ecm::{EcmBuilder, EcmHierarchy, Query, SketchReader, Threshold, WindowSpec};
use sliding_window::ExponentialHistogram;
use stream_gen::SeededRng;

const ROUTERS: usize = 8;
const WINDOW: u64 = 10_000; // seconds
const UNIVERSE_BITS: u32 = 16; // 65 536 target addresses

fn main() {
    let cfg = EcmBuilder::new(0.05, 0.05, WINDOW).seed(2024).eh_config();
    let mut routers: Vec<EcmHierarchy<ExponentialHistogram>> = (0..ROUTERS)
        .map(|_| EcmHierarchy::new(UNIVERSE_BITS, &cfg))
        .collect();

    // Background traffic: uniform-ish requests to many targets, observed by
    // random routers. Flood: target 0xBEEF hammered in the last quarter.
    let mut rng = SeededRng::seed_from_u64(7);
    let total_ticks = 40_000u64;
    let victim = 0xBEEFu64;
    let mut victim_requests = 0u64;
    for t in 1..=total_ticks {
        let router = rng.gen_range(0..ROUTERS);
        let target = rng.gen_range(0u64..(1 << UNIVERSE_BITS));
        routers[router].insert(target, t);
        if t > 3 * total_ticks / 4 {
            // Flood wave: every tick, several routers see the victim.
            for _ in 0..3 {
                let router = rng.gen_range(0..ROUTERS);
                routers[router].insert(victim, t);
                victim_requests += 1;
            }
        }
    }
    println!("injected {victim_requests} flood requests toward {victim:#x}");

    // Coordinator: order-preserving aggregation of the router hierarchies.
    let refs: Vec<&EcmHierarchy<ExponentialHistogram>> = routers.iter().collect();
    let global = EcmHierarchy::merge(&refs, &cfg.cell).unwrap();

    let now = total_ticks;
    let w = WindowSpec::time(now, WINDOW);
    let in_window = global
        .query(&Query::total_arrivals(), w)
        .unwrap()
        .into_value()
        .value;
    println!("arrivals in the last {WINDOW}s (all routers): ≈ {in_window:.0}");

    // Capacity threshold: no single target should receive more than 5% of
    // recent traffic.
    let alerts = global
        .query(&Query::heavy_hitters(Threshold::Relative(0.05)), w)
        .unwrap()
        .into_heavy_hitters();
    println!("\ntargets above 5% of recent traffic:");
    for (target, est) in &alerts {
        println!("  {target:#07x}: ≈ {:.0} requests in window", est.value);
    }
    assert!(
        alerts.iter().any(|&(t, _)| t == victim),
        "the flooded target must be flagged"
    );

    // Drill-down: victim's request rate over exponentially growing ranges.
    println!("\nvictim rate profile:");
    for range in [100u64, 1_000, 10_000] {
        let est = global
            .query(&Query::point(victim), WindowSpec::time(now, range))
            .unwrap()
            .into_value()
            .value;
        println!("  last {range:>6}s: ≈ {est:>8.0} requests");
    }
    println!(
        "\nper-router memory: {} KiB",
        routers[0].memory_bytes() / 1024
    );
}
