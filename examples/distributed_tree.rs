//! Order-preserving aggregation over a 33-site balanced binary tree — the
//! paper's distributed wc'98 setup (§7.3) at laptop scale.
//!
//! Builds one ECM-EH sketch per site from a synthetic WorldCup-like trace,
//! aggregates them up the tree, and reports the transfer volume plus the
//! observed error of the root sketch against exact windowed counts.
//!
//! ```bash
//! cargo run --release --example distributed_tree
//! ```

use distributed::{aggregate_tree, site_sketch_from_spec};
use ecm::{Query, SketchReader, SketchSpec, WindowSpec};
use sliding_window::ExponentialHistogram;
use stream_gen::{partition_by_site, worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;
const SITES: u32 = 33;

fn main() {
    let events = worldcup_like(100_000, 42);
    let oracle = WindowOracle::from_events(&events);
    println!(
        "trace: {} events, {} distinct keys, {} sites",
        events.len(),
        oracle.distinct_keys(),
        SITES
    );

    // One validated spec drives every site's construction — the same
    // description that would build a local `Box<dyn Sketch>`.
    let eps = 0.1;
    let spec = SketchSpec::time(WINDOW).epsilon(eps).delta(0.1).seed(7);
    let cfg = spec
        .ecm_config::<ExponentialHistogram>()
        .expect("valid spec");
    let parts = partition_by_site(&events, SITES);

    let outcome = aggregate_tree(
        SITES as usize,
        |i| {
            site_sketch_from_spec::<ExponentialHistogram>(&spec, i as u64 + 1, &parts[i])
                .expect("spec validated above")
        },
        &cfg.cell,
    )
    .unwrap();

    println!(
        "aggregation: {} levels, {} sketch transfers, {:.2} MiB total",
        outcome.stats.levels,
        outcome.stats.messages,
        outcome.stats.bytes as f64 / (1024.0 * 1024.0)
    );

    // Score the root sketch against the oracle on the hottest keys.
    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;
    let mut keys: Vec<(u64, u64)> = oracle
        .keys()
        .map(|k| (k, oracle.frequency(k, now, WINDOW)))
        .collect();
    keys.sort_unstable_by_key(|&(_, f)| std::cmp::Reverse(f));

    println!("\nhottest keys, estimated vs exact (window = 10^6 s):");
    let mut worst: f64 = 0.0;
    for &(key, exact) in keys.iter().take(10) {
        let est = outcome
            .query(&Query::point(key), WindowSpec::time(now, WINDOW))
            .unwrap()
            .into_value()
            .value;
        let err = (est - exact as f64).abs() / norm;
        worst = worst.max(err);
        println!("  key {key:>6}: est {est:>9.1}  exact {exact:>7}  err/‖a‖₁ {err:.5}");
    }
    println!(
        "\nworst relative error on top-10 keys: {worst:.5} \
         (configured ε = {eps}, multi-level bound h·ε(1+ε)+ε = {:.2})",
        f64::from(outcome.stats.levels) * eps * (1.0 + eps) + eps
    );
    assert!(worst <= eps, "observed error should sit well below ε");
}
