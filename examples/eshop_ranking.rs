//! The paper's e-commerce motivation (§1): "ranking products in a
//! cloud-based e-shop, based on the number of recent visits of each
//! product". One hierarchy of ECM-sketches answers, over any recency
//! horizon: which products are trending (heavy hitters), how is traffic
//! distributed over the catalog (quantiles), and how concentrated is demand
//! (self-join skew) — while a count-based sketch ranks by "last N visits"
//! instead of wall-clock recency.
//!
//! ```bash
//! cargo run --release --example eshop_ranking
//! ```

use ecm::{CountBasedEcm, EcmBuilder, EcmHierarchy, Query, SketchReader, Threshold, WindowSpec};
use sliding_window::ExponentialHistogram;
use stream_gen::SeededRng;

const WINDOW: u64 = 86_400; // one day of seconds
const CATALOG_BITS: u32 = 14; // 16 384 products

fn main() {
    let cfg = EcmBuilder::new(0.05, 0.05, WINDOW).seed(7).eh_config();
    let mut visits: EcmHierarchy<ExponentialHistogram> = EcmHierarchy::new(CATALOG_BITS, &cfg);
    let cb_cfg = EcmBuilder::new(0.05, 0.05, 10_000).seed(8).eh_config();
    let mut last_visits: CountBasedEcm = CountBasedEcm::new(&cb_cfg);

    // Three days of browsing: steady Zipf-ish interest, plus a product
    // launch (id 777) that goes viral on day 3.
    let mut rng = SeededRng::seed_from_u64(99);
    let total_ticks = 3 * WINDOW;
    for t in 1..=total_ticks {
        let product = if t > 2 * WINDOW && rng.gen_bool(0.25) {
            777 // viral launch
        } else {
            // Skewed catalog interest.
            let r = rng.gen_f64();
            ((r * r * 16_000.0) as u64).min((1 << CATALOG_BITS) - 1)
        };
        visits.insert(product, t);
        last_visits.insert(product);
    }
    let now = total_ticks;

    println!("catalog analytics over the last 24h (ECM hierarchy, ε = 0.05):");
    let day = WindowSpec::time(now, WINDOW);
    let day_total = visits
        .query(&Query::total_arrivals(), day)
        .unwrap()
        .into_value()
        .value;
    println!("  visits in window: ≈ {day_total:.0}");

    let trending = visits
        .query(&Query::heavy_hitters(Threshold::Relative(0.02)), day)
        .unwrap()
        .into_heavy_hitters();
    println!("  trending products (> 2% of traffic):");
    for (product, est) in trending.iter().take(8) {
        println!("    #{product:<6} ≈ {:>8.0} visits", est.value);
    }
    assert!(
        trending.iter().any(|&(p, _)| p == 777),
        "the viral product must trend"
    );

    // Catalog concentration: which product id splits the traffic in half?
    for &phi in &[0.25f64, 0.5, 0.9] {
        let q = visits
            .query(&Query::quantile(phi), day)
            .unwrap()
            .into_quantile()
            .unwrap();
        println!("  {:.0}% of visits fall on products ≤ #{q}", phi * 100.0);
    }

    // Demand concentration via the self-join of the level-0 sketch.
    let f2 = visits
        .query(&Query::self_join(), day)
        .unwrap()
        .into_value()
        .value;
    let uniform_f2 = day_total * day_total / f64::from(1 << CATALOG_BITS);
    println!(
        "  demand skew: F2 ≈ {f2:.2e} ({}x the uniform-catalog baseline)",
        (f2 / uniform_f2) as u64
    );

    // Popularity over the last 10 000 visits, wall clock ignored.
    println!("\ncount-based ranking (last 10 000 visits):");
    let viral = last_visits
        .query(&Query::point(777), WindowSpec::last(10_000))
        .unwrap()
        .into_value()
        .value;
    println!("  #777 holds ≈ {viral:.0} of the last 10 000 visits");
    assert!(viral > 1_500.0, "viral product dominates recent visits");

    println!(
        "\nmemory: hierarchy {} KiB, count-based sketch {} KiB",
        visits.memory_bytes() / 1024,
        last_visits.memory_bytes() / 1024
    );
}
