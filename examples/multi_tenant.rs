//! Multi-tenant quickstart: one `SketchSpec` describes every tenant's
//! sketch, a `SketchStore` creates them lazily, ingests mixed-key batches,
//! and answers cross-tenant queries — with a bounded key budget guarded by
//! LRU eviction.
//!
//! The scenario: a shared API gateway tracks per-tenant request streams
//! over a 1-hour sliding window. Most tenants are quiet; a few are heavy;
//! a burst of ephemeral one-off keys (scrapers, scanners) must not grow
//! the store without bound.
//!
//! ```bash
//! cargo run --release --example multi_tenant
//! ```

use ecm::{Eviction, Query, SketchSpec, SketchStore, StreamEvent, WindowSpec};
use stream_gen::{SeededRng, ZipfSampler};

const WINDOW: u64 = 3_600; // 1 hour of 1-second ticks
const TENANTS: u64 = 200;
const CAPACITY: usize = 256;

fn main() {
    // One description for the whole fleet: ε = 0.1, δ = 0.1, ECM-EH cells.
    let spec = SketchSpec::time(WINDOW).epsilon(0.1).delta(0.1).seed(42);
    let mut store: SketchStore<u64> =
        SketchStore::with_capacity(spec, CAPACITY, Eviction::Lru).expect("valid spec");

    // Two hours of gateway traffic: tenant popularity is Zipf-skewed, each
    // request carries an endpoint id (the item being counted).
    let mut rng = SeededRng::seed_from_u64(7);
    let tenants = ZipfSampler::new(TENANTS, 1.1);
    let mut batch: Vec<(u64, StreamEvent)> = Vec::with_capacity(4_096);
    let mut total = 0u64;
    for t in 1..=(2 * WINDOW) {
        for _ in 0..rng.gen_range(1..6u64) {
            let tenant = tenants.sample(&mut rng);
            let endpoint = rng.gen_range(0..32u64);
            batch.push((tenant, StreamEvent::new(endpoint, t)));
            total += 1;
        }
        // Ephemeral noise keys: one-shot tenants that LRU should age out.
        if t % 16 == 0 {
            batch.push((10_000 + t, StreamEvent::new(0, t)));
            total += 1;
        }
        if batch.len() >= 4_096 {
            store.ingest(&batch); // grouped per tenant before dispatch
            batch.clear();
        }
    }
    store.ingest(&batch);

    let now = 2 * WINDOW;
    let w = WindowSpec::time(now, WINDOW);
    println!(
        "{total} requests over {} tenants → {} resident sketches (cap {CAPACITY}, {} evicted)",
        TENANTS,
        store.len(),
        store.evictions()
    );

    // Which tenants carried the most traffic in the last hour?
    println!("\ntop tenants by windowed request volume:");
    for (tenant, volume) in store.top_k(5, &Query::total_arrivals(), w) {
        println!("  tenant {tenant:>5}: ≈ {volume:>8.0} requests");
    }

    // Drill into one tenant: per-endpoint frequency with its guarantee.
    let (hot, _) = store.top_k(1, &Query::total_arrivals(), w).remove(0);
    let est = store
        .query(&hot, &Query::point(0), w)
        .expect("hot tenant is resident")
        .expect("in-window point query")
        .into_value();
    let g = est.guarantee.expect("EH sketches carry guarantees");
    println!(
        "\ntenant {hot}, endpoint 0: ≈ {:.0} requests (±ε·N with ε = {:.3}, δ = {:.2})",
        est.value, g.epsilon, g.delta
    );

    // The ephemeral keys were evicted, not accumulated.
    assert!(store.len() <= CAPACITY);
    println!("\nstore stayed within its {CAPACITY}-key budget — LRU absorbed the noise keys");
}
