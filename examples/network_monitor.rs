//! The paper's §1 scenario, end to end: a distributed network monitor that
//! detects a DDoS flash crowd.
//!
//! Eight edge routers each summarize their local traffic in an ECM-sketch
//! hierarchy. Three mechanisms run side by side, mirroring the Jain et al.
//! architecture the paper describes:
//!
//! 1. **Local triggers** — each router checks its own per-target windowed
//!    counts against its fair-share threshold (no communication).
//! 2. **Drift-triggered propagation** (Chan et al.) keeps the coordinator's
//!    view of the *global arrival volume* current within θ+ε.
//! 3. On a trigger, routers ship their hierarchies; the coordinator merges
//!    them order-preservingly (§5) and runs sliding-window heavy-hitter
//!    group testing (§6.1) to identify the attacked target.
//!
//! ```bash
//! cargo run --release --example network_monitor
//! ```

use distributed::DriftPropagation;
use ecm::{EcmBuilder, EcmHierarchy, Query, SketchReader, Threshold, WindowSpec};
use sliding_window::{EhConfig, ExponentialHistogram};
use stream_gen::{inject_flash_crowd, uniform_sites, FlashCrowd};

const WINDOW: u64 = 200_000; // ~2.3 days of seconds
const SITES: usize = 8;
const BITS: u32 = 16;
const TARGET: u64 = 4242;

fn main() {
    // Traffic: steady background plus a flash crowd toward one target.
    let base = uniform_sites(60_000, SITES as u32, 11);
    let attack_start = 1_400_000u64;
    let events = inject_flash_crowd(
        &base,
        &FlashCrowd {
            target_key: TARGET,
            start: attack_start,
            duration: WINDOW / 2,
            volume: 15_000,
            sources: SITES as u32,
            seed: 3,
        },
    );
    println!(
        "trace: {} events over {} sites, flash crowd of 15k requests toward key {TARGET}",
        events.len(),
        SITES
    );

    // Per-router state.
    let eps = 0.05;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(17).eh_config();
    let mut routers: Vec<EcmHierarchy<ExponentialHistogram>> =
        (0..SITES).map(|_| EcmHierarchy::new(BITS, &cfg)).collect();
    // Volume tracking at the coordinator (drift budget 10%).
    let mut volume = DriftPropagation::new(SITES, &EhConfig::new(eps, WINDOW), 0.1);

    // Local trigger threshold: the per-router fair share of a target's
    // capacity, here ~600 requests per window per router.
    let local_threshold = 600.0;
    let mut alarm: Option<(u64, usize)> = None; // (tick, router)
    let mut escalated = false;

    for e in &events {
        let site = e.site as usize;
        routers[site].insert(e.key % (1 << BITS), e.ts);
        volume.observe(site, e.ts);
        // Local trigger: cheap point query on the router's own level-0
        // sketch. (Real deployments would check only keys seen in the
        // arrival; we do exactly that.)
        if alarm.is_none() {
            let local = routers[site]
                .query(&Query::point(e.key), WindowSpec::time(e.ts, WINDOW))
                .expect("in-window query")
                .into_value()
                .value;
            if local > local_threshold {
                alarm = Some((e.ts, site));
            }
        }
        // Escalation runs AT the alarm — sliding windows answer about the
        // present, so the coordinator acts while the attack is in-window.
        if let (Some((alarm_ts, alarm_site)), false) = (alarm, escalated) {
            escalated = true;
            println!("\nlocal trigger fired at router {alarm_site}, tick {alarm_ts}");
            assert!(
                alarm_ts >= attack_start && alarm_ts <= attack_start + WINDOW / 2,
                "trigger must fire during the attack window"
            );

            // Coordinator volume view (maintained continuously, cheaply).
            let vstats = volume.stats();
            println!(
                "coordinator volume estimate: ≈ {:.0} arrivals in window \
                 ({} EH shipments, {:.0} KiB so far)",
                volume.coordinator_estimate(),
                vstats.shipments,
                vstats.bytes as f64 / 1024.0,
            );

            // Collect, merge, identify the target network-wide.
            let mut shipped_bytes = 0u64;
            let decoded: Vec<EcmHierarchy<ExponentialHistogram>> = routers
                .iter()
                .map(|h| {
                    let mut buf = Vec::new();
                    h.encode(&mut buf);
                    shipped_bytes += buf.len() as u64;
                    EcmHierarchy::decode(BITS, &cfg, &mut buf.as_slice()).expect("wire decode")
                })
                .collect();
            let refs: Vec<&EcmHierarchy<ExponentialHistogram>> = decoded.iter().collect();
            let global = EcmHierarchy::merge(&refs, &cfg.cell).expect("homogeneous merge");

            let suspects = global
                .query(
                    &Query::heavy_hitters(Threshold::Relative(0.05)),
                    WindowSpec::time(alarm_ts, WINDOW),
                )
                .expect("in-window query")
                .into_heavy_hitters();
            println!(
                "\nescalation: shipped {} KiB of hierarchies; \
                 network-wide heavy hitters (φ = 5%):",
                shipped_bytes / 1024
            );
            for (key, est) in &suspects {
                println!("  key {key:<8} ≈ {:>8.0} requests in window", est.value);
            }
            assert!(
                suspects.iter().any(|&(k, _)| k == TARGET),
                "the attacked target must surface network-wide"
            );

            // Forensics: where is the attack traffic entering?
            println!("\nper-router share of traffic to key {TARGET}:");
            for (i, r) in routers.iter().enumerate() {
                let share = r
                    .query(&Query::point(TARGET), WindowSpec::time(alarm_ts, WINDOW))
                    .expect("in-window query")
                    .into_value()
                    .value;
                println!("  router {i}: ≈ {share:>7.0}");
            }
        }
    }
    assert!(escalated, "the flash crowd must trip a local trigger");

    // After the trace: the window has slid past the burst; a fresh report
    // at the current tick is clean again.
    let now = events.last().unwrap().ts;
    let refs: Vec<&EcmHierarchy<ExponentialHistogram>> = routers.iter().collect();
    let global = EcmHierarchy::merge(&refs, &cfg.cell).expect("homogeneous merge");
    let after = global
        .query(
            &Query::heavy_hitters(Threshold::Relative(0.05)),
            WindowSpec::time(now, WINDOW),
        )
        .expect("in-window query")
        .into_heavy_hitters();
    assert!(
        after.iter().all(|&(k, _)| k != TARGET),
        "the aged-out attack must disappear from fresh reports"
    );
    println!("\nat trace end (tick {now}): attack aged out — heavy-hitter report is clean");
    println!("\n→ distributed detection complete: local triggers, continuous volume");
    println!("  tracking, and guaranteed-error network-wide identification, all on");
    println!("  sketches a fraction of the raw stream's size.");
}
