//! High-speed ingestion with sharded ECM-sketches.
//!
//! The paper's network monitors must keep up with line-rate streams (§1);
//! one sketch sustains a few million updates per second (paper Table 3).
//! [`ShardedEcm`] partitions the key space over worker threads: per-shard
//! sketches summarize key-disjoint substreams, so point queries route to one
//! shard and self-joins sum exactly across shards — no accuracy is given up.
//!
//! ```bash
//! cargo run --release --example parallel_ingest
//! ```

use ecm::{partition_pairs, EcmBuilder, Query, ShardedEcm, SketchReader, WindowSpec};
use sliding_window::ExponentialHistogram;
use std::time::Instant;
use stream_gen::{worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;
const EVENTS: usize = 300_000;

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shards = cores.clamp(2, 8);
    println!("machine has {cores} core(s); using {shards} shards");

    let events = worldcup_like(EVENTS, 7);
    let pairs: Vec<(u64, u64)> = events.iter().map(|e| (e.key, e.ts)).collect();
    let cfg = EcmBuilder::new(0.1, 0.05, WINDOW).seed(3).eh_config();

    // Channel-fed ingestion: one dispatcher, `shards` workers.
    let start = Instant::now();
    let sketch: ShardedEcm<ExponentialHistogram> =
        ShardedEcm::ingest_parallel(&cfg, shards, pairs.iter().copied());
    let channel_rate = EVENTS as f64 / start.elapsed().as_secs_f64();

    // Pre-partitioned ingestion (per-NIC-queue shape): no dispatcher.
    let parts = partition_pairs(pairs.iter().copied(), shards, cfg.seed);
    let start = Instant::now();
    let pre: ShardedEcm<ExponentialHistogram> = ShardedEcm::ingest_prepartitioned(&cfg, parts);
    let prepart_rate = EVENTS as f64 / start.elapsed().as_secs_f64();

    println!("ingested {EVENTS} events:");
    println!("  channel-fed      ≈ {channel_rate:>12.0} updates/s");
    println!("  pre-partitioned  ≈ {prepart_rate:>12.0} updates/s");

    // Queries compose across shards without extra error.
    let oracle = WindowOracle::from_events(&events);
    let now = oracle.last_tick();
    let mut hot: Vec<(u64, u64)> = oracle
        .keys()
        .map(|k| (oracle.frequency(k, now, WINDOW), k))
        .collect();
    hot.sort_unstable_by(|a, b| b.cmp(a));

    println!("\ntop keys, sharded estimate vs exact (window = {WINDOW} ticks):");
    let w = WindowSpec::time(now, WINDOW);
    for &(exact, key) in hot.iter().take(5) {
        let est = sketch.query(&Query::point(key), w).unwrap().into_value();
        let shard = sketch.shard_of(key);
        println!(
            "  key {key:<8} shard {shard}: est ≈ {:>8.0}   exact {exact:>8}",
            est.value
        );
    }

    let f2_exact = oracle.self_join(now, WINDOW);
    let f2_est = pre
        .query(&Query::self_join(), w)
        .unwrap()
        .into_value()
        .value;
    println!("\nself-join over the window: est ≈ {f2_est:.3e}, exact {f2_exact:.3e}");
    println!(
        "memory: {} KiB across {} shards",
        sketch.memory_bytes() / 1024,
        sketch.shards()
    );

    // Both ingestion paths are deterministic and identical.
    let probe = Query::point(hot[0].1);
    assert_eq!(
        sketch.query(&probe, w).unwrap(),
        pre.query(&probe, w).unwrap()
    );
}
