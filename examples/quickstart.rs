//! Quickstart: build an ECM-sketch over a sliding window, answer point and
//! self-join queries through the unified typed query API, and compare
//! against exact counts.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ecm::{EcmBuilder, EcmEh, Query, QueryKind, SketchReader, WindowSpec};
use std::collections::HashMap;

fn main() {
    // A 0.1-approximate, 90%-confidence sketch over a 1-hour window
    // (ticks are seconds here).
    let window = 3_600u64;
    let cfg = EcmBuilder::new(0.1, 0.1, window)
        .query_kind(QueryKind::Point)
        .seed(42)
        .eh_config();
    let mut sketch = EcmEh::new(&cfg);
    println!(
        "ECM-EH sketch: {}x{} cells, ε_sw = {:.4}, window = {window}s",
        sketch.width(),
        sketch.depth(),
        cfg.cell.epsilon
    );

    // Feed two hours of a skewed synthetic stream: key 7 is hot early,
    // key 13 is hot late.
    let mut exact: HashMap<u64, Vec<u64>> = HashMap::new();
    for t in 1..=7_200u64 {
        let key = if t <= 3_600 {
            if t % 3 == 0 {
                7
            } else {
                t % 100
            }
        } else if t % 3 == 0 {
            13
        } else {
            t % 100
        };
        sketch.insert(key, t);
        exact.entry(key).or_default().push(t);
    }

    let now = 7_200u64;
    let truth = |key: u64, range: u64| -> u64 {
        exact.get(&key).map_or(0, |ts| {
            ts.iter()
                .filter(|&&t| t > now.saturating_sub(range))
                .count() as u64
        })
    };

    println!("\npoint queries over the last hour (window covers 3600..7200):");
    for key in [7u64, 13, 50] {
        let est = sketch
            .query(&Query::point(key), WindowSpec::time(now, window))
            .expect("window is within configuration")
            .into_value();
        println!(
            "  key {key:>3}: estimated {:>7.1} ± {:>5.1}, exact {:>5}",
            est.value,
            est.absolute_bound(3_600.0).unwrap(),
            truth(key, window)
        );
    }

    println!("\npoint queries over the last 10 minutes:");
    for key in [7u64, 13, 50] {
        let est = sketch
            .query(&Query::point(key), WindowSpec::time(now, 600))
            .unwrap()
            .into_value();
        println!(
            "  key {key:>3}: estimated {:>7.1}, exact {:>5}",
            est.value,
            truth(key, 600)
        );
    }

    // Self-join (F2) over the last hour — a measure of stream skew.
    let w = WindowSpec::time(now, window);
    let sj = sketch.query(&Query::self_join(), w).unwrap().into_value();
    let exact_sj: f64 = exact
        .keys()
        .map(|&k| {
            let f = truth(k, window) as f64;
            f * f
        })
        .sum();
    println!(
        "\nself-join over the last hour: estimated {:.0}, exact {exact_sj:.0}",
        sj.value
    );
    let total = sketch
        .query(&Query::total_arrivals(), w)
        .unwrap()
        .into_value();
    println!(
        "total arrivals in window: estimated {:.0}, exact 3600",
        total.value
    );

    // The typed API refuses out-of-contract windows instead of clamping.
    let too_wide = sketch.query(&Query::point(7), WindowSpec::time(now, window * 2));
    println!("asking for a 2-hour window: {}", too_wide.unwrap_err());
    println!("sketch memory: {} KiB", sketch.memory_bytes() / 1024);
}
