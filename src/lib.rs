//! Meta-crate for the ECM-sketch reproduction workspace.
//!
//! Re-exports the public APIs of every workspace crate so the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` have a single import root. Library users should depend on the
//! individual crates (`ecm`, `sliding-window`, `count-min`, `stream-gen`,
//! `distributed`) directly.

pub use count_min;
pub use distributed;
pub use ecm;
pub use sliding_window;
pub use stream_gen;
