//! Facade crate for the ECM-sketch reproduction workspace.
//!
//! Beyond re-exporting every workspace crate ([`count_min`],
//! [`sliding_window`], [`ecm`], [`stream_gen`], [`distributed`]), this
//! crate fronts the **typed sketch API** directly: describe a sketch with
//! [`SketchSpec`], build it as a [`Box<dyn Sketch>`](Sketch), feed it
//! through [`SketchWriter`], query it through [`SketchReader`] — or manage
//! a whole keyed fleet with [`SketchStore`]. One `use ecm_suite::prelude::*;`
//! pulls in the working vocabulary.
//!
//! ```
//! use ecm_suite::prelude::*;
//!
//! let mut store: SketchStore<u64> =
//!     SketchStore::new(SketchSpec::time(1_000).epsilon(0.1).delta(0.1)).unwrap();
//! for t in 1..=500u64 {
//!     store.insert(t % 3, t, 42); // tenant, tick, item
//! }
//! let hot = store.top_k(1, &Query::point(42), WindowSpec::time(500, 1_000));
//! assert_eq!(hot.len(), 1);
//! ```
//!
//! Library users should depend on the individual crates directly; the
//! runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/` use this root.

pub use count_min;
pub use distributed;
pub use ecm;
pub use sliding_window;
pub use stream_gen;

// The typed construction / write / read surface, fronted at the root so the
// facade is usable without spelunking into sub-crates.
pub use ecm::{
    restore_any, Answer, Backend, Clock, EcmBuilder, Estimate, Eviction, Guarantee, MemoryReport,
    Query, QueryError, QueryKind, Sketch, SketchReader, SketchSpec, SketchStore, SketchWriter,
    SnapshotError, SpecBackend, SpecError, StreamEvent, Threshold, WindowSpec,
};

/// The working vocabulary in one import: spec-driven construction
/// ([`SketchSpec`], [`Backend`]), the write/read traits, the keyed
/// [`SketchStore`], and the distributed aggregation entry points.
pub mod prelude {
    pub use distributed::{
        aggregate_kary_tree, aggregate_tree, checkpoint_site, restore_site, resume_site,
        site_sketch_batched, site_sketch_from_spec, AggregationOutcome,
    };
    pub use ecm::{
        restore_any, Answer, Backend, Clock, Estimate, Eviction, Guarantee, MemoryReport, Query,
        QueryError, QueryKind, Sketch, SketchReader, SketchSpec, SketchStore, SketchWriter,
        SnapshotError, SpecBackend, SpecError, StreamEvent, Threshold, WindowSpec,
    };
}
