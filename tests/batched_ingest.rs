//! Differential proof of the batched ingest fast path: for **every**
//! window-counter implementation and **every** ECM backend, the weighted /
//! batched entry points must produce state *bit-identical* (byte-equal
//! encodings) to the equivalent sequential insert loop — including the
//! id-sampled randomized wave, whose weighted path must consume the same
//! per-occurrence arrival ids the loop would. Traces are random with
//! bursts, same-tick ties, and window-spanning gaps.
//!
//! The generators are seeded (`stream_gen::SeededRng`), so every case is
//! reproducible; each property runs over many sampled traces.

use ecm_suite::ecm::{
    CountBasedEcm, CountBasedHierarchy, EcmBuilder, EcmConfig, EcmHierarchy, EcmSketch, ShardedEcm,
    StreamEvent,
};
use ecm_suite::sliding_window::traits::WindowCounter;
use ecm_suite::sliding_window::{
    DeterministicWave, DwConfig, EhConfig, EquiWidthConfig, EquiWidthWindow, ExactWindow,
    ExactWindowConfig, ExponentialHistogram, RandomizedWave, RwConfig,
};
use ecm_suite::stream_gen::SeededRng;

/// One weighted trace step: a gap, then a burst of one key at one tick.
#[derive(Debug, Clone, Copy)]
struct Burst {
    gap: u64,
    key: u64,
    weight: u64,
}

/// Random bursty trace: mostly small runs, a heavy tail of large ones, and
/// occasional gaps long enough to expire the whole window.
fn random_bursts(rng: &mut SeededRng, steps: usize, window: u64, keys: u64) -> Vec<Burst> {
    (0..steps)
        .map(|_| {
            let gap = if rng.gen_bool(0.05) {
                window + rng.gen_range(1..window.max(2))
            } else {
                rng.gen_range(0..5u64)
            };
            let weight = if rng.gen_bool(0.4) {
                1 + rng.gen_range(0..3u64)
            } else {
                1 + rng.gen_range(0..200u64)
            };
            Burst {
                gap,
                key: rng.gen_range(0..keys),
                weight,
            }
        })
        .collect()
}

fn encode_of<W: WindowCounter>(w: &W) -> Vec<u8> {
    let mut buf = Vec::new();
    w.encode(&mut buf);
    buf
}

/// Window-counter level: trait `insert_weighted` vs the id-incrementing
/// insert loop, byte-identical encodings on every trace.
fn counter_differential<W: WindowCounter>(cfg: &W::Config, label: &str, seed: u64) {
    let mut rng = SeededRng::seed_from_u64(seed);
    for case in 0..25 {
        let bursts = random_bursts(&mut rng, 40, 1_000, 1);
        let mut seq = W::new(cfg);
        let mut fast = W::new(cfg);
        let mut ts = 1u64;
        let mut id = 1u64;
        for b in &bursts {
            ts += b.gap;
            for k in 0..b.weight {
                seq.insert(ts, id + k);
            }
            fast.insert_weighted(ts, id, b.weight);
            id += b.weight;
        }
        assert_eq!(
            encode_of(&seq),
            encode_of(&fast),
            "{label} case {case}: weighted path diverged"
        );
        // Estimates must agree too (implied by the encoding, asserted for
        // the randomized wave's sake where estimates are the contract).
        for range in [1u64, 17, 500, 1_000] {
            assert_eq!(seq.query(ts, range), fast.query(ts, range));
        }
    }
}

#[test]
fn window_counters_weighted_equals_sequential() {
    counter_differential::<ExponentialHistogram>(&EhConfig::new(0.1, 1_000), "eh", 11);
    counter_differential::<ExponentialHistogram>(&EhConfig::new(0.4, 50), "eh-coarse", 12);
    counter_differential::<DeterministicWave>(&DwConfig::new(0.1, 1_000, 300_000), "dw", 13);
    counter_differential::<DeterministicWave>(&DwConfig::new(0.5, 60, 5_000), "dw-tight", 14);
    counter_differential::<RandomizedWave>(&RwConfig::new(0.3, 0.2, 1_000, 300_000, 99), "rw", 15);
    counter_differential::<RandomizedWave>(&RwConfig::new(0.5, 0.4, 80, 4_000, 7), "rw-small", 16);
    counter_differential::<ExactWindow>(&ExactWindowConfig::new(1_000), "exact", 17);
    counter_differential::<EquiWidthWindow>(&EquiWidthConfig::new(1_000, 20), "ew", 18);
}

/// Sketch level: `insert_weighted` + `ingest_batch` vs the per-event loop,
/// byte-identical sketches for every backend.
fn sketch_differential<W: WindowCounter>(cfg: &EcmConfig<W>, label: &str, seed: u64) {
    let mut rng = SeededRng::seed_from_u64(seed);
    for case in 0..10 {
        let bursts = random_bursts(&mut rng, 60, 1_000, 32);
        let mut seq = EcmSketch::new(cfg);
        let mut weighted = EcmSketch::new(cfg);
        let mut batched = EcmSketch::new(cfg);
        let mut events = Vec::new();
        let mut ts = 1u64;
        for b in &bursts {
            ts += b.gap;
            for _ in 0..b.weight {
                seq.insert(b.key, ts);
                events.push(StreamEvent::new(b.key, ts));
            }
            weighted.insert_weighted(b.key, ts, b.weight);
        }
        batched.ingest_batch(&events);

        let (mut a, mut b_, mut c) = (Vec::new(), Vec::new(), Vec::new());
        seq.encode(&mut a);
        weighted.encode(&mut b_);
        batched.encode(&mut c);
        assert_eq!(a, b_, "{label} case {case}: insert_weighted diverged");
        assert_eq!(a, c, "{label} case {case}: ingest_batch diverged");
    }
}

#[test]
fn ecm_backends_batched_equals_sequential() {
    let b = EcmBuilder::new(0.15, 0.1, 1_000)
        .max_arrivals(400_000)
        .seed(5);
    sketch_differential(&b.eh_config(), "ecm-eh", 21);
    sketch_differential(&b.dw_config(), "ecm-dw", 22);
    sketch_differential(&b.rw_config(), "ecm-rw", 23);
    sketch_differential(&b.exact_config(), "ecm-exact", 24);
    sketch_differential(&b.ew_config(16), "ecm-ew", 25);
}

#[test]
fn hierarchy_batched_equals_sequential() {
    let cfg = EcmBuilder::new(0.2, 0.1, 1_000).seed(31).eh_config();
    let mut rng = SeededRng::seed_from_u64(41);
    for case in 0..6 {
        let bursts = random_bursts(&mut rng, 50, 1_000, 256);
        let mut seq = EcmHierarchy::new(8, &cfg);
        let mut batched = EcmHierarchy::new(8, &cfg);
        let mut events = Vec::new();
        let mut ts = 1u64;
        for b in &bursts {
            ts += b.gap;
            for _ in 0..b.weight {
                seq.insert(b.key, ts);
                events.push(StreamEvent::new(b.key, ts));
            }
        }
        batched.ingest_batch(&events);
        let (mut a, mut b_) = (Vec::new(), Vec::new());
        seq.encode(&mut a);
        batched.encode(&mut b_);
        assert_eq!(a, b_, "hierarchy case {case}: ingest_batch diverged");
    }
}

#[test]
fn count_based_batched_equals_sequential() {
    // Count-based bursts advance the clock per occurrence; the fast path
    // must replicate the exact per-arrival ticks and ids.
    let cfg = EcmBuilder::new(0.15, 0.1, 500).seed(51).eh_config();
    let rw_cfg = EcmBuilder::new(0.3, 0.2, 500)
        .max_arrivals(200_000)
        .seed(51)
        .rw_config();
    let mut rng = SeededRng::seed_from_u64(61);
    for case in 0..6 {
        let bursts = random_bursts(&mut rng, 50, 500, 16);
        let items: Vec<u64> = bursts
            .iter()
            .flat_map(|b| std::iter::repeat_n(b.key, b.weight as usize))
            .collect();

        let mut seq: CountBasedEcm = CountBasedEcm::new(&cfg);
        let mut batched: CountBasedEcm = CountBasedEcm::new(&cfg);
        let mut seq_rw = CountBasedEcm::<RandomizedWave>::new(&rw_cfg);
        let mut batched_rw = CountBasedEcm::<RandomizedWave>::new(&rw_cfg);
        for &x in &items {
            seq.insert(x);
            seq_rw.insert(x);
        }
        batched.ingest_batch(&items);
        batched_rw.ingest_batch(&items);
        assert_eq!(batched.arrivals(), seq.arrivals());
        let (mut a, mut b2) = (Vec::new(), Vec::new());
        seq.as_inner().encode(&mut a);
        batched.as_inner().encode(&mut b2);
        assert_eq!(a, b2, "count-based eh case {case} diverged");
        let (mut a, mut b2) = (Vec::new(), Vec::new());
        seq_rw.as_inner().encode(&mut a);
        batched_rw.as_inner().encode(&mut b2);
        assert_eq!(a, b2, "count-based rw case {case} diverged");

        let mut seq_h: CountBasedHierarchy = CountBasedHierarchy::new(6, &cfg);
        let mut batched_h: CountBasedHierarchy = CountBasedHierarchy::new(6, &cfg);
        for &x in &items {
            seq_h.insert(x % 64);
        }
        let capped: Vec<u64> = items.iter().map(|&x| x % 64).collect();
        batched_h.ingest_batch(&capped);
        let (mut a, mut b2) = (Vec::new(), Vec::new());
        seq_h.as_inner().encode(&mut a);
        batched_h.as_inner().encode(&mut b2);
        assert_eq!(a, b2, "count-based hierarchy case {case} diverged");
    }
}

/// Encode every shard of a sharded sketch (the bit-identity witness).
fn encode_shards<W: WindowCounter>(sh: &ShardedEcm<W>) -> Vec<Vec<u8>> {
    sh.shard_sketches()
        .iter()
        .map(|sk| {
            let mut buf = Vec::new();
            sk.encode(&mut buf);
            buf
        })
        .collect()
}

/// `ShardedEcm::ingest_parallel` claims bit-determinism (module docs at
/// crates/ecm/src/concurrent.rs) — enforce it byte-for-byte against
/// sequential insertion, including the batched channel shipping and the
/// pre-partitioned and `ingest_batch` paths, over random bursty streams.
#[test]
fn sharded_parallel_is_bit_identical_to_sequential() {
    let mut rng = SeededRng::seed_from_u64(71);
    for case in 0..8 {
        let shards = 1 + (case % 5);
        let cfg = EcmBuilder::new(0.2, 0.1, 2_000).seed(9).eh_config();
        let bursts = random_bursts(&mut rng, 80, 2_000, 64);
        let mut pairs = Vec::new();
        let mut ts = 1u64;
        for b in &bursts {
            ts += b.gap;
            for _ in 0..b.weight {
                pairs.push((b.key, ts));
            }
        }

        let mut seq = ShardedEcm::<ExponentialHistogram>::new(&cfg, shards);
        for &(k, t) in &pairs {
            seq.insert(k, t);
        }
        let want = encode_shards(&seq);

        let chan = ShardedEcm::<ExponentialHistogram>::ingest_parallel(
            &cfg,
            shards,
            pairs.iter().copied(),
        );
        assert_eq!(
            encode_shards(&chan),
            want,
            "case {case}: channel-fed shards diverged"
        );

        let parts = ecm_suite::ecm::partition_pairs(pairs.iter().copied(), shards, cfg.seed);
        let pre = ShardedEcm::<ExponentialHistogram>::ingest_prepartitioned(&cfg, parts);
        assert_eq!(
            encode_shards(&pre),
            want,
            "case {case}: pre-partitioned shards diverged"
        );

        let events: Vec<StreamEvent> = pairs.iter().map(|&(k, t)| StreamEvent::new(k, t)).collect();
        let mut batched = ShardedEcm::<ExponentialHistogram>::new(&cfg, shards);
        batched.ingest_batch(&events);
        assert_eq!(
            encode_shards(&batched),
            want,
            "case {case}: ingest_batch shards diverged"
        );
    }
}

/// The same determinism holds for the id-sampled randomized wave, whose
/// weighted path must hand each occurrence the id the sequential dispatch
/// would have assigned within its shard.
#[test]
fn sharded_parallel_is_bit_identical_for_randomized_waves() {
    let mut rng = SeededRng::seed_from_u64(81);
    let cfg = EcmBuilder::new(0.3, 0.2, 2_000)
        .max_arrivals(100_000)
        .seed(9)
        .rw_config();
    for case in 0..4 {
        let shards = 2 + (case % 3);
        let bursts = random_bursts(&mut rng, 60, 2_000, 48);
        let mut pairs = Vec::new();
        let mut ts = 1u64;
        for b in &bursts {
            ts += b.gap;
            for _ in 0..b.weight {
                pairs.push((b.key, ts));
            }
        }
        let mut seq = ShardedEcm::<RandomizedWave>::new(&cfg, shards);
        for &(k, t) in &pairs {
            seq.insert(k, t);
        }
        let chan =
            ShardedEcm::<RandomizedWave>::ingest_parallel(&cfg, shards, pairs.iter().copied());
        assert_eq!(
            encode_shards(&chan),
            encode_shards(&seq),
            "case {case}: randomized-wave shards diverged"
        );
    }
}
