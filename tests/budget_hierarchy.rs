//! Multi-level error budgeting end to end (paper §5.1): a
//! [`HierarchyPlan`]-budgeted aggregation tree of full ECM-sketches must
//! observe its end-to-end point-query error target at the root, while the
//! un-budgeted deployment with the same target is measurably worse on deep
//! trees.

use ecm_suite::distributed::{achieved_epsilon, aggregate_tree, HierarchyPlan};
use ecm_suite::ecm::{EcmBuilder, EcmConfig, EcmEh, Query, SketchReader, WindowSpec};
use ecm_suite::sliding_window::{EhConfig, ExponentialHistogram};
use ecm_suite::stream_gen::{partition_by_site, uniform_sites, WindowOracle};

const WINDOW: u64 = 1_000_000;

fn measure_root_error(
    cfg: &EcmConfig<ExponentialHistogram>,
    events: &[ecm_suite::stream_gen::Event],
    oracle: &WindowOracle,
    sites: usize,
) -> f64 {
    let parts = partition_by_site(events, sites as u32);
    let out = aggregate_tree(
        sites,
        |i| {
            let mut sk = EcmEh::new(cfg);
            sk.set_id_namespace(i as u64 + 1);
            for e in &parts[i] {
                sk.insert(e.key, e.ts);
            }
            sk
        },
        &cfg.cell,
    )
    .unwrap();
    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;
    let mut worst = 0.0f64;
    for key in 0..3_000u64 {
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        if exact == 0.0 {
            continue;
        }
        let est = out
            .query(&Query::point(key), WindowSpec::time(now, WINDOW))
            .unwrap()
            .into_value()
            .value;
        worst = worst.max((est - exact).abs() / norm);
    }
    worst
}

#[test]
fn budgeted_tree_meets_the_plan_target() {
    let target = 0.15;
    let sites = 16usize;
    let events = uniform_sites(40_000, sites as u32, 31);
    let oracle = WindowOracle::from_events(&events);

    let plan = HierarchyPlan::point_queries(target, 0.05, WINDOW, sites, 40_000);
    // Build sketches with the plan's budgeted site ε on the window side and
    // the fixed hashing dimensions.
    let cfg = EcmConfig {
        width: plan.width,
        depth: plan.depth,
        seed: 3,
        cell: EhConfig::new(plan.site_epsilon, WINDOW),
    };
    let worst = measure_root_error(&cfg, &events, &oracle, sites);
    assert!(
        worst <= target,
        "budgeted root must meet its end-to-end target: worst={worst} target={target}"
    );
}

#[test]
fn unbudgeted_eh_tree_is_worse_than_budgeted_on_deep_trees() {
    // Paper Table 4's distributed-aggregation loss, isolated to the window
    // dimension: in a full ECM tree the observed error is dominated by hash
    // collisions (identical in both deployments), so the budgeting effect is
    // only cleanly measurable on raw exponential-histogram hierarchies,
    // where bucket granularity is the *only* error source.
    use ecm_suite::sliding_window::{merge_exponential_histograms, ExponentialHistogram as Eh};

    let target = 0.2;
    let sites = 64usize;
    let levels = 6u32;
    let run = |site_eps: f64, seed: u64| -> f64 {
        let cfg = EhConfig::new(site_eps, WINDOW);
        let events = uniform_sites(40_000, sites as u32, seed);
        let mut ehs: Vec<Eh> = (0..sites).map(|_| Eh::new(&cfg)).collect();
        let mut truth: Vec<u64> = Vec::with_capacity(events.len());
        let mut now = 0u64;
        for e in &events {
            ehs[e.site as usize].insert_one(e.ts);
            truth.push(e.ts);
            now = e.ts;
        }
        // Pairwise merge up all six levels.
        let mut layer = ehs;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    let refs: Vec<&Eh> = pair.iter().collect();
                    merge_exponential_histograms(&refs, &cfg).unwrap()
                })
                .collect();
        }
        let root = &layer[0];
        // Average relative count error over many sub-window ranges, where
        // bucket granularity bites.
        let mut sum = 0.0;
        let mut n = 0u32;
        for i in 1..=40u64 {
            let range = WINDOW * i / 40;
            let cutoff = now - range;
            let exact = truth.iter().filter(|&&t| t > cutoff).count() as f64;
            if exact < 100.0 {
                continue;
            }
            sum += (root.estimate(now, range) - exact).abs() / exact;
            n += 1;
        }
        sum / f64::from(n.max(1))
    };

    let plan = HierarchyPlan::point_queries(target, 0.05, WINDOW, sites, 40_000);
    assert_eq!(plan.levels, levels);
    let mut budgeted_sum = 0.0;
    let mut plain_sum = 0.0;
    for seed in [5u64, 6, 7] {
        budgeted_sum += run(plan.site_epsilon, seed);
        // Un-budgeted: sites spend the whole window share locally.
        plain_sum += run(plan.window_epsilon, seed);
    }
    assert!(
        budgeted_sum < plain_sum,
        "budgeting must reduce window error: budgeted={budgeted_sum} plain={plain_sum}"
    );
    // And the budgeted deployment stays within its window-error share.
    assert!(
        budgeted_sum / 3.0 <= plan.window_epsilon,
        "avg budgeted error {} above window share {}",
        budgeted_sum / 3.0,
        plan.window_epsilon
    );
}

#[test]
fn plan_memory_prediction_is_the_right_order() {
    // The plan's sketch-byte prediction is an upper-bound-flavored estimate;
    // it must land within an order of magnitude of a real budgeted sketch
    // and on the conservative side.
    let sites = 8usize;
    let events = uniform_sites(50_000, sites as u32, 12);
    let plan = HierarchyPlan::point_queries(0.1, 0.05, WINDOW, sites, 50_000);
    let cfg = EcmConfig {
        width: plan.width,
        depth: plan.depth,
        seed: 1,
        cell: EhConfig::new(plan.site_epsilon, WINDOW),
    };
    let parts = partition_by_site(&events, sites as u32);
    let mut sk = EcmEh::new(&cfg);
    for e in &parts[0] {
        sk.insert(e.key, e.ts);
    }
    let actual = sk.encoded_len() as u64;
    assert!(
        plan.sketch_bytes >= actual / 4,
        "prediction {} far below actual {}",
        plan.sketch_bytes,
        actual
    );
    assert!(
        plan.sketch_bytes <= actual * 40,
        "prediction {} wildly above actual {}",
        plan.sketch_bytes,
        actual
    );
}

#[test]
fn forward_recursion_matches_builder_budgets() {
    // The EcmBuilder Theorem 1 split and the budget module must agree: a
    // plan's window share run through the forward recursion at the plan's
    // site ε reproduces the target share.
    for &(target, sites) in &[(0.1, 4usize), (0.2, 33), (0.1, 256)] {
        let plan = HierarchyPlan::point_queries(target, 0.1, WINDOW, sites, 10_000);
        let forward = achieved_epsilon(plan.site_epsilon, plan.levels);
        assert!(
            (forward - plan.window_epsilon).abs() < 1e-9,
            "target={target} sites={sites}"
        );
        // And the builder's split at the same ε target agrees with the
        // plan's hashing share.
        let builder_cfg = EcmBuilder::new(target, 0.1, WINDOW).eh_config();
        assert_eq!(builder_cfg.width, plan.width);
    }
}
