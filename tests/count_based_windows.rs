//! Count-based sliding windows (paper §4.2.1) and the impossibility of
//! their order-preserving aggregation (paper Fig. 2).

use ecm::{EcmBuilder, EcmEh, Query, SketchReader, WindowSpec};
use sliding_window::traits::WindowCounter;
use sliding_window::{EhConfig, ExponentialHistogram};
use std::collections::HashMap;

/// Count-based ECM: ticks are the global arrival index; a window of N
/// covers the last N arrivals.
#[test]
fn count_based_point_queries() {
    let window = 5_000u64; // last 5000 arrivals
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.1, window).seed(4).eh_config();
    let mut sk = EcmEh::new(&cfg);
    let mut log: Vec<u64> = Vec::new();
    for i in 1..=20_000u64 {
        let key = i % 37;
        sk.insert(key, i); // tick = arrival index
        log.push(key);
    }
    let now = 20_000u64;
    for range in [500u64, 5_000] {
        let recent = &log[log.len() - range as usize..];
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in recent {
            *truth.entry(k).or_insert(0) += 1;
        }
        for key in 0..37u64 {
            let exact = *truth.get(&key).unwrap_or(&0) as f64;
            // The counters are clock-agnostic: with arrival-index ticks a
            // "time" window of N is exactly the last N arrivals.
            let est = sk
                .query(&Query::point(key), WindowSpec::time(now, range))
                .unwrap()
                .into_value()
                .value;
            assert!(
                (est - exact).abs() <= eps * range as f64 + 1.0,
                "key={key} range={range} est={est} exact={exact}"
            );
        }
    }
}

/// Paper Fig. 2: local count-based summaries cannot be composed in an
/// order-preserving way — we exhibit two *different* global interleavings
/// that produce byte-identical local summaries but different true answers
/// to "how many of stream A's arrivals are among the last K global
/// arrivals?", so no merge function can be correct for both.
#[test]
fn count_based_merge_is_information_theoretically_impossible() {
    // Stream A arrives at local positions 1..=10 (its own count-based
    // clock); stream B likewise. Local summaries see ONLY local positions.
    let build_local = |n: u64| {
        let mut eh = ExponentialHistogram::new(&EhConfig::new(0.1, 1_000));
        for i in 1..=n {
            eh.insert_one(i);
        }
        let mut buf = Vec::new();
        eh.encode(&mut buf);
        buf
    };
    let a_summary = build_local(10);
    let b_summary = build_local(90);

    // Interleaving 1: all of A first, then all of B.
    // Interleaving 2: all of B first, then all of A.
    // Per-stream local orders are identical, so the local summaries are
    // byte-identical in both worlds:
    assert_eq!(a_summary, build_local(10));
    assert_eq!(b_summary, build_local(90));

    // Ground truth for "A-arrivals among the last 50 global arrivals":
    let truth = |interleaved: &[char], k: usize| -> usize {
        interleaved[interleaved.len() - k..]
            .iter()
            .filter(|&&c| c == 'a')
            .count()
    };
    let world1: Vec<char> = "a"
        .repeat(10)
        .chars()
        .chain("b".repeat(90).chars())
        .collect();
    let world2: Vec<char> = "b"
        .repeat(90)
        .chars()
        .chain("a".repeat(10).chars())
        .collect();
    let t1 = truth(&world1, 50);
    let t2 = truth(&world2, 50);
    assert_eq!(t1, 0, "world 1: A's arrivals are ancient");
    assert_eq!(t2, 10, "world 2: A's arrivals are the most recent");
    // Identical inputs, different required outputs ⇒ no correct merge
    // exists. (Time-based windows dodge this: wall-clock timestamps encode
    // the interleaving.)
    assert_ne!(t1, t2);
}

/// The same ECM-sketch code serves count-based windows by feeding the
/// arrival index as the tick — check window expiry semantics directly.
#[test]
fn count_based_window_expires_by_arrival_count() {
    let window = 100u64;
    let cfg = EhConfig::new(0.1, window);
    let mut eh = ExponentialHistogram::new(&cfg);
    for i in 1..=1_000u64 {
        eh.insert_one(i);
    }
    // Exactly the last 100 arrivals are in the window.
    let est = eh.query(1_000, window);
    assert!((est - 100.0).abs() <= 0.1 * 100.0, "est={est}, want ≈ 100");
    // A longer range cannot see beyond the window.
    assert_eq!(eh.query(1_000, 10_000), est);
}
