//! End-to-end reproduction of the paper's motivating scenario (§1): a
//! distributed network monitor detecting a DDoS-style flash crowd.
//!
//! Sites summarize their local traffic with ECM-sketches; sketches are
//! aggregated up a tree (paper §5); the coordinator runs sliding-window
//! heavy-hitter detection on the aggregate (paper §6.1). A flash crowd
//! injected by the scenario generator must surface as a heavy hitter during
//! the attack window and age out of the report afterwards.
//!
//! Sliding-window synopses only answer queries about the *present* window,
//! so each test replays the trace and queries at checkpoints: mid-attack and
//! well after the attack.

use ecm_suite::ecm::{EcmBuilder, EcmEh, EcmHierarchy, Query, SketchReader, Threshold, WindowSpec};
use ecm_suite::stream_gen::{inject_flash_crowd, uniform_sites, Event, FlashCrowd, WindowOracle};

const WINDOW: u64 = 200_000;
const SITES: u32 = 8;
const TARGET: u64 = 4242;

/// Trace with an injected flash crowd; returns (events, mid_attack, after).
fn attacked_trace(n_base: usize) -> (Vec<Event>, u64, u64) {
    let base = uniform_sites(n_base, SITES, 17);
    let start = 1_500_000u64;
    let duration = WINDOW / 2;
    let events = inject_flash_crowd(
        &base,
        &FlashCrowd {
            target_key: TARGET,
            start,
            duration,
            volume: n_base / 4,
            sources: SITES,
            seed: 7,
        },
    );
    (events, start + duration, start + duration + 2 * WINDOW)
}

#[test]
fn aggregated_sketch_sees_the_attack() {
    let (events, mid_attack, after) = attacked_trace(40_000);
    let oracle = WindowOracle::from_events(&events);
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(3).eh_config();

    let mut sites: Vec<EcmEh> = (0..SITES)
        .map(|i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(u64::from(i) + 1);
            sk
        })
        .collect();
    let h = 3.0; // ⌈log₂ 8⌉ aggregation levels
    let check = |sites: &[EcmEh], now: u64, expect_attack: bool| {
        let refs: Vec<&EcmEh> = sites.iter().collect();
        let root = EcmEh::merge(&refs, &cfg.cell).unwrap();
        let exact = oracle.frequency(TARGET, now, WINDOW) as f64;
        let est = root
            .query(&Query::point(TARGET), WindowSpec::time(now, WINDOW))
            .unwrap()
            .into_value()
            .value;
        let norm = oracle.total(now, WINDOW) as f64;
        let envelope = (h * eps * (1.0 + eps) + eps + 0.05) * norm;
        assert!(
            (est - exact).abs() <= envelope,
            "now={now} est={est} exact={exact} envelope={envelope}"
        );
        if expect_attack {
            assert!(exact > 5_000.0, "attack volume missing from the oracle");
            assert!(est > 5_000.0 - envelope, "attack invisible at the root");
        } else {
            assert!(exact < 100.0, "oracle sanity: burst must have aged");
        }
    };

    let mut it = events.iter().peekable();
    while let Some(e) = it.peek() {
        if e.ts > mid_attack {
            break;
        }
        let e = it.next().unwrap();
        sites[e.site as usize].insert(e.key, e.ts);
    }
    check(&sites, mid_attack, true);
    for e in it {
        if e.ts > after {
            break;
        }
        sites[e.site as usize].insert(e.key, e.ts);
    }
    check(&sites, after, false);
}

#[test]
fn hierarchy_flags_the_target_as_heavy_hitter_only_during_attack() {
    let (events, mid_attack, after) = attacked_trace(30_000);
    let eps = 0.05;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(11).eh_config();
    let mut h = EcmHierarchy::new(16, &cfg);

    let mut it = events.iter().peekable();
    while let Some(e) = it.peek() {
        if e.ts > mid_attack {
            break;
        }
        let e = it.next().unwrap();
        h.insert(e.key, e.ts);
    }

    // φ = 5% of window arrivals: far above any organic key (50k keys,
    // near-uniform background), far below the burst.
    let hh = h
        .query(
            &Query::heavy_hitters(Threshold::Relative(0.05)),
            WindowSpec::time(mid_attack, WINDOW),
        )
        .unwrap()
        .into_heavy_hitters();
    assert!(
        hh.iter().any(|&(k, _)| k == TARGET),
        "attack target missing from heavy hitters: {hh:?}"
    );
    // Theorem 5 semantics: with a uniform background, only the target (and
    // possibly a collision artifact or two) can clear the threshold.
    assert!(
        hh.len() <= 3,
        "background keys misreported as heavy: {hh:?}"
    );

    for e in it {
        if e.ts > after {
            break;
        }
        h.insert(e.key, e.ts);
    }
    let hh_after = h
        .query(
            &Query::heavy_hitters(Threshold::Relative(0.05)),
            WindowSpec::time(after, WINDOW),
        )
        .unwrap()
        .into_heavy_hitters();
    assert!(
        hh_after.iter().all(|&(k, _)| k != TARGET),
        "aged-out attack still reported: {hh_after:?}"
    );
}

#[test]
fn per_site_thresholds_fire_at_attacking_sites() {
    // The Jain et al. scheme the paper cites: each node tracks per-target
    // sliding-window counts and triggers when a count exceeds its share.
    let (events, mid_attack, _) = attacked_trace(24_000);
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW).seed(23).eh_config();

    let mut sites: Vec<EcmEh> = (0..SITES).map(|_| EcmEh::new(&cfg)).collect();
    for e in &events {
        if e.ts > mid_attack {
            break;
        }
        sites[e.site as usize].insert(e.key, e.ts);
    }

    // Per-site share of the attack ≈ volume / SITES ≈ 750; organic per-key
    // mass per site is ≈ 0.1. A threshold between the two must fire at
    // every attacked site and at none for an innocent key.
    let mut firing = 0u32;
    let mut innocent_firing = 0u32;
    for sk in &sites {
        let w = WindowSpec::time(mid_attack, WINDOW);
        if sk
            .query(&Query::point(TARGET), w)
            .unwrap()
            .into_value()
            .value
            > 200.0
        {
            firing += 1;
        }
        if sk
            .query(&Query::point(TARGET + 1), w)
            .unwrap()
            .into_value()
            .value
            > 200.0
        {
            innocent_firing += 1;
        }
    }
    assert_eq!(firing, SITES, "every attacked site must trip its trigger");
    assert_eq!(innocent_firing, 0, "innocent keys must stay quiet");
}
