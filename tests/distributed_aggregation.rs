//! Cross-crate distributed pipeline: per-site sketches, wire round-trips,
//! tree aggregation, and root accuracy against the oracle (papers §5, §7.3).

use distributed::aggregate_tree;
use ecm::{EcmBuilder, EcmEh, EcmRw, EcmSketch, Query, SketchReader, WindowSpec};

/// Route a point query through the unified typed API (works identically
/// for a plain sketch and for a whole aggregation outcome).
fn point(reader: &dyn SketchReader, key: u64, now: u64, range: u64) -> f64 {
    reader
        .query(&Query::point(key), WindowSpec::time(now, range))
        .expect("in-window query must succeed")
        .into_value()
        .value
}
use stream_gen::{partition_by_site, uniform_sites, worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;

#[test]
fn tree_root_tracks_oracle_at_33_sites() {
    let events = worldcup_like(60_000, 42);
    let oracle = WindowOracle::from_events(&events);
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.1, WINDOW).seed(3).eh_config();
    let parts = partition_by_site(&events, 33);

    let out = aggregate_tree(
        33,
        |i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(i as u64 + 1);
            for e in &parts[i] {
                sk.insert(e.key, e.ts);
            }
            sk
        },
        &cfg.cell,
    )
    .unwrap();

    assert_eq!(out.stats.levels, 6);
    assert_eq!(out.root.lifetime_arrivals(), events.len() as u64);

    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;
    // Multi-level worst case at h = 6 is large; the paper observes (and we
    // assert) errors below even the single-level ε.
    let mut avg_err = 0.0;
    let mut n = 0;
    for key in oracle.keys().take(400) {
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        let est = point(&out, key, now, WINDOW);
        avg_err += (est - exact).abs() / norm;
        n += 1;
    }
    avg_err /= f64::from(n);
    assert!(
        avg_err < eps,
        "avg distributed error {avg_err} should sit below ε = {eps}"
    );
}

#[test]
fn aggregation_through_the_wire_round_trips() {
    // Simulate the real protocol: children *encode* their sketches, the
    // parent decodes and merges — estimates must match in-memory merging.
    let events = worldcup_like(20_000, 5);
    let cfg = EcmBuilder::new(0.15, 0.1, WINDOW).seed(11).eh_config();
    // Fold the trace's 33 sites onto 4 aggregating gateways.
    let mut parts: Vec<Vec<&stream_gen::Event>> = vec![Vec::new(); 4];
    for e in &events {
        parts[(e.site % 4) as usize].push(e);
    }

    let sketches: Vec<EcmEh> = (0..4)
        .map(|i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(i as u64 + 1);
            for e in &parts[i] {
                sk.insert(e.key, e.ts);
            }
            sk
        })
        .collect();

    // Ship through the codec.
    let decoded: Vec<EcmEh> = sketches
        .iter()
        .map(|sk| {
            let mut buf = Vec::new();
            sk.encode(&mut buf);
            let mut slice = buf.as_slice();
            let back = EcmEh::decode(&cfg, &mut slice).unwrap();
            assert!(slice.is_empty());
            back
        })
        .collect();

    let direct = EcmSketch::merge(&sketches.iter().collect::<Vec<_>>(), &cfg.cell).unwrap();
    let wired = EcmSketch::merge(&decoded.iter().collect::<Vec<_>>(), &cfg.cell).unwrap();

    let now = events.last().unwrap().ts;
    for key in [0u64, 1, 5, 100, 1000, 40_000] {
        for range in [10_000u64, WINDOW] {
            assert_eq!(
                point(&direct, key, now, range),
                point(&wired, key, now, range),
                "key={key} range={range}"
            );
        }
    }
}

#[test]
fn rw_tree_equals_centralized_sketch_exactly() {
    // Lossless composition across a whole tree (paper §5.2): the root of a
    // 16-leaf ECM-RW aggregation must answer *identically* to a sketch that
    // saw the union stream, when ids are globally unique and shared.
    let n_sites = 16u32;
    let events = uniform_sites(12_000, n_sites, 33);
    let cfg = EcmBuilder::new(0.25, 0.1, WINDOW)
        .max_arrivals(events.len() as u64)
        .seed(21)
        .rw_config();

    let mut central = EcmRw::new(&cfg);
    for (i, e) in events.iter().enumerate() {
        central.insert_with_id(e.key, e.ts, i as u64 + 1);
    }
    let mut per_site: Vec<EcmRw> = (0..n_sites).map(|_| EcmRw::new(&cfg)).collect();
    for (i, e) in events.iter().enumerate() {
        per_site[e.site as usize].insert_with_id(e.key, e.ts, i as u64 + 1);
    }

    let out = aggregate_tree(n_sites as usize, |i| per_site[i].clone(), &cfg.cell).unwrap();
    let now = events.last().unwrap().ts;
    for key in (0..50_000u64).step_by(997) {
        for range in [50_000u64, WINDOW] {
            assert_eq!(
                point(&out, key, now, range),
                point(&central, key, now, range),
                "key={key} range={range}"
            );
        }
    }
}

#[test]
fn transfer_volume_shape_eh_vs_rw() {
    // Figs. 5–6 headline: RW aggregation costs an order of magnitude more
    // network than EH at matched ε.
    let n_sites = 8u32;
    let events = uniform_sites(30_000, n_sites, 7);
    let b = EcmBuilder::new(0.1, 0.1, WINDOW)
        .max_arrivals(events.len() as u64)
        .seed(13);
    let cfg_eh = b.eh_config();
    let cfg_rw = b.rw_config();

    let mut per_site_events: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); n_sites as usize];
    for (i, e) in events.iter().enumerate() {
        per_site_events[e.site as usize].push((e.key, e.ts, i as u64 + 1));
    }

    let out_eh = aggregate_tree(
        n_sites as usize,
        |i| {
            let mut sk = EcmEh::new(&cfg_eh);
            for &(k, t, id) in &per_site_events[i] {
                sk.insert_with_id(k, t, id);
            }
            sk
        },
        &cfg_eh.cell,
    )
    .unwrap();
    let out_rw = aggregate_tree(
        n_sites as usize,
        |i| {
            let mut sk = EcmRw::new(&cfg_rw);
            for &(k, t, id) in &per_site_events[i] {
                sk.insert_with_id(k, t, id);
            }
            sk
        },
        &cfg_rw.cell,
    )
    .unwrap();

    assert!(
        out_rw.stats.bytes > 5 * out_eh.stats.bytes,
        "RW transfer {} should dwarf EH transfer {}",
        out_rw.stats.bytes,
        out_eh.stats.bytes
    );
}

#[test]
fn multilevel_epsilon_budgeting_keeps_root_on_target() {
    // §5.1 multi-level planning: initialize sites with the ε that makes an
    // h-level hierarchy land at the target error.
    use sliding_window::exponential_histogram::multilevel_epsilon;
    let events = uniform_sites(30_000, 8, 55);
    let oracle = WindowOracle::from_events(&events);
    let target = 0.1;
    let h = 3; // 8 leaves → 3 aggregation levels
    let site_eps = multilevel_epsilon(target, h);
    assert!(site_eps < target);

    let cfg = EcmBuilder::new(site_eps, 0.1, WINDOW).seed(17).eh_config();
    let parts = partition_by_site(&events, 8);
    let out = aggregate_tree(
        8,
        |i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(i as u64 + 1);
            for e in &parts[i] {
                sk.insert(e.key, e.ts);
            }
            sk
        },
        &cfg.cell,
    )
    .unwrap();

    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;
    for key in oracle.keys().take(300) {
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        let est = point(&out, key, now, WINDOW);
        assert!(
            (est - exact).abs() <= target * norm + 1.0,
            "key={key}: est {est} exact {exact} target {target}"
        );
    }
}
