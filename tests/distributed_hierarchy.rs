//! Distributed derived queries (paper §6.1 meets §5): per-site dyadic ECM
//! hierarchies are serialized, shipped to a coordinator, decoded, merged
//! order-preservingly, and then queried for sliding-window heavy hitters,
//! range sums and quantiles — the full pipeline of the paper's
//! network-monitoring application with byte-accurate wire hops.

use ecm_suite::ecm::{
    EcmBuilder, EcmConfig, EcmHierarchy, Query, SketchReader, Threshold, WindowSpec,
};
use ecm_suite::sliding_window::ExponentialHistogram;
use ecm_suite::stream_gen::{partition_by_site, uniform_sites, WindowOracle};

const WINDOW: u64 = 1_000_000;
const SITES: u32 = 6;
const BITS: u32 = 12;

fn build_site_hierarchies(
    cfg: &EcmConfig<ExponentialHistogram>,
    events: &[ecm_suite::stream_gen::Event],
) -> Vec<EcmHierarchy<ExponentialHistogram>> {
    let parts = partition_by_site(events, SITES);
    parts
        .iter()
        .map(|part| {
            let mut h = EcmHierarchy::new(BITS, cfg);
            for e in part {
                h.insert(e.key % (1 << BITS), e.ts);
            }
            h
        })
        .collect()
}

#[test]
fn coordinator_pipeline_over_the_wire() {
    let mut events = uniform_sites(40_000, SITES, 19);
    // Clamp keys into the hierarchy universe, mirroring what the sites do.
    for e in &mut events {
        e.key %= 1 << BITS;
    }
    // One hot key so heavy hitters are non-trivial.
    for e in events.iter_mut().step_by(10) {
        e.key = 321;
    }
    let oracle = WindowOracle::from_events(&events);
    let eps = 0.05;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(8).eh_config();
    let hierarchies = build_site_hierarchies(&cfg, &events);

    // Wire hop: every site encodes; the coordinator decodes.
    let mut transfer_bytes = 0u64;
    let decoded: Vec<EcmHierarchy<ExponentialHistogram>> = hierarchies
        .iter()
        .map(|h| {
            let mut buf = Vec::new();
            h.encode(&mut buf);
            transfer_bytes += buf.len() as u64;
            let mut input = buf.as_slice();
            let back = EcmHierarchy::decode(BITS, &cfg, &mut input).expect("wire decode");
            assert!(input.is_empty());
            back
        })
        .collect();
    assert!(transfer_bytes > 0);

    // Coordinator merge + queries.
    let refs: Vec<&EcmHierarchy<ExponentialHistogram>> = decoded.iter().collect();
    let global = EcmHierarchy::merge(&refs, &cfg.cell).unwrap();
    let now = oracle.last_tick();

    // Heavy hitters: key 321 holds 10% of the window; φ = 5%.
    let w = WindowSpec::time(now, WINDOW);
    let hh = global
        .query(&Query::heavy_hitters(Threshold::Relative(0.05)), w)
        .unwrap()
        .into_heavy_hitters();
    assert!(hh.iter().any(|&(k, _)| k == 321), "hot key missing: {hh:?}");
    assert!(hh.len() <= 3, "spurious heavy hitters: {hh:?}");

    // Range sums within the merged-error envelope (Theorem 4 inflation on
    // top of the dyadic budget).
    let norm = oracle.total(now, WINDOW) as f64;
    let h = 3.0; // ⌈log₂ 6⌉ merge levels... single merge call: 1 level
    let envelope = 2.0 * f64::from(BITS) * (eps * (1.0 + h)) * norm;
    for (lo, hi) in [(0u64, 4_095u64), (100, 400), (321, 321)] {
        let exact = oracle.range_sum(lo, hi, now, WINDOW) as f64;
        let est = global
            .query(&Query::range_sum(lo, hi), w)
            .unwrap()
            .into_value()
            .value;
        assert!(
            (est - exact).abs() <= envelope + 2.0,
            "[{lo},{hi}] est={est} exact={exact}"
        );
    }

    // Quantiles: the median key of the merged stream tracks the oracle's.
    let med = global
        .query(&Query::quantile(0.5), w)
        .unwrap()
        .into_quantile()
        .unwrap();
    let exact_med = oracle
        .quantile_by_rank(oracle.total(now, WINDOW) / 2, now, WINDOW)
        .unwrap();
    let med_mass = oracle.range_sum(0, med, now, WINDOW) as f64;
    let exact_mass = oracle.range_sum(0, exact_med, now, WINDOW) as f64;
    assert!(
        (med_mass - exact_mass).abs() <= 0.2 * norm,
        "median mass drift: est key {med} ({med_mass}), exact key {exact_med} ({exact_mass})"
    );
}

#[test]
fn wire_format_rejects_cross_config_decode() {
    let cfg_a = EcmBuilder::new(0.1, 0.1, WINDOW).seed(1).eh_config();
    let cfg_b = EcmBuilder::new(0.1, 0.1, WINDOW).seed(2).eh_config(); // different seed
    let mut h = EcmHierarchy::new(BITS, &cfg_a);
    for i in 1..=500u64 {
        h.insert(i % 100, i);
    }
    let mut buf = Vec::new();
    h.encode(&mut buf);
    let err = EcmHierarchy::<ExponentialHistogram>::decode(BITS, &cfg_b, &mut buf.as_slice());
    assert!(err.is_err(), "decoding with a mismatched seed must fail");
}
