//! Differential suite for the unified write API: a `SketchSpec`-built
//! `Box<dyn Sketch>` fed through the object-safe `SketchWriter` surface
//! (timestamp-first) must be **byte-identical** in its answers to the
//! hand-constructed concrete backend fed through its *inherent*
//! `(item, ts)`-order methods — for every backend, every ingest path
//! (single, weighted, batched), and every query the backend supports.
//! Plus the `SketchSpec` validation-error matrix.
//!
//! This is the write-side analogue of `tests/batched_ingest.rs`: f64
//! results are compared by bit pattern, not tolerance.

use ecm_suite::ecm::EcmSketch;
use ecm_suite::ecm::{
    grouped_runs, Answer, Backend, Clock, CountBasedEcm, CountBasedHierarchy, DecayedCm,
    EcmBuilder, EcmConfig, EcmEh, EcmHierarchy, Query, QueryError, ShardedEcm, Sketch,
    SketchReader, SketchSpec, SpecError, StreamEvent, Threshold, WindowSpec,
};
use ecm_suite::sliding_window::traits::WindowCounter;
use ecm_suite::sliding_window::ExponentialHistogram;
use ecm_suite::stream_gen::{SeededRng, ZipfSampler};

const WINDOW: u64 = 10_000;
const EVENTS: usize = 6_000;

/// A bursty Zipf trace (runs of equal events included, so the batched path
/// has something to group).
fn trace(seed: u64) -> Vec<StreamEvent> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let zipf = ZipfSampler::new(512, 1.1);
    let mut out = Vec::with_capacity(EVENTS);
    let mut ts = 1u64;
    while out.len() < EVENTS {
        ts += rng.gen_range(0..3u64);
        let key = zipf.sample(&mut rng);
        let run = if rng.gen_bool(0.25) {
            rng.gen_range(1..20u64)
        } else {
            1
        };
        for _ in 0..run {
            out.push(StreamEvent::new(key, ts));
        }
    }
    out
}

/// Assert two readers give bit-identical scalar answers for a query set.
fn assert_scalar_parity(
    concrete: &dyn SketchReader,
    boxed: &dyn SketchReader,
    queries: &[Query<'_>],
    w: WindowSpec,
    label: &str,
) {
    for q in queries {
        let a = concrete.query(q, w);
        let b = boxed.query(q, w);
        match (a, b) {
            (Ok(Answer::Value(ea)), Ok(Answer::Value(eb))) => {
                assert_eq!(
                    ea.value.to_bits(),
                    eb.value.to_bits(),
                    "{label}: {q:?} diverged ({} vs {})",
                    ea.value,
                    eb.value
                );
                assert_eq!(ea.guarantee, eb.guarantee, "{label}: {q:?} guarantee");
            }
            (a, b) => panic!("{label}: {q:?} gave {a:?} vs {b:?}"),
        }
    }
}

/// Split the trace into the three ingest spellings: per-event, weighted
/// runs, batched. Both sides of every parity test use the same split —
/// the *concrete* side through each backend's inherent `(item, ts)`-order
/// methods, the *boxed* side through the trait's `(ts, item)` order — so
/// an argument-swap bug in any `SketchWriter` impl corrupts exactly one
/// side and fails the bit comparison.
fn thirds(events: &[StreamEvent]) -> (&[StreamEvent], &[StreamEvent], &[StreamEvent]) {
    let third = events.len() / 3;
    (
        &events[..third],
        &events[third..2 * third],
        &events[2 * third..],
    )
}

/// Trait-side feeding of a spec-built `Box<dyn Sketch>`.
fn feed_trait(boxed: &mut dyn Sketch, events: &[StreamEvent]) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        boxed.insert(e.ts, e.item);
    }
    for (run, n) in grouped_runs(weighted) {
        boxed.insert_weighted(run.ts, run.item, n);
    }
    boxed.ingest_batch(batched);
}

/// Inherent-side feeding of a plain `EcmSketch<W>` (also each shard-less
/// building block the other shapes wrap).
fn feed_inherent_sketch<W: WindowCounter>(sk: &mut EcmSketch<W>, events: &[StreamEvent]) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        sk.insert(e.item, e.ts);
    }
    for (run, n) in grouped_runs(weighted) {
        sk.insert_weighted(run.item, run.ts, n);
    }
    sk.ingest_batch(batched);
}

/// Inherent-side feeding of an `EcmHierarchy<W>`.
fn feed_inherent_hierarchy<W: WindowCounter>(h: &mut EcmHierarchy<W>, events: &[StreamEvent]) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        h.insert(e.item, e.ts);
    }
    for (run, n) in grouped_runs(weighted) {
        h.insert_weighted(run.item, run.ts, n);
    }
    h.ingest_batch(batched);
}

/// Inherent-side feeding of a `ShardedEcm<W>`.
fn feed_inherent_sharded<W: WindowCounter>(sh: &mut ShardedEcm<W>, events: &[StreamEvent]) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        sh.insert(e.item, e.ts);
    }
    for (run, n) in grouped_runs(weighted) {
        sh.insert_weighted(run.item, run.ts, n);
    }
    sh.ingest_batch(batched);
}

/// Inherent-side feeding of a `CountBasedEcm<W>` (timestamps play no role).
fn feed_inherent_count<W: WindowCounter>(cb: &mut CountBasedEcm<W>, events: &[StreamEvent]) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        cb.insert(e.item);
    }
    for (run, n) in grouped_runs(weighted) {
        cb.insert_many(run.item, n);
    }
    let items: Vec<u64> = batched.iter().map(|e| e.item).collect();
    cb.ingest_batch(&items);
}

/// Inherent-side feeding of a `CountBasedHierarchy<W>`.
fn feed_inherent_count_hierarchy<W: WindowCounter>(
    ch: &mut CountBasedHierarchy<W>,
    events: &[StreamEvent],
) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        ch.insert(e.item);
    }
    for (run, n) in grouped_runs(weighted) {
        ch.insert_many(run.item, n);
    }
    let items: Vec<u64> = batched.iter().map(|e| e.item).collect();
    ch.ingest_batch(&items);
}

/// Inherent-side feeding of a `DecayedCm` (no inherent batch entry point:
/// the batched third goes through grouped weighted inserts, which the
/// trait impl documents as its own batching rule).
fn feed_inherent_decayed(cm: &mut DecayedCm, events: &[StreamEvent]) {
    let (single, weighted, batched) = thirds(events);
    for e in single {
        cm.insert(e.item, e.ts);
    }
    for (run, n) in grouped_runs(weighted) {
        cm.insert_weighted(run.item, run.ts, n);
    }
    for (run, n) in grouped_runs(batched) {
        cm.insert_weighted(run.item, run.ts, n);
    }
}

const EPS: f64 = 0.15;
const DELTA: f64 = 0.1;
const SEED: u64 = 31;

fn spec(backend: Backend) -> SketchSpec {
    SketchSpec::time(WINDOW)
        .epsilon(EPS)
        .delta(DELTA)
        .seed(SEED)
        .backend(backend)
}

fn builder() -> EcmBuilder {
    EcmBuilder::new(EPS, DELTA, WINDOW).seed(SEED)
}

fn scalar_queries<'a>() -> Vec<Query<'a>> {
    vec![
        Query::point(1),
        Query::point(7),
        Query::self_join(),
        Query::total_arrivals(),
    ]
}

/// Inherent-vs-trait parity for one plain counter type: feed the typed
/// sketch through inherent `(item, ts)` calls and the spec-built trait
/// object through `(ts, item)` calls, then compare answers bit for bit.
fn check_plain_backend<W>(label: &str, cfg: &EcmConfig<W>, boxed_spec: &SketchSpec)
where
    W: WindowCounter + std::fmt::Debug + 'static,
    W::Config: 'static,
{
    let events = trace(1);
    let now = events.last().unwrap().ts;
    let mut concrete = EcmSketch::new(cfg);
    let mut boxed = boxed_spec.build().unwrap();
    feed_inherent_sketch(&mut concrete, &events);
    feed_trait(&mut *boxed, &events);
    for w in [
        WindowSpec::time(now, WINDOW),
        WindowSpec::time(now, WINDOW / 7),
    ] {
        assert_scalar_parity(&concrete, &*boxed, &scalar_queries(), w, label);
    }
}

#[test]
fn plain_sketch_backends_dispatch_identically() {
    check_plain_backend("eh", &builder().eh_config(), &spec(Backend::Eh));
    check_plain_backend(
        "dw",
        &builder().max_arrivals(EVENTS as u64 * 2).dw_config(),
        &spec(Backend::Dw).max_arrivals(EVENTS as u64 * 2),
    );
    check_plain_backend(
        "rw",
        &EcmBuilder::new(0.3, DELTA, WINDOW)
            .seed(SEED)
            .max_arrivals(EVENTS as u64 * 2)
            .rw_config(),
        &SketchSpec::time(WINDOW)
            .epsilon(0.3)
            .delta(DELTA)
            .seed(SEED)
            .backend(Backend::Rw)
            .max_arrivals(EVENTS as u64 * 2),
    );
    check_plain_backend("exact", &builder().exact_config(), &spec(Backend::Exact));
    check_plain_backend(
        "ew",
        &builder().ew_config(8),
        &spec(Backend::Ew { buckets: 8 }),
    );
}

#[test]
fn hierarchy_backends_dispatch_identically_including_key_queries() {
    let events = trace(2);
    let now = events.last().unwrap().ts;
    let w = WindowSpec::time(now, WINDOW);

    let mut concrete: EcmHierarchy<ExponentialHistogram> =
        EcmHierarchy::new(10, &builder().eh_config());
    let mut boxed = spec(Backend::Eh).hierarchy(10).build().unwrap();
    feed_inherent_hierarchy(&mut concrete, &events);
    feed_trait(&mut *boxed, &events);

    assert_scalar_parity(&concrete, &*boxed, &scalar_queries(), w, "hierarchy");
    assert_scalar_parity(
        &concrete,
        &*boxed,
        &[Query::range_sum(3, 200), Query::range_sum(0, 1_023)],
        w,
        "hierarchy",
    );
    for q in [
        Query::heavy_hitters(Threshold::Relative(0.02)),
        Query::heavy_hitters(Threshold::Absolute(40.0)),
    ] {
        let a = concrete.query(&q, w).unwrap().into_heavy_hitters();
        let b = boxed.query(&q, w).unwrap().into_heavy_hitters();
        assert_eq!(a.len(), b.len(), "{q:?}");
        for ((ka, ea), (kb, eb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(ea.value.to_bits(), eb.value.to_bits());
        }
    }
    for phi in [0.1, 0.5, 0.99] {
        assert_eq!(
            concrete.query(&Query::quantile(phi), w).unwrap(),
            boxed.query(&Query::quantile(phi), w).unwrap(),
            "phi={phi}"
        );
    }
}

#[test]
fn sharded_backend_dispatches_identically() {
    let events = trace(3);
    let now = events.last().unwrap().ts;
    let w = WindowSpec::time(now, WINDOW);

    let mut concrete: ShardedEcm<ExponentialHistogram> = ShardedEcm::new(&builder().eh_config(), 4);
    let mut boxed = spec(Backend::Eh).sharded(4).build().unwrap();
    feed_inherent_sharded(&mut concrete, &events);
    feed_trait(&mut *boxed, &events);
    assert_scalar_parity(&concrete, &*boxed, &scalar_queries(), w, "sharded");
}

#[test]
fn count_based_backends_dispatch_identically() {
    let events = trace(4);
    let w = WindowSpec::last(WINDOW / 2);

    let mut concrete: CountBasedEcm<ExponentialHistogram> =
        CountBasedEcm::new(&builder().eh_config());
    let mut boxed = SketchSpec::count(WINDOW)
        .epsilon(EPS)
        .delta(DELTA)
        .seed(SEED)
        .build()
        .unwrap();
    feed_inherent_count(&mut concrete, &events);
    feed_trait(&mut *boxed, &events);
    assert_scalar_parity(&concrete, &*boxed, &scalar_queries(), w, "count-based");

    let mut ch: CountBasedHierarchy<ExponentialHistogram> =
        CountBasedHierarchy::new(10, &builder().eh_config());
    let mut bh = SketchSpec::count(WINDOW)
        .epsilon(EPS)
        .delta(DELTA)
        .seed(SEED)
        .hierarchy(10)
        .build()
        .unwrap();
    feed_inherent_count_hierarchy(&mut ch, &events);
    feed_trait(&mut *bh, &events);
    assert_scalar_parity(
        &ch,
        &*bh,
        &[
            Query::point(1),
            Query::range_sum(0, 255),
            Query::total_arrivals(),
        ],
        w,
        "count-hierarchy",
    );
    assert_eq!(
        ch.query(&Query::quantile(0.5), w).unwrap(),
        bh.query(&Query::quantile(0.5), w).unwrap()
    );
}

#[test]
fn decayed_backend_dispatches_identically() {
    let events = trace(5);
    let now = events.last().unwrap().ts;
    // Half-life = spec window for Backend::Decayed.
    let spec = SketchSpec::time(WINDOW)
        .epsilon(EPS)
        .delta(DELTA)
        .seed(SEED)
        .backend(Backend::Decayed);
    let mut concrete = DecayedCm::new(&spec.decayed_config().unwrap());
    let mut boxed = spec.build().unwrap();
    feed_inherent_decayed(&mut concrete, &events);
    feed_trait(&mut *boxed, &events);

    let w = WindowSpec::time(now, WINDOW);
    assert_scalar_parity(&concrete, &*boxed, &scalar_queries(), w, "decayed");
    // Decay has no hard window edge: range does not change the answer.
    let narrow = concrete
        .query(&Query::point(1), WindowSpec::time(now, 1))
        .unwrap();
    let wide = boxed
        .query(&Query::point(1), WindowSpec::time(now, WINDOW))
        .unwrap();
    assert_eq!(narrow, wide);
    // Lazy decay destroys the past: queries behind the write clock are
    // typed errors, not debug panics or stale release values.
    assert!(matches!(
        boxed.query(&Query::point(1), WindowSpec::time(now - 1, 1)),
        Err(QueryError::InvalidParameter { .. })
    ));
    // ... and count-based windows are clock mismatches, key-structured
    // queries unsupported with a hint.
    assert!(matches!(
        boxed.query(&Query::point(1), WindowSpec::last(10)),
        Err(QueryError::ClockMismatch { .. })
    ));
    match boxed.query(&Query::range_sum(0, 9), w) {
        Err(QueryError::Unsupported { backend, hint, .. }) => {
            assert_eq!(backend, "DecayedCm");
            assert!(hint.contains("EcmHierarchy"));
        }
        other => panic!("wrong result: {other:?}"),
    }
}

#[test]
fn inner_product_works_through_trait_objects() {
    let events = trace(6);
    let now = events.last().unwrap().ts;
    let w = WindowSpec::time(now, WINDOW);

    let mut a = spec(Backend::Eh).build().unwrap();
    let mut b = spec(Backend::Eh).build().unwrap();
    let mut ca = EcmEh::new(&builder().eh_config());
    let mut cb = EcmEh::new(&builder().eh_config());
    for e in &events {
        a.insert(e.ts, e.item);
        ca.insert(e.item, e.ts);
        b.insert(e.ts, e.item % 37);
        cb.insert(e.item % 37, e.ts);
    }
    // The dyn-built operand must downcast inside the query layer exactly
    // like the concrete one.
    let concrete_ip = ca
        .query(&Query::inner_product(&cb), w)
        .unwrap()
        .into_value();
    let boxed_ip = a.query(&Query::inner_product(&*b), w).unwrap().into_value();
    assert_eq!(concrete_ip.value.to_bits(), boxed_ip.value.to_bits());

    // Mismatched trait objects are rejected with both backend names.
    let dec = spec(Backend::Decayed).build().unwrap();
    let err = a.query(&Query::inner_product(&*dec), w).unwrap_err();
    match err {
        QueryError::IncompatibleOperand { detail } => {
            assert!(detail.contains("EcmSketch") && detail.contains("DecayedCm"));
        }
        other => panic!("wrong error: {other:?}"),
    }

    // The decayed pair also guards the *operand's* write clock: a `now`
    // the left side can answer but the right side cannot is a typed
    // error, not a stale un-decayed product.
    let mut da = spec(Backend::Decayed).build().unwrap();
    let mut db = spec(Backend::Decayed).build().unwrap();
    da.insert(10, 1);
    db.insert(50, 1);
    let err = da
        .query(&Query::inner_product(&*db), WindowSpec::time(10, WINDOW))
        .unwrap_err();
    assert!(
        matches!(err, QueryError::InvalidParameter { .. }),
        "operand clock must be guarded: {err:?}"
    );
    assert!(da
        .query(&Query::inner_product(&*db), WindowSpec::time(50, WINDOW))
        .is_ok());
}

#[test]
fn a_heterogeneous_registry_of_dyn_sketches_is_usable() {
    // The point of `Box<dyn Sketch>`: one collection, many backend shapes,
    // driven through the same two traits.
    let mut registry: Vec<(&str, Box<dyn Sketch>)> = vec![
        ("eh", spec(Backend::Eh).build().unwrap()),
        ("exact", spec(Backend::Exact).build().unwrap()),
        ("hier", spec(Backend::Eh).hierarchy(10).build().unwrap()),
        ("shard", spec(Backend::Eh).sharded(3).build().unwrap()),
        ("decay", spec(Backend::Decayed).build().unwrap()),
    ];
    let events = trace(7);
    let now = events.last().unwrap().ts;
    for (_, sk) in &mut registry {
        sk.ingest_batch(&events);
        sk.advance_to(now);
    }
    let w = WindowSpec::time(now, WINDOW);
    for (name, sk) in &registry {
        let est = sk
            .query(&Query::point(1), w)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .into_value();
        assert!(est.value >= 0.0, "{name}");
        assert!(!sk.backend().is_empty(), "{name}");
    }
}

#[test]
fn spec_validation_error_matrix() {
    let cases: Vec<(SketchSpec, &str)> = vec![
        (SketchSpec::time(0), "zero window"),
        (SketchSpec::time(10).epsilon(0.0), "zero epsilon"),
        (SketchSpec::time(10).epsilon(1.0), "epsilon at 1"),
        (SketchSpec::time(10).epsilon(-0.5), "negative epsilon"),
        (SketchSpec::time(10).delta(0.0), "zero delta"),
        (SketchSpec::time(10).delta(1.5), "delta above 1"),
        (SketchSpec::time(10).hierarchy(0), "zero bits"),
        (SketchSpec::time(10).hierarchy(64), "too many bits"),
        (SketchSpec::time(10).sharded(0), "zero shards"),
        (SketchSpec::time(10).max_arrivals(0), "zero max_arrivals"),
        (
            SketchSpec::time(10).backend(Backend::Ew { buckets: 0 }),
            "zero buckets",
        ),
        (
            SketchSpec::time(10).hierarchy(4).sharded(2),
            "hierarchy x sharded",
        ),
        (SketchSpec::count(10).sharded(2), "count x sharded"),
        (
            SketchSpec::count(10).backend(Backend::Decayed),
            "count x decayed",
        ),
        (
            SketchSpec::time(10).backend(Backend::Decayed).hierarchy(4),
            "decayed x hierarchy",
        ),
    ];
    for (bad, label) in cases {
        let validate_err = bad.validate().expect_err(label);
        let build_err = bad.build().map(|_| ()).expect_err(label);
        assert_eq!(validate_err, build_err, "{label}: validate/build disagree");
        assert!(!validate_err.to_string().is_empty(), "{label}");
    }

    // The error *kinds* are typed, not stringly.
    assert!(matches!(
        SketchSpec::time(0).validate(),
        Err(SpecError::ZeroWindow)
    ));
    assert!(matches!(
        SketchSpec::time(10).epsilon(7.0).validate(),
        Err(SpecError::InvalidEpsilon { got }) if got == 7.0
    ));
    assert!(matches!(
        SketchSpec::count(10).sharded(2).validate(),
        Err(SpecError::Conflict { .. })
    ));
}

#[test]
fn spec_accessors_reflect_the_description() {
    let s = SketchSpec::count(500).backend(Backend::Exact);
    assert_eq!(s.clock(), Clock::Count);
    assert_eq!(s.window(), 500);
    assert_eq!(s.declared_backend(), Backend::Exact);
    assert_eq!(Backend::Ew { buckets: 3 }.name(), "equi-width");
    assert_eq!(Backend::Decayed.name(), "decayed");
}
