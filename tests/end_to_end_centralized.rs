//! End-to-end centralized accuracy: every ECM variant built over generated
//! traces must meet its configured error envelope against the exact oracle
//! (the property behind paper Fig. 4).

use ecm::{EcmBuilder, EcmDw, EcmEh, EcmRw, EcmSketch, Query, QueryKind, SketchReader, WindowSpec};
use sliding_window::traits::WindowCounter;
use stream_gen::{snmp_like, worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;

fn build<W: WindowCounter>(cfg: &ecm::EcmConfig<W>, events: &[stream_gen::Event]) -> EcmSketch<W> {
    let mut sk = EcmSketch::new(cfg);
    for (i, e) in events.iter().enumerate() {
        sk.insert_with_id(e.key, e.ts, i as u64 + 1);
    }
    sk
}

/// Fraction of point queries violating the ε envelope must stay within the
/// configured δ (plus sampling slack).
fn check_point_envelope<W: WindowCounter + 'static>(
    sk: &EcmSketch<W>,
    oracle: &WindowOracle,
    eps: f64,
    label: &str,
) {
    let now = oracle.last_tick();
    for range in [10_000u64, 100_000, WINDOW] {
        let norm = oracle.total(now, range) as f64;
        if norm < 100.0 {
            continue;
        }
        let mut queries = 0usize;
        let mut violations = 0usize;
        for key in oracle.keys().take(500) {
            let exact = oracle.frequency(key, now, range) as f64;
            let est = sk
                .query(&Query::point(key), WindowSpec::time(now, range))
                .unwrap()
                .into_value()
                .value;
            queries += 1;
            if (est - exact).abs() > eps * norm + 1.0 {
                violations += 1;
            }
        }
        assert!(
            violations * 5 <= queries, // ≤ 20% ≫ δ = 10%, generous slack
            "{label}: {violations}/{queries} envelope violations at range {range}"
        );
    }
}

#[test]
fn all_variants_meet_point_envelope_wc98() {
    let events = worldcup_like(60_000, 11);
    let oracle = WindowOracle::from_events(&events);
    let eps = 0.1;
    let b = EcmBuilder::new(eps, 0.1, WINDOW)
        .max_arrivals(events.len() as u64)
        .seed(5);

    let eh: EcmEh = build(&b.eh_config(), &events);
    check_point_envelope(&eh, &oracle, eps, "ECM-EH");
    let dw: EcmDw = build(&b.dw_config(), &events);
    check_point_envelope(&dw, &oracle, eps, "ECM-DW");
    let rw: EcmRw = build(&b.rw_config(), &events);
    check_point_envelope(&rw, &oracle, eps, "ECM-RW");
}

#[test]
fn all_variants_meet_point_envelope_snmp() {
    let events = snmp_like(60_000, 23);
    let oracle = WindowOracle::from_events(&events);
    let eps = 0.15;
    let b = EcmBuilder::new(eps, 0.1, WINDOW)
        .max_arrivals(events.len() as u64)
        .seed(6);

    let eh: EcmEh = build(&b.eh_config(), &events);
    check_point_envelope(&eh, &oracle, eps, "ECM-EH");
    let dw: EcmDw = build(&b.dw_config(), &events);
    check_point_envelope(&dw, &oracle, eps, "ECM-DW");
    let rw: EcmRw = build(&b.rw_config(), &events);
    check_point_envelope(&rw, &oracle, eps, "ECM-RW");
}

#[test]
fn self_join_envelope_on_both_datasets() {
    for (events, label) in [
        (worldcup_like(50_000, 3), "wc98"),
        (snmp_like(50_000, 4), "snmp"),
    ] {
        let oracle = WindowOracle::from_events(&events);
        let eps = 0.1;
        let cfg = EcmBuilder::new(eps, 0.1, WINDOW)
            .query_kind(QueryKind::InnerProduct)
            .seed(7)
            .eh_config();
        let sk: EcmEh = build(&cfg, &events);
        let now = oracle.last_tick();
        for range in [100_000u64, WINDOW] {
            let norm = oracle.total(now, range) as f64;
            if norm < 100.0 {
                continue;
            }
            let exact = oracle.self_join(now, range);
            let est = sk
                .query(&Query::self_join(), WindowSpec::time(now, range))
                .unwrap()
                .into_value()
                .value;
            assert!(
                (est - exact).abs() <= eps * norm * norm,
                "{label}: self-join est {est} exact {exact} norm {norm}"
            );
        }
    }
}

#[test]
fn memory_ordering_matches_paper() {
    // Fig. 4 shape: memory(EH) < memory(DW) ≪ memory(RW) at equal ε.
    let events = worldcup_like(40_000, 9);
    let b = EcmBuilder::new(0.1, 0.1, WINDOW)
        .max_arrivals(events.len() as u64)
        .seed(8);
    let eh: EcmEh = build(&b.eh_config(), &events);
    let dw: EcmDw = build(&b.dw_config(), &events);
    let rw: EcmRw = build(&b.rw_config(), &events);
    let (m_eh, m_dw, m_rw) = (eh.memory_bytes(), dw.memory_bytes(), rw.memory_bytes());
    assert!(
        m_eh < m_dw,
        "EH ({m_eh}) should be smaller than DW ({m_dw})"
    );
    assert!(
        m_rw > 10 * m_eh,
        "RW ({m_rw}) should be ≥ 10x EH ({m_eh}) — the paper's headline gap"
    );
}

#[test]
fn update_rate_ordering_matches_paper() {
    // Table 3 shape: EH at least as fast as DW, both faster than RW.
    use std::time::Instant;
    let events = worldcup_like(80_000, 10);
    let b = EcmBuilder::new(0.1, 0.1, WINDOW)
        .max_arrivals(events.len() as u64)
        .seed(9);

    fn rate<W: WindowCounter>(cfg: &ecm::EcmConfig<W>, events: &[stream_gen::Event]) -> f64 {
        let mut sk = EcmSketch::new(cfg);
        let t0 = Instant::now();
        for (i, e) in events.iter().enumerate() {
            sk.insert_with_id(e.key, e.ts, i as u64 + 1);
        }
        events.len() as f64 / t0.elapsed().as_secs_f64()
    }

    let r_eh = rate(&b.eh_config(), &events);
    let r_rw = rate(&b.rw_config(), &events);
    // Timing is only meaningful with optimizations; debug builds skew the
    // relative costs and CI noise dominates, so assert in release only.
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping rate-ordering assertion ({r_eh:.0} vs {r_rw:.0})");
        return;
    }
    assert!(
        r_eh > r_rw,
        "EH ({r_eh:.0}/s) should out-rate RW ({r_rw:.0}/s)"
    );
}
