//! Failure injection across the workspace: corrupted wire data, mismatched
//! configurations, and contract violations must fail loudly and precisely —
//! never corrupt state or silently return wrong answers.

use ecm::{EcmBuilder, EcmEh, EcmRw, EcmSketch};
use sliding_window::traits::WindowCounter;
use sliding_window::{
    merge_randomized_waves, CodecError, DwConfig, EhConfig, ExponentialHistogram, MergeError,
    RandomizedWave, RwConfig,
};

fn sample_sketch(seed: u64) -> (ecm::EcmConfig<ExponentialHistogram>, EcmEh) {
    let cfg = EcmBuilder::new(0.2, 0.1, 10_000).seed(seed).eh_config();
    let mut sk = EcmEh::new(&cfg);
    for t in 1..=500u64 {
        sk.insert(t % 20, t);
    }
    (cfg, sk)
}

#[test]
fn truncated_sketch_bytes_are_rejected_or_visibly_different() {
    let (cfg, sk) = sample_sketch(1);
    let mut buf = Vec::new();
    sk.encode(&mut buf);
    // Every strict prefix either fails to decode or decodes to something
    // that re-encodes differently (prefixes can be valid smaller values).
    for cut in (0..buf.len()).step_by(7) {
        let mut slice = &buf[..cut];
        if let Ok(partial) = EcmEh::decode(&cfg, &mut slice) {
            let mut re = Vec::new();
            partial.encode(&mut re);
            assert_ne!(re, buf, "cut {cut} produced an identical sketch");
        }
    }
}

#[test]
fn bitflipped_header_fails_with_precise_errors() {
    let (cfg, sk) = sample_sketch(2);
    let mut buf = Vec::new();
    sk.encode(&mut buf);
    // Version byte.
    let mut bad = buf.clone();
    bad[0] = 0xee;
    let mut slice = bad.as_slice();
    assert!(matches!(
        EcmEh::decode(&cfg, &mut slice),
        Err(CodecError::BadVersion { found: 0xee })
    ));
    // Shape field.
    let mut bad = buf.clone();
    bad[1] = bad[1].wrapping_add(1);
    let mut slice = bad.as_slice();
    assert!(EcmEh::decode(&cfg, &mut slice).is_err());
}

#[test]
fn decoding_with_the_wrong_config_is_rejected() {
    let (_, sk) = sample_sketch(3);
    let mut buf = Vec::new();
    sk.encode(&mut buf);
    // Same shape, different seed: the hash family disagrees.
    let other = EcmBuilder::new(0.2, 0.1, 10_000).seed(999).eh_config();
    let mut slice = buf.as_slice();
    assert!(matches!(
        EcmEh::decode(&other, &mut slice),
        Err(CodecError::Corrupt { .. })
    ));
}

#[test]
fn merge_rejects_every_kind_of_mismatch() {
    let a = EcmEh::new(&EcmBuilder::new(0.2, 0.1, 1_000).seed(1).eh_config());
    let cfg_b = EcmBuilder::new(0.2, 0.1, 1_000).seed(2).eh_config();
    let b = EcmEh::new(&cfg_b);
    // Different hash seeds.
    assert!(matches!(
        EcmSketch::merge(&[&a, &b], &cfg_b.cell),
        Err(MergeError::IncompatibleConfig { .. })
    ));
    // Different shapes.
    let cfg_c = EcmBuilder::new(0.4, 0.1, 1_000).seed(1).eh_config();
    let c = EcmEh::new(&cfg_c);
    assert!(matches!(
        EcmSketch::merge(&[&a, &c], &cfg_c.cell),
        Err(MergeError::IncompatibleConfig { .. })
    ));
    // Different window lengths surface from the cell merge.
    let cfg_d = EcmBuilder::new(0.2, 0.1, 2_000).seed(1).eh_config();
    assert!(EcmSketch::merge(&[&a, &a], &cfg_d.cell).is_err());
}

#[test]
fn rw_merge_guards_randomization_compatibility() {
    // Same ε/δ/window but different seeds: silent merging would break the
    // sampling invariants, so it must be refused.
    let c1 = RwConfig::new(0.2, 0.1, 1_000, 5_000, 1);
    let c2 = RwConfig::new(0.2, 0.1, 1_000, 5_000, 2);
    let w1 = RandomizedWave::new(&c1);
    assert!(matches!(
        merge_randomized_waves(&[&w1], &c2),
        Err(MergeError::IncompatibleConfig { .. })
    ));
    // Whole-sketch level: ECM-RW built from different builder seeds.
    let cfg1 = EcmBuilder::new(0.2, 0.1, 1_000).seed(1).rw_config();
    let cfg2 = EcmBuilder::new(0.2, 0.1, 1_000).seed(2).rw_config();
    let s1 = EcmRw::new(&cfg1);
    let s2 = EcmRw::new(&cfg2);
    assert!(EcmSketch::merge(&[&s1, &s2], &cfg1.cell).is_err());
}

#[test]
fn garbage_bytes_never_panic_the_decoders() {
    // Fuzz-lite: deterministic pseudo-random byte soup must produce errors,
    // not panics.
    let cfg_eh = EhConfig::new(0.2, 1_000);
    let cfg_dw = DwConfig::new(0.2, 1_000, 5_000);
    let cfg_rw = RwConfig::new(0.2, 0.1, 1_000, 5_000, 3);
    let mut state = 0x12345678u64;
    for round in 0..200 {
        let len = (round * 7) % 64;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let mut s: &[u8] = &bytes;
        let _ = ExponentialHistogram::decode(&cfg_eh, &mut s);
        let mut s: &[u8] = &bytes;
        let _ = sliding_window::DeterministicWave::decode(&cfg_dw, &mut s);
        let mut s: &[u8] = &bytes;
        let _ = RandomizedWave::decode(&cfg_rw, &mut s);
        let mut s: &[u8] = &bytes;
        let _ = count_min::CountMinSketch::decode(&mut s);
    }
}

#[test]
fn monotonicity_contract_is_enforced_in_debug() {
    // Out-of-order timestamps violate the documented contract; debug builds
    // must catch them.
    let result = std::panic::catch_unwind(|| {
        let mut eh = ExponentialHistogram::new(&EhConfig::new(0.2, 100));
        eh.insert_one(10);
        eh.insert_one(5);
    });
    if cfg!(debug_assertions) {
        assert!(result.is_err(), "debug builds must reject time travel");
    }
}

mod site_recovery {
    //! Kill → restore → re-aggregate: a site that crashes mid-stream,
    //! recovers from its checkpoint and replays its backlog must rejoin
    //! the aggregation tree as if nothing happened — bit for bit.

    use distributed::{aggregate_tree, checkpoint_site, restore_site, resume_site};
    use ecm::snapshot::SnapshotError;
    use ecm::{Query, SketchReader, SketchSpec, WindowSpec};
    use sliding_window::{ExponentialHistogram, RandomizedWave};
    use stream_gen::{partition_by_site, uniform_sites, Event};

    const WINDOW: u64 = 2_600_000;

    fn point(r: &dyn SketchReader, key: u64, now: u64) -> f64 {
        r.query(&Query::point(key), WindowSpec::time(now, WINDOW))
            .expect("in-window point query")
            .into_value()
            .value
    }

    #[test]
    fn killed_site_rejoins_the_tree_bit_identically() {
        let n_sites = 8u32;
        let events = uniform_sites(16_000, n_sites, 21);
        let parts = partition_by_site(&events, n_sites);
        let spec = SketchSpec::time(WINDOW).epsilon(0.15).delta(0.1).seed(5);

        // Every site ingests; site 3 checkpoints at 60% of its stream,
        // then "crashes" and loses its in-memory sketch.
        let crash_at = parts[3].len() * 6 / 10;
        let doomed = distributed::site_sketch_from_spec::<ExponentialHistogram>(
            &spec,
            4,
            &parts[3][..crash_at],
        )
        .unwrap();
        let checkpoint = checkpoint_site(&spec, &doomed).unwrap();
        drop(doomed);

        // Recovery: restore + replay the backlog.
        let recovered =
            resume_site::<ExponentialHistogram>(&spec, &checkpoint, &parts[3][crash_at..]).unwrap();

        // The recovered site is byte-identical to one that never crashed...
        let pristine =
            distributed::site_sketch_from_spec::<ExponentialHistogram>(&spec, 4, &parts[3])
                .unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        recovered.encode(&mut a);
        pristine.encode(&mut b);
        assert_eq!(a, b, "recovered site must be bit-identical");

        // ...so the aggregation roots (and their transfer accounting) agree
        // exactly too: the crash is invisible to the coordinator.
        let cfg = spec.ecm_config::<ExponentialHistogram>().unwrap();
        let leaf_with_recovery = |i: usize| {
            if i == 3 {
                recovered.clone()
            } else {
                distributed::site_sketch_from_spec::<ExponentialHistogram>(
                    &spec,
                    i as u64 + 1,
                    &parts[i],
                )
                .unwrap()
            }
        };
        let leaf_pristine = |i: usize| {
            distributed::site_sketch_from_spec::<ExponentialHistogram>(
                &spec,
                i as u64 + 1,
                &parts[i],
            )
            .unwrap()
        };
        let with_recovery =
            aggregate_tree(n_sites as usize, leaf_with_recovery, &cfg.cell).unwrap();
        let without = aggregate_tree(n_sites as usize, leaf_pristine, &cfg.cell).unwrap();
        assert_eq!(with_recovery.stats, without.stats);
        let now = events.last().unwrap().ts;
        for key in (0..1_000u64).step_by(29) {
            assert_eq!(
                point(&with_recovery.root, key, now),
                point(&without.root, key, now),
                "key {key}"
            );
        }
    }

    #[test]
    fn randomized_wave_recovery_preserves_lossless_composition() {
        // The strongest id-sensitivity test: RW merges are lossless only
        // because arrival ids are globally unique and stable. A restored
        // site must resume its id sequence exactly, or composition breaks.
        let n_sites = 4u32;
        let events = uniform_sites(4_000, n_sites, 17);
        let parts = partition_by_site(&events, n_sites);
        let spec = SketchSpec::time(WINDOW)
            .epsilon(0.3)
            .delta(0.2)
            .backend(ecm::Backend::Rw)
            .max_arrivals(10_000)
            .seed(2);
        let cfg = spec.ecm_config::<RandomizedWave>().unwrap();

        let leaf = |i: usize| {
            let crash_at = parts[i].len() / 2;
            let first_half = distributed::site_sketch_from_spec::<RandomizedWave>(
                &spec,
                i as u64 + 1,
                &parts[i][..crash_at],
            )
            .unwrap();
            // Crash every site and recover it.
            let checkpoint = checkpoint_site(&spec, &first_half).unwrap();
            resume_site::<RandomizedWave>(&spec, &checkpoint, &parts[i][crash_at..]).unwrap()
        };
        let pristine_leaf = |i: usize| {
            distributed::site_sketch_from_spec::<RandomizedWave>(&spec, i as u64 + 1, &parts[i])
                .unwrap()
        };
        let recovered = aggregate_tree(n_sites as usize, leaf, &cfg.cell).unwrap();
        let pristine = aggregate_tree(n_sites as usize, pristine_leaf, &cfg.cell).unwrap();
        let now = events.last().unwrap().ts;
        for key in [0u64, 3, 42, 500, 999] {
            assert_eq!(
                point(&recovered.root, key, now),
                point(&pristine.root, key, now),
                "key {key}"
            );
        }
    }

    #[test]
    fn corrupted_checkpoints_fail_recovery_loudly() {
        let spec = SketchSpec::time(WINDOW).epsilon(0.2).delta(0.1).seed(9);
        let events: Vec<Event> = (1..=500u64)
            .map(|t| Event {
                ts: t,
                key: t % 20,
                site: 0,
            })
            .collect();
        let site =
            distributed::site_sketch_from_spec::<ExponentialHistogram>(&spec, 1, &events).unwrap();
        let checkpoint = checkpoint_site(&spec, &site).unwrap();

        // Truncation, bit rot, version bumps: typed errors, never panics,
        // never a silently-wrong site.
        for cut in (0..checkpoint.len()).step_by(23) {
            assert!(restore_site::<ExponentialHistogram>(&spec, &checkpoint[..cut]).is_err());
        }
        let mut bad = checkpoint.clone();
        bad[2] = 0x7e;
        assert!(matches!(
            restore_site::<ExponentialHistogram>(&spec, &bad),
            Err(SnapshotError::UnsupportedVersion { found: 0x7e })
        ));
        let mut bad = checkpoint.clone();
        let mid = bad.len() - 12;
        bad[mid] ^= 0x01;
        assert!(restore_site::<ExponentialHistogram>(&spec, &bad).is_err());

        // A checkpoint restored against the wrong deployment spec is a
        // spec mismatch, not a subtly different sketch.
        let other = SketchSpec::time(WINDOW).epsilon(0.2).delta(0.1).seed(10);
        assert!(matches!(
            restore_site::<ExponentialHistogram>(&other, &checkpoint),
            Err(SnapshotError::SpecMismatch { .. })
        ));
    }
}

#[test]
fn empty_merges_and_zero_budgets_fail_cleanly() {
    let cfg = EcmBuilder::new(0.2, 0.1, 1_000).seed(9).eh_config();
    let empty: [&EcmEh; 0] = [];
    assert!(matches!(
        EcmSketch::merge(&empty, &cfg.cell),
        Err(MergeError::Empty)
    ));
    assert!(std::panic::catch_unwind(|| EcmBuilder::new(0.0, 0.1, 10)).is_err());
    assert!(std::panic::catch_unwind(|| EcmBuilder::new(0.1, 1.0, 10)).is_err());
    assert!(std::panic::catch_unwind(|| EcmBuilder::new(0.1, 0.1, 0)).is_err());
}
