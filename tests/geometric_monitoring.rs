//! Cross-crate validation of the geometric-method monitor (paper §6.2):
//! the no-missed-crossing guarantee on generated workloads, and the
//! communication advantage over ship-every-update.

use distributed::{GeometricMonitor, MonitorEvent, PointFn, SelfJoinFn};
use ecm::{EcmBuilder, EcmEh, QueryKind};
use stream_gen::{uniform_sites, Event};

const WINDOW: u64 = 50_000;

fn nodes(n: usize, cfg: &ecm::EcmConfig<sliding_window::ExponentialHistogram>) -> Vec<EcmEh> {
    (0..n)
        .map(|i| {
            let mut sk = EcmEh::new(cfg);
            sk.set_id_namespace(i as u64 + 1);
            sk
        })
        .collect()
}

#[test]
fn self_join_monitoring_never_misses_a_crossing() {
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW)
        .query_kind(QueryKind::InnerProduct)
        .seed(71)
        .eh_config();
    let func = SelfJoinFn {
        width: cfg.width,
        depth: cfg.depth,
    };
    let n_sites = 4usize;
    // The 50k-tick window holds ~170 of the trace's events; the burst
    // drives F2(avg) from ~10 to ~1800, so 300 separates the regimes.
    let threshold = 300.0;
    let mut m = GeometricMonitor::new(nodes(n_sites, &cfg), func, threshold, WINDOW, 0);

    // Generated trace with a skew burst injected in the middle third.
    let base = uniform_sites(9_000, n_sites as u32, 3);
    let mut last_side = m.above();
    for (i, e) in base.iter().enumerate() {
        let ev = if i > base.len() / 3 && i < 2 * base.len() / 3 {
            Event { key: 7, ..*e } // burst: all traffic to one key
        } else {
            *e
        };
        match m.observe(ev) {
            MonitorEvent::Synced { above, .. } => last_side = above,
            MonitorEvent::LocalOk | MonitorEvent::Balanced { .. } => {
                let truth_above = m.true_global_value(ev.ts) > threshold;
                assert_eq!(
                    truth_above, last_side,
                    "missed crossing at event {i} (t={})",
                    ev.ts
                );
            }
        }
    }
    let s = m.stats();
    assert!(s.syncs >= 2, "the burst must force at least one re-sync");
    assert!(s.checks > 0);
}

#[test]
fn point_frequency_monitoring_tracks_one_item() {
    // Monitor the frequency estimate of a single item across sites.
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW).seed(5).eh_config();
    // Derive the item's column in each row from a scratch sketch (all sites
    // share the hash family): insert the item once and find the touched
    // cells.
    let item = 1234u64;
    let columns: Vec<usize> = {
        let mut sk = EcmEh::new(&cfg);
        sk.insert(item, 1);
        let v = sk.estimate_vector(1, WINDOW);
        (0..cfg.depth)
            .map(|j| {
                let row = &v[j * cfg.width..(j + 1) * cfg.width];
                row.iter().position(|&x| x > 0.0).expect("one touched cell")
            })
            .collect()
    };
    let func = PointFn {
        width: cfg.width,
        columns,
    };

    let n_sites = 3usize;
    // Threshold on the average vector: item frequency / n_sites.
    let threshold = 100.0;
    let mut m = GeometricMonitor::new(nodes(n_sites, &cfg), func, threshold, WINDOW, 0);
    let mut last_side = m.above();
    let mut crossed_up = false;
    for t in 1..=4_000u64 {
        // Steady background plus the monitored item arriving from t=1500.
        let key = if t >= 1_500 && t % 2 == 0 {
            item
        } else {
            t % 900
        };
        let ev = Event {
            ts: t,
            key,
            site: (t % n_sites as u64) as u32,
        };
        match m.observe(ev) {
            MonitorEvent::Synced { above, .. } => {
                if above && !last_side {
                    crossed_up = true;
                }
                last_side = above;
            }
            MonitorEvent::LocalOk | MonitorEvent::Balanced { .. } => {
                let truth_above = m.true_global_value(t) > threshold;
                assert_eq!(truth_above, last_side, "missed point crossing at t={t}");
            }
        }
    }
    assert!(crossed_up, "monitored item's frequency must cross upward");
}

#[test]
fn inner_product_fn_tracks_the_exact_inner_join() {
    // §6.2 "inner joins": each site holds one sketch per stream; the
    // statistics vector is the concatenation. The function value on the
    // *sum* of site vectors (n × the average) estimates a ⊙ b.
    use distributed::{InnerProductFn, MonitoredFunction};
    use stream_gen::WindowOracle;

    let cfg = EcmBuilder::new(0.1, 0.05, WINDOW)
        .query_kind(QueryKind::InnerProduct)
        .seed(13)
        .eh_config();
    let n_sites = 3usize;
    let mut a_sketches = nodes(n_sites, &cfg);
    let mut b_sketches = nodes(n_sites, &cfg);

    // Stream a: keys 0..100 round-robin; stream b: keys 0..200, so the
    // overlap is keys 0..100 at half b's rate.
    let mut a_events = Vec::new();
    let mut b_events = Vec::new();
    for t in 1..=6_000u64 {
        let site = (t % n_sites as u64) as usize;
        a_sketches[site].insert(t % 100, t);
        a_events.push(Event {
            ts: t,
            key: t % 100,
            site: site as u32,
        });
        b_sketches[site].insert(t % 200, t);
        b_events.push(Event {
            ts: t,
            key: t % 200,
            site: site as u32,
        });
    }
    let now = 6_000u64;
    let oracle_a = WindowOracle::from_events(&a_events);
    let oracle_b = WindowOracle::from_events(&b_events);
    let exact = oracle_a.inner_product(&oracle_b, now, WINDOW);

    // Sum the per-site concatenated vectors (the coordinator's "n × avg").
    let wd = cfg.width * cfg.depth;
    let mut summed = vec![0.0f64; 2 * wd];
    for site in 0..n_sites {
        let va = a_sketches[site].estimate_vector(now, WINDOW);
        let vb = b_sketches[site].estimate_vector(now, WINDOW);
        for (s, &x) in summed[..wd].iter_mut().zip(&va) {
            *s += x;
        }
        for (s, &x) in summed[wd..].iter_mut().zip(&vb) {
            *s += x;
        }
    }
    let f = InnerProductFn {
        width: cfg.width,
        depth: cfg.depth,
    };
    let est = f.value(&summed);
    let norm_a = oracle_a.total(now, WINDOW) as f64;
    let norm_b = oracle_b.total(now, WINDOW) as f64;
    // Theorem 2 envelope (generous: summing site vectors adds EH noise).
    assert!(
        (est - exact).abs() <= 0.1 * norm_a * norm_b,
        "est={est} exact={exact}"
    );
    assert!(est >= 0.5 * exact, "est={est} exact={exact}");
}

#[test]
fn communication_scales_with_volatility_not_stream_size() {
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW)
        .query_kind(QueryKind::InnerProduct)
        .seed(91)
        .eh_config();
    let func = SelfJoinFn {
        width: cfg.width,
        depth: cfg.depth,
    };
    // Far-from-threshold workload: syncs should stay near the initial one
    // regardless of how many events stream through.
    let mut m = GeometricMonitor::new(nodes(4, &cfg), func, 1e12, WINDOW, 0);
    for t in 1..=20_000u64 {
        let ev = Event {
            ts: t,
            key: t % 2_000,
            site: (t % 4) as u32,
        };
        m.observe(ev);
    }
    let s = m.stats();
    assert!(
        s.syncs <= 3,
        "quiet workload must not re-sync ({} syncs)",
        s.syncs
    );
    let naive_bytes = 20_000 * m.sync_bytes() / 4;
    assert!(
        s.bytes * 50 < naive_bytes,
        "geometric method should save ≥ 50x on quiet streams \
         ({} vs naive {})",
        s.bytes,
        naive_bytes
    );
}
