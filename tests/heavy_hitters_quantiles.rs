//! Derived sliding-window queries over generated traces (paper §6.1):
//! heavy hitters (Theorem 5 semantics), range sums and quantiles, scored
//! against the exact oracle — all through the unified `SketchReader::query`
//! surface.

use ecm::{EcmBuilder, EcmHierarchy, Query, SketchReader, Threshold, WindowSpec};
use sliding_window::ExponentialHistogram;
use stream_gen::{worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;
const BITS: u32 = 16; // generator keys fit in 16 bits (50k domain)

fn build_hierarchy(
    events: &[stream_gen::Event],
    eps: f64,
    seed: u64,
) -> EcmHierarchy<ExponentialHistogram> {
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(seed).eh_config();
    let mut h = EcmHierarchy::new(BITS, &cfg);
    for e in events {
        h.insert(e.key, e.ts);
    }
    h
}

/// Heavy-hitter keys through the typed query API.
fn heavy_keys(h: &EcmHierarchy<ExponentialHistogram>, t: Threshold, w: WindowSpec) -> Vec<u64> {
    h.query(&Query::heavy_hitters(t), w)
        .expect("heavy-hitter query must succeed")
        .into_heavy_hitters()
        .into_iter()
        .map(|(k, _)| k)
        .collect()
}

#[test]
fn heavy_hitters_have_full_recall_and_bounded_false_positives() {
    let events = worldcup_like(50_000, 17);
    let oracle = WindowOracle::from_events(&events);
    let h = build_hierarchy(&events, 0.02, 3);
    let now = oracle.last_tick();

    for range in [100_000u64, WINDOW] {
        let norm = oracle.total(now, range);
        if norm < 1_000 {
            continue;
        }
        let phi = 0.01;
        let threshold = (phi * norm as f64) as u64;
        let exact: Vec<u64> = oracle
            .heavy_hitters(threshold, now, range)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let found = heavy_keys(&h, Threshold::Relative(phi), WindowSpec::time(now, range));

        // Theorem 5: every truly heavy key must be reported (estimates never
        // undershoot by more than the window error, which ε=0.02 covers).
        for k in &exact {
            assert!(
                found.contains(k),
                "range {range}: missed heavy key {k} (exact set {exact:?})"
            );
        }
        // False positives only from the (φ − ε, φ) gray zone.
        let fp_floor = ((phi - 0.021) * norm as f64).max(0.0) as u64;
        for k in &found {
            let f = oracle.frequency(*k, now, range);
            assert!(
                f >= fp_floor,
                "range {range}: spurious key {k} with frequency {f} \
                 (threshold {threshold})"
            );
        }
    }
}

#[test]
fn heavy_hitter_estimates_carry_point_guarantees() {
    let events = worldcup_like(30_000, 23);
    let oracle = WindowOracle::from_events(&events);
    let h = build_hierarchy(&events, 0.02, 7);
    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;

    let hits = h
        .query(
            &Query::heavy_hitters(Threshold::Relative(0.01)),
            WindowSpec::time(now, WINDOW),
        )
        .unwrap()
        .into_heavy_hitters();
    assert!(!hits.is_empty(), "trace must contain heavy keys");
    for (key, est) in hits {
        let g = est.guarantee.expect("EH estimates carry guarantees");
        assert!(g.epsilon <= 0.02 + 1e-9, "per-key ε={}", g.epsilon);
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        assert!(
            (est.value - exact).abs() <= g.epsilon * norm + 2.0,
            "key {key}: est {} exact {exact} ε {}",
            est.value,
            g.epsilon
        );
    }
}

#[test]
fn range_sums_over_key_intervals() {
    let events = worldcup_like(40_000, 29);
    let oracle = WindowOracle::from_events(&events);
    let h = build_hierarchy(&events, 0.02, 5);
    let now = oracle.last_tick();
    let range = WINDOW;
    let norm = oracle.total(now, range) as f64;
    let w = WindowSpec::time(now, range);

    for &(lo, hi) in &[(0u64, 99u64), (100, 999), (0, 65_535), (500, 501)] {
        let exact: u64 = (lo..=hi.min(49_999))
            .map(|k| oracle.frequency(k, now, range))
            .sum();
        let est = h
            .query(&Query::range_sum(lo, hi), w)
            .unwrap()
            .into_value()
            .value;
        // Dyadic cover ≤ 2·BITS components, each ε-bounded.
        let budget = 2.0 * f64::from(BITS) * 0.02 * norm;
        assert!(
            (est - exact as f64).abs() <= budget + 4.0,
            "[{lo},{hi}]: est {est} exact {exact} budget {budget}"
        );
    }
}

#[test]
fn quantiles_match_oracle_within_rank_tolerance() {
    let events = worldcup_like(40_000, 31);
    let oracle = WindowOracle::from_events(&events);
    let h = build_hierarchy(&events, 0.01, 9);
    let now = oracle.last_tick();
    let range = WINDOW;
    let total = oracle.total(now, range);
    assert!(total > 1_000);
    let w = WindowSpec::time(now, range);

    for &q in &[0.1f64, 0.25, 0.5, 0.75, 0.9] {
        let est_key = h
            .query(&Query::quantile(q), w)
            .unwrap()
            .into_quantile()
            .expect("window is non-empty");
        // Score by *rank error*: the exact rank of the returned key must be
        // within ε·2·bits of the requested rank, plus the anchor slack of
        // the estimated total the φ-quantile derives its target rank from —
        // bounded by the total-arrivals estimator's window error ε_sw
        // (the builder's ε = 0.01 splits as ε_sw = √1.01 − 1).
        let rank = (q * total as f64).ceil() as u64;
        let exact_rank: u64 = (0..=est_key).map(|k| oracle.frequency(k, now, range)).sum();
        let esw = 1.01f64.sqrt() - 1.0;
        let anchor_slack = (esw * total as f64).ceil() as u64;
        let tolerance = (0.01 * 2.0 * f64::from(BITS) * total as f64) as u64 + anchor_slack + 2;
        assert!(
            exact_rank + tolerance >= rank && exact_rank <= rank + tolerance,
            "q={q}: returned key {est_key} has rank {exact_rank}, want {rank}±{tolerance}"
        );
    }

    // φ outside (0, 1] is a typed error, not a panic.
    assert!(h.query(&Query::quantile(0.0), w).is_err());
    assert!(h.query(&Query::quantile(1.5), w).is_err());
}

#[test]
fn heavy_hitters_follow_the_window_as_it_slides() {
    // A key that is heavy only in the first half of the trace must drop out
    // of the heavy-hitter set for recent ranges.
    let mut events = worldcup_like(30_000, 41);
    let now_base = events.last().unwrap().ts;
    // Inject a burst on key 42 inside the window (last 10⁶ ticks) but
    // strictly before the recent range (last 6·10⁵ ticks).
    let burst_lo = now_base - 900_000;
    let burst_hi = now_base - 700_000;
    let burst: Vec<stream_gen::Event> = (0..3_000u64)
        .map(|i| stream_gen::Event {
            ts: burst_lo + i * ((burst_hi - burst_lo) / 3_000),
            key: 42,
            site: 0,
        })
        .collect();
    events.extend(burst);
    events.sort_by_key(|e| e.ts);

    let oracle = WindowOracle::from_events(&events);
    let h = build_hierarchy(&events, 0.02, 13);
    let now = oracle.last_tick();

    // Over the full window the burst key is prominent.
    let full = heavy_keys(
        &h,
        Threshold::Absolute(2_000.0),
        WindowSpec::time(now, WINDOW),
    );
    // Over a recent range that excludes the burst it must vanish.
    let recent_range = 600_000u64;
    let recent = heavy_keys(
        &h,
        Threshold::Absolute(500.0),
        WindowSpec::time(now, recent_range),
    );
    assert!(
        oracle.frequency(42, now, recent_range) < 100,
        "precondition: burst is outside the recent range"
    );
    assert!(
        full.contains(&42),
        "burst key heavy over full window: {full:?}"
    );
    assert!(
        !recent.contains(&42),
        "burst key must age out of recent heavy hitters: {recent:?}"
    );
}
