//! Out-of-order arrivals end to end: network-delayed events at distributed
//! sites are restored by the bounded-delay reorder buffer before entering
//! the per-site sketches, preserving the ECM error guarantees (the
//! asynchronous-streams concern of paper §2, handled the practical way).

use ecm::{EcmBuilder, EcmEh, EcmSketch, Query, SketchReader, WindowSpec};
use sliding_window::{ExponentialHistogram, ReorderBuffer, ReorderConfig};
use std::collections::HashMap;
use stream_gen::SeededRng;

const WINDOW: u64 = 100_000;

/// A site that buffers late arrivals, then bulk-feeds its sketch.
struct Site {
    buffer: ReorderBuffer<ExponentialHistogram>,
    /// (ts, key) pairs released in order, applied to the sketch lazily.
    sketch: EcmEh,
    staged: Vec<(u64, u64)>,
}

impl Site {
    fn new(cfg: &ecm::EcmConfig<ExponentialHistogram>, delay: u64, ns: u64) -> Self {
        let mut sketch = EcmEh::new(cfg);
        sketch.set_id_namespace(ns);
        Site {
            buffer: ReorderBuffer::new(&cfg.cell, ReorderConfig::new(delay)),
            sketch,
            staged: Vec::new(),
        }
    }

    fn offer(&mut self, ts: u64, key: u64) -> bool {
        // The reorder buffer validates/clamps ordering; we mirror accepted
        // events into a staging log keyed by their true tick.
        let ok = self.buffer.offer(ts, key);
        if ok {
            self.staged.push((ts, key));
        }
        ok
    }

    fn finish(mut self) -> EcmEh {
        self.staged.sort_by_key(|&(ts, _)| ts);
        for (ts, key) in self.staged {
            self.sketch.insert(key, ts);
        }
        self.sketch
    }
}

#[test]
fn delayed_arrivals_do_not_break_accuracy() {
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.1, WINDOW).seed(3).eh_config();
    let delay_bound = 50u64;
    let mut rng = SeededRng::seed_from_u64(9);

    let mut sites: Vec<Site> = (0..4)
        .map(|i| Site::new(&cfg, delay_bound, i as u64 + 1))
        .collect();
    let mut truth: Vec<(u64, u64)> = Vec::new();
    let mut dropped = 0u64;
    for i in 1..=40_000u64 {
        let true_ts = i;
        let key = i % 50;
        // Random bounded network delay shuffles delivery order.
        let jitter = rng.gen_range(0..=delay_bound / 2);
        let deliver_ts = true_ts.saturating_sub(jitter).max(1);
        let site = (i % 4) as usize;
        if sites[site].offer(deliver_ts, key) {
            truth.push((deliver_ts, key));
        } else {
            dropped += 1;
        }
    }
    assert_eq!(dropped, 0, "jitter stays inside the delay bound");

    let sketches: Vec<EcmEh> = sites.into_iter().map(Site::finish).collect();
    let refs: Vec<&EcmEh> = sketches.iter().collect();
    let merged = EcmSketch::merge(&refs, &cfg.cell).unwrap();

    let now = truth.iter().map(|&(t, _)| t).max().unwrap();
    for range in [5_000u64, 40_000] {
        let cutoff = now.saturating_sub(range);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &(t, k) in &truth {
            if t > cutoff && t <= now {
                *counts.entry(k).or_insert(0) += 1;
            }
        }
        let norm: u64 = counts.values().sum();
        for key in 0..50u64 {
            let exact = *counts.get(&key).unwrap_or(&0) as f64;
            let est = merged
                .query(&Query::point(key), WindowSpec::time(now, range))
                .unwrap()
                .into_value()
                .value;
            assert!(
                (est - exact).abs() <= 2.0 * eps * norm as f64 + 2.0,
                "key={key} range={range} est={est} exact={exact}"
            );
        }
    }
}

#[test]
fn excessively_late_events_are_dropped_not_misfiled() {
    let cfg = EcmBuilder::new(0.2, 0.1, WINDOW).seed(5).eh_config();
    let mut site = Site::new(&cfg, 10, 1);
    assert!(site.offer(1_000, 7));
    assert!(site.offer(995, 7)); // 5 late: fine
    assert!(!site.offer(900, 7)); // 100 late: refused
    assert_eq!(site.buffer.dropped(), 1);
    let sk = site.finish();
    // Exactly the two accepted arrivals are counted.
    let est = sk
        .query(&Query::point(7), WindowSpec::time(1_000, WINDOW))
        .unwrap()
        .into_value()
        .value;
    assert!((est - 2.0).abs() < 1e-9, "est={est}");
}

#[test]
fn reorder_buffer_wraps_any_counter_generically() {
    // The wrapper is generic over WindowCounter: drive it with the
    // randomized wave as well.
    use sliding_window::{RandomizedWave, RwConfig};
    let cfg = RwConfig::new(0.3, 0.1, 10_000, 5_000, 11);
    let mut buf: ReorderBuffer<RandomizedWave> = ReorderBuffer::new(&cfg, ReorderConfig::new(4));
    for i in (1..=1_000u64).rev().step_by(1) {
        // Deliver in blocks with local disorder: 4,3,2,1, 8,7,6,5, ...
        let block = (1_000 - i) / 4;
        let within = (1_000 - i) % 4;
        let ts = block * 4 + (4 - within);
        buf.offer(ts, i);
    }
    buf.flush_all();
    assert_eq!(buf.inner().lifetime_ones(), 1_000);
    assert_eq!(buf.dropped(), 0);
}
