//! Cross-crate validation of drift-triggered propagation (Chan et al., §2)
//! on generated workloads: the coordinator's continuously maintained count
//! respects the θ+ε envelope through diurnal load swings and flash crowds,
//! at a communication cost far under per-arrival forwarding.

use ecm_suite::distributed::DriftPropagation;
use ecm_suite::sliding_window::EhConfig;
use ecm_suite::stream_gen::{inject_flash_crowd, uniform_sites, FlashCrowd};

const WINDOW: u64 = 100_000;
const SITES: usize = 8;

#[test]
fn envelope_holds_through_a_flash_crowd() {
    let base = uniform_sites(60_000, SITES as u32, 5);
    let events = inject_flash_crowd(
        &base,
        &FlashCrowd {
            target_key: 1,
            start: 1_200_000,
            duration: WINDOW / 2,
            volume: 20_000,
            sources: SITES as u32,
            seed: 2,
        },
    );
    let (eps, theta) = (0.05, 0.1);
    let mut p = DriftPropagation::new(SITES, &EhConfig::new(eps, WINDOW), theta);
    let bound = p.error_bound();
    let mut window_ticks: Vec<u64> = Vec::new();
    let mut checked = 0u32;
    for (i, e) in events.iter().enumerate() {
        p.observe(e.site as usize, e.ts);
        window_ticks.push(e.ts);
        if i % 500 == 0 && i > 0 {
            let cutoff = e.ts.saturating_sub(WINDOW);
            let exact = window_ticks
                .iter()
                .rev()
                .take_while(|&&t| t > cutoff)
                .count() as f64;
            if exact < 200.0 {
                continue;
            }
            let est = p.coordinator_estimate();
            assert!(
                (est - exact).abs() <= bound * exact + SITES as f64,
                "i={i} est={est} exact={exact} bound={bound}"
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "not enough checkpoints: {checked}");
    // Communication: far below one message per arrival, even with the burst.
    let s = p.stats();
    assert!(
        s.shipments * 10 < events.len() as u64,
        "{} shipments for {} events",
        s.shipments,
        events.len()
    );
}

#[test]
fn tighter_theta_costs_more_communication() {
    let events = uniform_sites(40_000, SITES as u32, 9);
    let mut shipments = Vec::new();
    for &theta in &[0.02f64, 0.1, 0.4] {
        let mut p = DriftPropagation::new(SITES, &EhConfig::new(0.05, WINDOW), theta);
        for e in &events {
            p.observe(e.site as usize, e.ts);
        }
        shipments.push(p.stats().shipments);
    }
    assert!(
        shipments[0] > shipments[1] && shipments[1] > shipments[2],
        "shipments must fall with theta: {shipments:?}"
    );
}
