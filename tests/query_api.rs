//! Contract tests for the unified typed query API (`ecm::query`):
//!
//! * the *same* `Query` value yields consistent answers (within the summed
//!   ε envelopes) from a local sketch, a dyadic hierarchy, a sharded
//!   array, and a tree-aggregated distributed root;
//! * `Estimate` guarantees are honored against exact ground truth,
//!   including through the `EcmExact` same-API harness;
//! * `WindowSpec` validation turns the legacy silent clamps into typed
//!   errors on every backend;
//! * all backends dispatch through `&dyn SketchReader` trait objects.

use ecm_suite::distributed::aggregate_tree;
use ecm_suite::ecm::{
    Answer, CountBasedEcm, CountBasedHierarchy, EcmBuilder, EcmEh, EcmExact, EcmHierarchy, Query,
    QueryError, ShardedEcm, SketchReader, Threshold, WindowSpec,
};
use ecm_suite::sliding_window::ExponentialHistogram;
use ecm_suite::stream_gen::{worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;
const EVENTS: usize = 30_000;
const EPS: f64 = 0.1;
const BITS: u32 = 16;

fn value(reader: &dyn SketchReader, q: &Query<'_>, w: WindowSpec) -> f64 {
    reader
        .query(q, w)
        .expect("in-window query must succeed")
        .into_value()
        .value
}

/// Build the four time-based backends over the identical event stream.
fn build_backends(
    events: &[ecm_suite::stream_gen::Event],
) -> (
    EcmEh,
    EcmHierarchy<ExponentialHistogram>,
    ShardedEcm<ExponentialHistogram>,
    ecm_suite::distributed::AggregationOutcome<ExponentialHistogram>,
) {
    let cfg = EcmBuilder::new(EPS, 0.05, WINDOW).seed(9).eh_config();

    let mut local = EcmEh::new(&cfg);
    for e in events {
        local.insert(e.key, e.ts);
    }

    let mut hierarchy = EcmHierarchy::new(BITS, &cfg);
    for e in events {
        hierarchy.insert(e.key, e.ts);
    }

    let sharded = ShardedEcm::ingest_parallel(&cfg, 4, events.iter().map(|e| (e.key, e.ts)));

    let sites = 8usize;
    let mut parts: Vec<Vec<(u64, u64)>> = vec![Vec::new(); sites];
    for e in events {
        parts[(e.site as usize) % sites].push((e.key, e.ts));
    }
    let aggregated = aggregate_tree(
        sites,
        |i| {
            let mut sk = EcmEh::new(&cfg);
            sk.set_id_namespace(i as u64 + 1);
            for &(k, t) in &parts[i] {
                sk.insert(k, t);
            }
            sk
        },
        &cfg.cell,
    )
    .expect("homogeneous merge");

    (local, hierarchy, sharded, aggregated)
}

#[test]
fn same_query_consistent_across_backends() {
    let events = worldcup_like(EVENTS, 51);
    let oracle = WindowOracle::from_events(&events);
    let (local, hierarchy, sharded, aggregated) = build_backends(&events);
    let now = oracle.last_tick();

    for range in [100_000u64, WINDOW] {
        let w = WindowSpec::time(now, range);
        let norm = oracle.total(now, range) as f64;
        if norm < 500.0 {
            continue;
        }
        let mut checked = 0u32;
        for key in (0..3_000u64).step_by(7) {
            let exact = oracle.frequency(key, now, range) as f64;
            if exact == 0.0 {
                continue;
            }
            checked += 1;
            let q = Query::point(key);
            let answers = [
                ("local", local.query(&q, w).unwrap().into_value()),
                ("hierarchy", hierarchy.query(&q, w).unwrap().into_value()),
                ("sharded", sharded.query(&q, w).unwrap().into_value()),
                ("aggregated", aggregated.query(&q, w).unwrap().into_value()),
            ];
            // Each backend's observed error is covered by the guarantee it
            // itself reports (the aggregated backend's is widened by the
            // tree's Theorem-4 merge inflation).
            for (name, est) in answers {
                let g = est.guarantee.expect("EH backends carry guarantees");
                assert!(
                    (est.value - exact).abs() <= g.epsilon * norm + 2.0,
                    "{name}: key={key} range={range} est={} exact={exact} ε={}",
                    est.value,
                    g.epsilon
                );
            }
            // Any two backends agree within the sum of envelopes.
            for (na, ea) in answers {
                for (nb, eb) in answers {
                    assert!(
                        (ea.value - eb.value).abs() <= 4.0 * EPS * norm + 4.0,
                        "{na} vs {nb} disagree at key {key}: {} vs {}",
                        ea.value,
                        eb.value
                    );
                }
            }
            // The merged backend must report a strictly wider contract than
            // the local sketch it was merged from.
            assert!(
                answers[3].1.guarantee.unwrap().epsilon > answers[0].1.guarantee.unwrap().epsilon,
                "aggregation must widen the guarantee"
            );
        }
        assert!(checked > 20, "workload too sparse at range {range}");
    }

    // Scalar aggregates answer consistently too.
    let w = WindowSpec::time(now, WINDOW);
    let norm = oracle.total(now, WINDOW) as f64;
    let totals = [
        value(&local, &Query::total_arrivals(), w),
        value(&hierarchy, &Query::total_arrivals(), w),
        value(&sharded, &Query::total_arrivals(), w),
        value(&aggregated, &Query::total_arrivals(), w),
    ];
    for t in totals {
        assert!((t - norm).abs() <= 0.15 * norm, "total {t} vs norm {norm}");
    }
}

#[test]
fn estimates_honor_their_guarantees_against_exact_ground_truth() {
    let events = worldcup_like(EVENTS, 77);
    let oracle = WindowOracle::from_events(&events);
    let now = oracle.last_tick();

    // The EcmExact harness answers the same typed API with exact window
    // counters — its guarantee collapses to hashing error only.
    let b = EcmBuilder::new(EPS, 0.05, WINDOW).seed(4);
    let mut exact_backend = EcmExact::new(&b.exact_config());
    let mut eh_backend = EcmEh::new(&b.eh_config());
    for e in &events {
        exact_backend.insert(e.key, e.ts);
        eh_backend.insert(e.key, e.ts);
    }

    for range in [300_000u64, WINDOW] {
        let w = WindowSpec::time(now, range);
        let norm = oracle.total(now, range) as f64;
        if norm < 500.0 {
            continue;
        }
        let mut violations_eh = 0u32;
        let mut violations_exact = 0u32;
        let mut n = 0u32;
        for key in (0..3_000u64).step_by(7) {
            let truth = oracle.frequency(key, now, range) as f64;
            if truth == 0.0 {
                continue;
            }
            n += 1;

            let est = eh_backend
                .query(&Query::point(key), w)
                .unwrap()
                .into_value();
            let g = est.guarantee.expect("EH carries a guarantee");
            // Derived ε must not exceed the configured budget.
            assert!(g.epsilon <= EPS + 1e-9);
            if (est.value - truth).abs() > est.absolute_bound(norm).unwrap() + 2.0 {
                violations_eh += 1;
            }

            let est = exact_backend
                .query(&Query::point(key), w)
                .unwrap()
                .into_value();
            let g = est.guarantee.expect("exact harness carries a guarantee");
            // Exact counters: window ε = 0, so the bound is pure hashing.
            assert!(g.epsilon <= EPS + 1e-9);
            // Count-Min is one-sided: never underestimates exact counts.
            assert!(est.value >= truth - 1e-9);
            if (est.value - truth).abs() > est.absolute_bound(norm).unwrap() + 2.0 {
                violations_exact += 1;
            }
        }
        assert!(n > 30, "workload too sparse");
        // The guarantee holds with probability ≥ 1 − δ per query; allow δ
        // (5%) plus sampling slack.
        assert!(
            violations_eh * 10 <= n,
            "range {range}: {violations_eh}/{n} EH guarantee violations"
        );
        assert!(
            violations_exact * 10 <= n,
            "range {range}: {violations_exact}/{n} exact-harness violations"
        );
    }
}

#[test]
fn window_validation_rejects_out_of_contract_queries_on_every_backend() {
    let events = worldcup_like(2_000, 5);
    let (local, hierarchy, sharded, aggregated) = build_backends(&events);
    let now = events.last().unwrap().ts;

    let too_long = WindowSpec::time(now, WINDOW + 1);
    let count_w = WindowSpec::last(100);
    let q = Query::point(1);

    for (name, backend) in [
        ("local", &local as &dyn SketchReader),
        ("hierarchy", &hierarchy),
        ("sharded", &sharded),
        ("aggregated", &aggregated),
    ] {
        assert!(
            matches!(
                backend.query(&q, too_long),
                Err(QueryError::WindowTooLong {
                    requested,
                    configured: WINDOW
                }) if requested == WINDOW + 1
            ),
            "{name} must reject over-long windows"
        );
        assert!(
            matches!(
                backend.query(&q, count_w),
                Err(QueryError::ClockMismatch { .. })
            ),
            "{name} must reject count-based windows"
        );
    }

    // Count-based backends mirror the validation on their own clock.
    let cfg = EcmBuilder::new(EPS, 0.1, 1_000).seed(2).eh_config();
    let mut cb: CountBasedEcm<ExponentialHistogram> = CountBasedEcm::new(&cfg);
    for i in 0..500u64 {
        cb.insert(i % 10);
    }
    assert!(matches!(
        cb.query(&q, WindowSpec::last(1_001)),
        Err(QueryError::WindowTooLong {
            requested: 1_001,
            configured: 1_000
        })
    ));
    assert!(matches!(
        cb.query(&q, WindowSpec::time(500, 100)),
        Err(QueryError::ClockMismatch { .. })
    ));
}

#[test]
fn trait_object_dispatch_over_all_backends() {
    let events = worldcup_like(5_000, 33);
    let now = events.last().unwrap().ts;
    let cfg = EcmBuilder::new(EPS, 0.1, WINDOW).seed(9).eh_config();

    // Count-based twins over the same key sequence.
    let mut cb_sketch: CountBasedEcm<ExponentialHistogram> = CountBasedEcm::new(&cfg);
    let mut cb_hierarchy: CountBasedHierarchy<ExponentialHistogram> =
        CountBasedHierarchy::new(BITS, &cfg);
    for e in &events {
        cb_sketch.insert(e.key);
        cb_hierarchy.insert(e.key);
    }

    let (local, hierarchy, sharded, aggregated) = build_backends(&events);

    // One heterogeneous registry, as a serving layer would hold it; each
    // entry carries the window vocabulary it speaks.
    let time_w = WindowSpec::time(now, WINDOW);
    let count_w = WindowSpec::last(events.len() as u64);
    let registry: Vec<(&'static str, Box<dyn SketchReader>, WindowSpec)> = vec![
        ("EcmSketch", Box::new(local), time_w),
        ("EcmHierarchy", Box::new(hierarchy), time_w),
        ("ShardedEcm", Box::new(sharded), time_w),
        ("AggregationOutcome", Box::new(aggregated), time_w),
        ("CountBasedEcm", Box::new(cb_sketch), count_w),
        ("CountBasedHierarchy", Box::new(cb_hierarchy), count_w),
    ];

    let probe = events[0].key;
    let cutoff = now.saturating_sub(WINDOW);
    // Time windows cover only the trailing WINDOW ticks; count windows
    // cover the whole trace. Score each registry entry on its own slice.
    let exact_in = |time_based: bool| -> (f64, f64) {
        let in_slice = |e: &&ecm_suite::stream_gen::Event| !time_based || e.ts > cutoff;
        (
            events
                .iter()
                .filter(in_slice)
                .filter(|e| e.key == probe)
                .count() as f64,
            events.iter().filter(in_slice).count() as f64,
        )
    };
    for (name, backend, w) in &registry {
        assert_eq!(backend.backend(), *name, "backend self-identification");
        let (exact, slice_total) = exact_in(matches!(w, WindowSpec::Time { .. }));
        // Point queries dispatch everywhere and stay in the envelope.
        let est = backend
            .query(&Query::point(probe), *w)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .into_value();
        assert!(
            (est.value - exact).abs() <= EPS * slice_total + 2.0,
            "{name}: est {} exact {exact}",
            est.value
        );

        // Total arrivals dispatches everywhere.
        let total = backend
            .query(&Query::total_arrivals(), *w)
            .unwrap()
            .into_value();
        assert!(
            (total.value - slice_total).abs() <= 0.2 * slice_total,
            "{name}: total {} vs {slice_total}",
            total.value
        );

        // Key-structured queries answer on hierarchies and return typed
        // Unsupported elsewhere.
        match backend.query(&Query::quantile(0.5), *w) {
            Ok(Answer::Quantile(Some(_))) => {
                assert!(
                    name.contains("Hierarchy"),
                    "{name} unexpectedly answered a quantile"
                );
            }
            Err(QueryError::Unsupported { backend: b, .. }) => {
                assert_eq!(b, *name);
            }
            other => panic!("{name}: unexpected quantile outcome {other:?}"),
        }
    }
}

#[test]
fn heavy_hitters_agree_between_hierarchy_clocks() {
    // The same logical stream addressed by tick and by arrival index gives
    // the same heavy-hitter set when the windows coincide.
    let cfg = EcmBuilder::new(0.05, 0.05, 10_000).seed(3).eh_config();
    let mut time_h: EcmHierarchy<ExponentialHistogram> = EcmHierarchy::new(10, &cfg);
    let mut count_h: CountBasedHierarchy<ExponentialHistogram> = CountBasedHierarchy::new(10, &cfg);
    for i in 1..=10_000u64 {
        let key = if i % 4 == 0 { 77 } else { i % 512 };
        time_h.insert(key, i); // tick = arrival index
        count_h.insert(key);
    }
    let q = Query::heavy_hitters(Threshold::Relative(0.2));
    let from_time = time_h
        .query(&q, WindowSpec::time(10_000, 10_000))
        .unwrap()
        .into_heavy_hitters();
    let from_count = count_h
        .query(&q, WindowSpec::last(10_000))
        .unwrap()
        .into_heavy_hitters();
    let keys_t: Vec<u64> = from_time.iter().map(|&(k, _)| k).collect();
    let keys_c: Vec<u64> = from_count.iter().map(|&(k, _)| k).collect();
    assert_eq!(keys_t, keys_c);
    assert!(keys_t.contains(&77));
}

#[test]
fn inner_product_pairs_compatible_backends_only() {
    let cfg = EcmBuilder::new(0.1, 0.1, 10_000).seed(6).eh_config();
    let mut a = EcmEh::new(&cfg);
    let mut b = EcmEh::new(&cfg);
    for t in 1..=4_000u64 {
        a.insert(t % 8, t);
        b.insert(t % 16, t);
    }
    let w = WindowSpec::time(4_000, 10_000);
    // a: 500 per key on 0..8; b: 250 per key on 0..16; overlap 8·500·250.
    let ip = a.query(&Query::inner_product(&b), w).unwrap().into_value();
    let exact = 8.0 * 500.0 * 250.0;
    assert!(
        (ip.value - exact).abs() <= 0.4 * exact,
        "ip={} exact={exact}",
        ip.value
    );
    // Inner products are symmetric operands.
    let ip_rev = b.query(&Query::inner_product(&a), w).unwrap().into_value();
    assert!((ip.value - ip_rev.value).abs() <= 1e-6 * exact);

    // A sharded operand cannot pair with a plain sketch.
    let sh = ShardedEcm::<ExponentialHistogram>::new(&cfg, 2);
    let err = a.query(&Query::inner_product(&sh), w).unwrap_err();
    assert!(matches!(err, QueryError::IncompatibleOperand { .. }));

    // An aggregation outcome pairs with another outcome or a plain sketch
    // of the same counter type; anything else is rejected with the
    // outcome — not its inner root — named in the error.
    let out = aggregate_tree(2, |i| if i == 0 { a.clone() } else { b.clone() }, &cfg.cell).unwrap();
    let paired = out
        .query(&Query::inner_product(&a), w)
        .unwrap()
        .into_value();
    assert!(paired.value > 0.0);
    let err = out.query(&Query::inner_product(&sh), w).unwrap_err();
    match err {
        QueryError::IncompatibleOperand { detail } => {
            assert!(detail.contains("AggregationOutcome"), "detail: {detail}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn spec_built_backends_agree_with_hand_constructed_ones() {
    // The legacy positional shims are gone; the compatibility claim that
    // replaces them is construction-side: a `SketchSpec`-built trait object
    // answers byte-identically to the hand-built sketch it describes (the
    // full per-backend matrix lives in tests/dyn_sketch.rs).
    use ecm_suite::ecm::{Backend, SketchSpec};
    let events = worldcup_like(8_000, 21);
    let now = events.last().unwrap().ts;
    let cfg = EcmBuilder::new(EPS, 0.05, WINDOW).seed(9).eh_config();
    let mut sk = EcmEh::new(&cfg);
    let mut dyn_sk = SketchSpec::time(WINDOW)
        .epsilon(EPS)
        .delta(0.05)
        .seed(9)
        .backend(Backend::Eh)
        .build()
        .expect("valid spec");
    for e in &events {
        sk.insert(e.key, e.ts);
        dyn_sk.insert(e.ts, e.key);
    }
    let w = WindowSpec::time(now, WINDOW);
    for key in (0..500u64).step_by(11) {
        assert_eq!(
            value(&sk, &Query::point(key), w),
            value(&*dyn_sk, &Query::point(key), w)
        );
    }
    assert_eq!(
        value(&sk, &Query::self_join(), w),
        value(&*dyn_sk, &Query::self_join(), w)
    );
}
