//! Sliding-window range queries: the dyadic ECM hierarchy (paper §6.1)
//! against the exact oracle and against the hybrid-histogram baseline the
//! related-work section dismisses (§2). All hierarchy queries go through
//! the unified `SketchReader::query` surface.

use ecm_suite::ecm::{EcmBuilder, EcmHierarchy, Query, SketchReader, WindowSpec};
use ecm_suite::sliding_window::{HybridConfig, HybridHistogram};
use ecm_suite::stream_gen::{worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;
const KEY_BITS: u32 = 16;

fn build_inputs(events: usize, seed: u64) -> (Vec<ecm_suite::stream_gen::Event>, WindowOracle) {
    let events = worldcup_like(events, seed);
    let oracle = WindowOracle::from_events(&events);
    (events, oracle)
}

/// Route one scalar query through the typed API and unwrap its value.
fn value(reader: &dyn SketchReader, q: &Query<'_>, w: WindowSpec) -> f64 {
    reader
        .query(q, w)
        .expect("in-window query must succeed")
        .into_value()
        .value
}

#[test]
fn hierarchy_range_sums_meet_dyadic_envelope() {
    let (events, oracle) = build_inputs(30_000, 3);
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(5).eh_config();
    let mut h = EcmHierarchy::new(KEY_BITS, &cfg);
    for e in &events {
        h.insert(e.key, e.ts);
    }
    let now = oracle.last_tick();

    for range in [10_000u64, 100_000, WINDOW] {
        let w = WindowSpec::time(now, range);
        let norm = oracle.total(now, range) as f64;
        if norm < 100.0 {
            continue;
        }
        // Any [lo, hi] decomposes into ≤ 2·KEY_BITS dyadic ranges, each with
        // its own ε‖a_r‖₁ envelope (paper §6.1 range-sum analysis).
        let envelope = 2.0 * f64::from(KEY_BITS) * eps * norm;
        for (lo, hi) in [
            (0u64, (1 << KEY_BITS) - 1), // whole domain
            (0, 999),
            (10_000, 20_000),
            (123, 456),
            (40_000, 49_999),
        ] {
            let exact = oracle.range_sum(lo, hi, now, range) as f64;
            let answer = h.query(&Query::range_sum(lo, hi), w).unwrap().into_value();
            let est = answer.value;
            assert!(
                (est - exact).abs() <= envelope + 2.0,
                "range=({lo},{hi}) window={range} est={est} exact={exact} envelope={envelope}"
            );
            // The reported guarantee is exactly the dyadic-cover inflation
            // the envelope above hand-computes (the derived ε is tighter
            // than the builder's target, never looser).
            let g = answer.guarantee.expect("EH hierarchies carry a guarantee");
            assert!(
                g.epsilon <= 2.0 * f64::from(KEY_BITS) * eps,
                "reported ε={} exceeds the analytical budget",
                g.epsilon
            );
            assert!((est - exact).abs() <= g.epsilon * norm + 2.0);
        }
    }
}

#[test]
fn whole_domain_range_equals_total_arrivals_estimate() {
    let (events, oracle) = build_inputs(10_000, 9);
    let cfg = EcmBuilder::new(0.1, 0.1, WINDOW).seed(2).eh_config();
    let mut h = EcmHierarchy::new(KEY_BITS, &cfg);
    for e in &events {
        h.insert(e.key, e.ts);
    }
    let now = oracle.last_tick();
    let exact = oracle.total(now, WINDOW) as f64;
    let w = WindowSpec::time(now, WINDOW);
    let est = value(&h, &Query::range_sum(0, (1 << KEY_BITS) - 1), w);
    assert!(
        (est - exact).abs() <= 0.2 * exact + 2.0,
        "est={est} exact={exact}"
    );
    // The same window through Query::total_arrivals agrees with the
    // whole-domain range sum.
    let total = value(&h, &Query::total_arrivals(), w);
    assert!(
        (total - exact).abs() <= 0.2 * exact + 2.0,
        "total={total} exact={exact}"
    );
}

#[test]
fn hybrid_baseline_fails_where_hierarchy_holds() {
    // Skewed mass inside one value bin: the hybrid histogram has no handle
    // on the value dimension, the hierarchy does. This is the paper's §2
    // criticism as an executable statement.
    let eps = 0.1;
    let domain = 1u64 << KEY_BITS;
    let hcfg = HybridConfig::new(eps, WINDOW, domain, 256); // bins of 256 keys
    let mut hybrid = HybridHistogram::new(&hcfg);
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(5).eh_config();
    let mut hierarchy = EcmHierarchy::new(KEY_BITS, &cfg);

    // All mass on key 1000 (bin 3: keys 768..1023).
    let n = 20_000u64;
    for t in 1..=n {
        hybrid.insert(t, 1_000);
        hierarchy.insert(1_000, t);
    }
    // Query a sibling key range in the same bin, truly empty.
    let (lo, hi) = (800u64, 900u64);
    let hybrid_est = hybrid.range_query(n, WINDOW, lo, hi);
    let hier_est = value(
        &hierarchy,
        &Query::range_sum(lo, hi),
        WindowSpec::time(n, WINDOW),
    );
    assert!(
        hybrid_est > 0.3 * n as f64 * (101.0 / 256.0),
        "hybrid proration should misattribute mass, got {hybrid_est}"
    );
    assert!(
        hier_est <= 0.25 * n as f64,
        "hierarchy must keep its guarantee, got {hier_est}"
    );
    assert!(
        hier_est < hybrid_est / 2.0,
        "hierarchy ({hier_est}) must beat hybrid ({hybrid_est}) on skew"
    );
}

#[test]
fn range_queries_respect_the_time_dimension() {
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.05, 1_000).seed(8).eh_config();
    let mut h = EcmHierarchy::new(8, &cfg);
    // Two epochs: keys 0..16 early, keys 64..80 late.
    for t in 1..=1_000u64 {
        h.insert(t % 16, t);
    }
    for t in 1_001..=2_000u64 {
        h.insert(64 + t % 16, t);
    }
    // Recent window: early keys aged out.
    let w = WindowSpec::time(2_000, 900);
    let early = value(&h, &Query::range_sum(0, 15), w);
    let late = value(&h, &Query::range_sum(64, 79), w);
    assert!(early <= 150.0, "stale range must have aged out: {early}");
    assert!(
        (late - 900.0).abs() <= 250.0,
        "recent range must be present: {late}"
    );
}

#[test]
fn over_long_ranges_error_instead_of_clamping() {
    let cfg = EcmBuilder::new(0.1, 0.05, 1_000).seed(8).eh_config();
    let mut h = EcmHierarchy::new(8, &cfg);
    for t in 1..=500u64 {
        h.insert(t % 16, t);
    }
    // The legacy API silently clamped ranges beyond the configured window;
    // the typed API reports them.
    let err = h
        .query(&Query::range_sum(0, 15), WindowSpec::time(500, 5_000))
        .unwrap_err();
    assert!(
        matches!(
            err,
            ecm_suite::ecm::QueryError::WindowTooLong {
                requested: 5_000,
                configured: 1_000
            }
        ),
        "unexpected error: {err:?}"
    );
}
