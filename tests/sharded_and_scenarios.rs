//! Cross-crate checks of the sharded-ingestion extension against the
//! scenario generators: parallel ingestion must behave identically to
//! sequential processing under flash crowds, poll bursts and bounded-delay
//! reordering (repaired by the reorder buffer).

use ecm_suite::ecm::{partition_pairs, EcmBuilder, Query, ShardedEcm, SketchReader, WindowSpec};
use ecm_suite::sliding_window::ExponentialHistogram;
use ecm_suite::stream_gen::{
    bounded_delay_shuffle, inject_flash_crowd, inject_poll_bursts, uniform_sites, FlashCrowd,
    PollBursts, WindowOracle,
};
use std::collections::BTreeMap;

type Sharded = ShardedEcm<ExponentialHistogram>;

const WINDOW: u64 = 300_000;

/// Route a point query through the unified typed API.
fn point(sh: &Sharded, key: u64, now: u64, range: u64) -> f64 {
    sh.query(&Query::point(key), WindowSpec::time(now, range))
        .expect("in-window query must succeed")
        .into_value()
        .value
}

#[test]
fn sharded_sketch_detects_the_flash_crowd() {
    let base = uniform_sites(30_000, 4, 3);
    let start = 2_000_000u64;
    let events = inject_flash_crowd(
        &base,
        &FlashCrowd {
            target_key: 777,
            start,
            duration: WINDOW / 3,
            volume: 6_000,
            sources: 4,
            seed: 1,
        },
    );
    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(9).eh_config();
    let mid = start + WINDOW / 3;

    // Ingest in parallel up to mid-attack.
    let prefix: Vec<(u64, u64)> = events
        .iter()
        .take_while(|e| e.ts <= mid)
        .map(|e| (e.key, e.ts))
        .collect();
    let oracle = WindowOracle::from_events(&events[..prefix.len()]);
    let sh = Sharded::ingest_parallel(&cfg, 4, prefix.iter().copied());

    let exact = oracle.frequency(777, mid, WINDOW) as f64;
    let est = point(&sh, 777, mid, WINDOW);
    let norm = oracle.total(mid, WINDOW) as f64;
    assert!(exact > 3_000.0, "attack missing from the oracle: {exact}");
    assert!(
        (est - exact).abs() <= eps * norm + 2.0,
        "est={est} exact={exact}"
    );
}

#[test]
fn poll_bursts_show_up_as_per_site_keys() {
    let polls = PollBursts {
        interval: 50_000,
        per_site: 40,
        sites: 5,
        key_base: 9_000_000,
        start: 0,
        end: 2_599_999,
    };
    let events = inject_poll_bursts(&uniform_sites(10_000, 5, 8), &polls);
    let cfg = EcmBuilder::new(0.1, 0.05, WINDOW).seed(4).eh_config();
    let pairs: Vec<(u64, u64)> = events.iter().map(|e| (e.key, e.ts)).collect();
    let sh = Sharded::ingest_prepartitioned(&cfg, partition_pairs(pairs, 3, cfg.seed));

    let now = events.last().unwrap().ts;
    // Each site's poll key fires per interval: WINDOW/interval rounds of
    // per_site events each are inside the window.
    let rounds_in_window = WINDOW / polls.interval;
    let expected = (rounds_in_window * polls.per_site as u64) as f64;
    for s in 0..5u64 {
        let est = point(&sh, 9_000_000 + s, now, WINDOW);
        assert!(
            est >= expected * 0.6 && est <= expected * 1.8 + 100.0,
            "site {s}: est={est} expected≈{expected}"
        );
    }
}

#[test]
fn reorder_buffer_repairs_bounded_delay_for_sharded_ingestion() {
    let base = uniform_sites(20_000, 2, 5);
    let max_delay = 5_000u64;
    let (delivered, max_inv) = bounded_delay_shuffle(&base, max_delay, 13);
    assert!(max_inv > 0, "shuffle must produce disorder");

    // Repair the delivery order with a watermark buffer (the event-stream
    // analogue of `sliding_window::ReorderBuffer`, which wraps a single
    // counter): hold events until the watermark passes their tick by the
    // delay bound, then release in tick order.
    let mut pending: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut watermark = 0u64;
    let mut peak_buffered = 0usize;
    let mut buffered = 0usize;
    let mut repaired: Vec<(u64, u64)> = Vec::with_capacity(delivered.len());
    for e in &delivered {
        watermark = watermark.max(e.ts);
        pending.entry(e.ts).or_default().push(e.key);
        buffered += 1;
        peak_buffered = peak_buffered.max(buffered);
        let horizon = watermark.saturating_sub(max_delay);
        while let Some((&ts, _)) = pending.first_key_value() {
            if ts >= horizon {
                break;
            }
            let (ts, keys) = pending.pop_first().unwrap();
            buffered -= keys.len();
            repaired.extend(keys.into_iter().map(|k| (k, ts)));
        }
    }
    while let Some((ts, keys)) = pending.pop_first() {
        repaired.extend(keys.into_iter().map(|k| (k, ts)));
    }
    assert_eq!(repaired.len(), base.len(), "no events may be dropped");
    // Bounded-delay repair needs only bounded memory: never more events
    // buffered than can arrive within one delay horizon.
    let max_density = base.len() as u64 * 2 * max_delay / 2_600_000 + 50;
    assert!(
        (peak_buffered as u64) <= max_density,
        "peak buffer {peak_buffered} exceeds horizon density {max_density}"
    );
    assert!(
        repaired.windows(2).all(|w| w[0].1 <= w[1].1),
        "repaired stream must be tick-ordered"
    );

    let eps = 0.1;
    let cfg = EcmBuilder::new(eps, 0.05, WINDOW).seed(21).eh_config();
    let sh = Sharded::ingest_parallel(&cfg, 4, repaired.iter().copied());

    // Estimates must match a sketch of the original in-order stream exactly:
    // the repaired stream is a permutation restoring tick order, and ties
    // within one tick do not affect any window counter.
    let in_order: Vec<(u64, u64)> = base.iter().map(|e| (e.key, e.ts)).collect();
    let reference = Sharded::ingest_parallel(&cfg, 4, in_order.iter().copied());
    let now = base.last().unwrap().ts;
    for key in (0..2_000u64).step_by(29) {
        assert_eq!(
            point(&sh, key, now, WINDOW),
            point(&reference, key, now, WINDOW),
            "key={key}"
        );
    }
}
