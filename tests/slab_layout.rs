//! Differential proof of the slab-backed EH grid: an
//! `EcmSketch<ExponentialHistogram>` — whose cells live in the contiguous
//! `EhGrid` slab — must be indistinguishable from the per-cell layout it
//! replaced. A *legacy replica* (one standalone `ExponentialHistogram` per
//! cell, routed through the same `HashFamily`, exactly how `EcmSketch`
//! stored its cells before the slab) is fed the identical trace, and the
//! suite checks, across random bursty workloads:
//!
//! * every cell's estimate is **bit-identical** (`f64::to_bits`) for a
//!   spread of query ranges;
//! * the sketch's wire encoding is **byte-identical** to one assembled from
//!   the legacy per-cell encoders — the codec did not change;
//! * legacy-assembled wire bytes **decode into the slab layout** and
//!   round-trip (codec cross-compatibility), so sketches serialized before
//!   this change deserialize into slab-backed sketches unchanged.
//!
//! Counter-level differential coverage (cascade, expiry, offset rebasing,
//! u64 fallback) lives with the slab itself in
//! `crates/sliding-window/src/eh_slab.rs`.

use ecm_suite::count_min::HashFamily;
use ecm_suite::ecm::{EcmBuilder, EcmConfig, EcmSketch, StreamEvent};
use ecm_suite::sliding_window::codec::{put_u8, put_varint};
use ecm_suite::sliding_window::traits::WindowCounter;
use ecm_suite::sliding_window::ExponentialHistogram;
use ecm_suite::stream_gen::SeededRng;
use proptest::prelude::*;

/// The ECM wire codec version `EcmSketch::encode` writes (pinned here so a
/// silent bump cannot masquerade as cross-compatibility).
const ECM_CODEC_VERSION: u8 = 1;

/// The per-cell layout `EcmSketch` used before the slab: standalone
/// histograms in a flat row-major `Vec`, plus the scalar bookkeeping the
/// sketch codec carries.
struct LegacyReplica {
    cfg: EcmConfig<ExponentialHistogram>,
    hashes: HashFamily,
    cells: Vec<ExponentialHistogram>,
    seq: u64,
    last_ts: u64,
    lifetime: u64,
}

impl LegacyReplica {
    fn new(cfg: &EcmConfig<ExponentialHistogram>) -> Self {
        LegacyReplica {
            cfg: cfg.clone(),
            hashes: HashFamily::from_seed(cfg.seed, cfg.depth),
            cells: (0..cfg.width * cfg.depth)
                .map(|_| ExponentialHistogram::new(&cfg.cell))
                .collect(),
            seq: 0,
            last_ts: 0,
            lifetime: 0,
        }
    }

    fn insert_weighted(&mut self, item: u64, ts: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.seq += n;
        self.last_ts = self.last_ts.max(ts);
        self.lifetime += n;
        for j in 0..self.cfg.depth {
            let idx = j * self.cfg.width + self.hashes.bucket(j, item, self.cfg.width);
            self.cells[idx].insert_ones(ts, n);
        }
    }

    /// Assemble the sketch wire format from the **legacy per-cell
    /// encoders** — byte-for-byte what a pre-slab `EcmSketch` would ship.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u8(&mut buf, ECM_CODEC_VERSION);
        put_varint(&mut buf, self.cfg.width as u64);
        put_varint(&mut buf, self.cfg.depth as u64);
        self.hashes.encode(&mut buf);
        for cell in &self.cells {
            cell.encode(&mut buf);
        }
        put_varint(&mut buf, 0); // id namespace
        put_varint(&mut buf, self.seq);
        put_varint(&mut buf, self.last_ts);
        put_varint(&mut buf, self.lifetime);
        buf
    }
}

fn encode_sketch(sk: &EcmSketch<ExponentialHistogram>) -> Vec<u8> {
    let mut buf = Vec::new();
    sk.encode(&mut buf);
    buf
}

/// Feed the same random bursty trace to a slab-backed sketch and the
/// legacy replica, then check estimates, encodings and cross-decoding.
fn differential(cfg: &EcmConfig<ExponentialHistogram>, trace: &[(u64, u64, u64)]) {
    let mut slab = EcmSketch::new(cfg);
    let mut legacy = LegacyReplica::new(cfg);
    for &(key, ts, weight) in trace {
        slab.insert_weighted(key, ts, weight);
        legacy.insert_weighted(key, ts, weight);
    }
    let now = trace.last().map(|&(_, ts, _)| ts).unwrap_or(0);
    let window = cfg.cell.window;

    // Identical estimates, cell by cell, bit for bit.
    for row in 0..cfg.depth {
        for col in 0..cfg.width {
            for range in [1, window / 9 + 1, window / 2, window] {
                let s = slab.cell_estimate(row, col, now, range);
                let l = legacy.cells[row * cfg.width + col].estimate(now, range);
                assert_eq!(
                    s.to_bits(),
                    l.to_bits(),
                    "cell ({row},{col}) range {range}: slab {s} vs legacy {l}"
                );
            }
        }
    }

    // Byte-identical encodings.
    let slab_wire = encode_sketch(&slab);
    let legacy_wire = legacy.encode();
    assert_eq!(slab_wire, legacy_wire, "wire formats diverged");

    // Legacy wire bytes decode into the slab layout and round-trip.
    let mut input = legacy_wire.as_slice();
    let decoded = EcmSketch::<ExponentialHistogram>::decode(cfg, &mut input)
        .expect("legacy bytes must decode into the slab layout");
    assert!(input.is_empty(), "decoder must consume exactly its bytes");
    assert_eq!(encode_sketch(&decoded), legacy_wire);
    assert_eq!(
        decoded.cell_estimate(0, 0, now, window).to_bits(),
        slab.cell_estimate(0, 0, now, window).to_bits(),
        "decoded sketch diverged from the directly built one"
    );
}

fn random_trace(rng: &mut SeededRng, steps: usize, window: u64, keys: u64) -> Vec<(u64, u64, u64)> {
    let mut ts = 1u64;
    (0..steps)
        .map(|_| {
            ts += if rng.gen_bool(0.04) {
                window + rng.gen_range(1..window.max(2))
            } else {
                rng.gen_range(0..4u64)
            };
            let weight = if rng.gen_bool(0.4) {
                1
            } else {
                1 + rng.gen_range(0..300u64)
            };
            (rng.gen_range(0..keys), ts, weight)
        })
        .collect()
}

fn small_cfg(eps: f64, window: u64, seed: u64) -> EcmConfig<ExponentialHistogram> {
    EcmBuilder::new(eps, 0.2, window).seed(seed).eh_config()
}

#[test]
fn slab_matches_legacy_on_dense_trace() {
    let cfg = small_cfg(0.2, 5_000, 11);
    let trace: Vec<(u64, u64, u64)> = (1..=20_000u64).map(|t| (t % 37, t, 1)).collect();
    differential(&cfg, &trace);
}

#[test]
fn slab_matches_legacy_on_bursts_and_gaps() {
    let mut rng = SeededRng::seed_from_u64(77);
    let cfg = small_cfg(0.15, 2_000, 3);
    let trace = random_trace(&mut rng, 2_500, 2_000, 29);
    differential(&cfg, &trace);
}

#[test]
fn slab_matches_legacy_at_paper_scale_parameters() {
    // The acceptance configuration: (ε, δ) = (0.1, 0.1), 1M-tick window.
    let cfg = EcmBuilder::new(0.1, 0.1, 1_000_000).seed(7).eh_config();
    let mut rng = SeededRng::seed_from_u64(5);
    let trace = random_trace(&mut rng, 4_000, 1_000_000, 500);
    differential(&cfg, &trace);
}

#[test]
fn batched_ingest_hits_the_slab_identically() {
    // The event-slice entry point must land in the slab exactly like
    // per-run weighted inserts (and therefore like the legacy layout).
    let cfg = small_cfg(0.2, 1_000, 9);
    let mut rng = SeededRng::seed_from_u64(13);
    let trace = random_trace(&mut rng, 800, 1_000, 17);
    let mut events = Vec::new();
    for &(key, ts, weight) in &trace {
        for _ in 0..weight {
            events.push(StreamEvent::new(key, ts));
        }
    }
    let mut batched = EcmSketch::new(&cfg);
    batched.ingest_batch(&events);
    let mut legacy = LegacyReplica::new(&cfg);
    for &(key, ts, weight) in &trace {
        legacy.insert_weighted(key, ts, weight);
    }
    assert_eq!(encode_sketch(&batched), legacy.encode());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random configurations × random workloads: the slab grid never
    /// diverges from the per-cell layout in estimate or encoding.
    #[test]
    fn prop_slab_is_indistinguishable_from_legacy(
        seed in 0u64..1_000,
        steps in 100usize..900,
        window in 50u64..5_000,
        keys in 2u64..60,
    ) {
        let cfg = small_cfg(0.25, window, seed);
        let mut rng = SeededRng::seed_from_u64(seed ^ 0xe51a8);
        let trace = random_trace(&mut rng, steps, window, keys);
        differential(&cfg, &trace);
    }
}
