//! Differential suite for the snapshot & recovery subsystem: for **every**
//! backend a `SketchSpec` can build, a snapshot → restore round trip must
//! produce a sketch that (a) answers every supported query bit-identically,
//! (b) re-encodes to byte-identical snapshot bytes, and (c) keeps ingesting
//! exactly like the original (the write clock and arrival-id sequence are
//! part of the snapshot). Truncated, corrupted and version-bumped bytes
//! must come back as typed `SnapshotError`s, never panics — fuzzed in the
//! same spirit as `crates/sliding-window/tests/codec_robustness.rs`.

use ecm_suite::ecm::snapshot::{restore_any, SnapshotError, SNAPSHOT_VERSION};
use ecm_suite::ecm::{
    Answer, Backend, Clock, Query, SketchSpec, SketchStore, StreamEvent, Threshold, WindowSpec,
};
use ecm_suite::stream_gen::SeededRng;

const WINDOW: u64 = 2_000;
const EVENTS: u64 = 3_000;

/// The full backend matrix of the acceptance criterion: plain Eh/Dw/Rw/
/// Exact/Ew/Decayed, time- and count-based hierarchies, sharded, and plain
/// count-based.
fn spec_matrix() -> Vec<(&'static str, SketchSpec)> {
    vec![
        ("eh", SketchSpec::time(WINDOW).epsilon(0.2).seed(3)),
        (
            "dw",
            SketchSpec::time(WINDOW)
                .backend(Backend::Dw)
                .epsilon(0.2)
                .seed(3),
        ),
        (
            "rw",
            SketchSpec::time(WINDOW)
                .backend(Backend::Rw)
                .epsilon(0.3)
                .delta(0.2)
                .max_arrivals(2 * EVENTS)
                .seed(3),
        ),
        (
            "exact",
            SketchSpec::time(WINDOW).backend(Backend::Exact).seed(3),
        ),
        (
            "ew",
            SketchSpec::time(WINDOW)
                .backend(Backend::Ew { buckets: 8 })
                .seed(3),
        ),
        (
            "decayed",
            SketchSpec::time(WINDOW).backend(Backend::Decayed).seed(3),
        ),
        (
            "hierarchy",
            SketchSpec::time(WINDOW).epsilon(0.2).hierarchy(8).seed(3),
        ),
        (
            "sharded",
            SketchSpec::time(WINDOW).epsilon(0.2).sharded(3).seed(3),
        ),
        ("count", SketchSpec::count(WINDOW).epsilon(0.2).seed(3)),
        (
            "count-hierarchy",
            SketchSpec::count(WINDOW).epsilon(0.2).hierarchy(8).seed(3),
        ),
    ]
}

/// Deterministic bursty stream over an 8-bit key universe (hierarchies
/// panic outside it), exercising single, weighted and batched ingest.
fn feed(sketch: &mut dyn ecm_suite::ecm::Sketch, seed: u64) -> u64 {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut ts = 1u64;
    let mut batch = Vec::new();
    // Contiguous segments per ingest mode keep timestamps monotone across
    // the mode switches (batches are flushed before direct inserts resume).
    for i in 0..EVENTS {
        ts += rng.gen_range(0..2u64);
        let item = rng.gen_range(0..200u64);
        match (i / 128) % 3 {
            2 => {
                batch.push(StreamEvent::new(item, ts));
                if batch.len() == 64 {
                    sketch.ingest_batch(&batch);
                    batch.clear();
                }
            }
            mode => {
                if !batch.is_empty() {
                    sketch.ingest_batch(&batch);
                    batch.clear();
                }
                if mode == 0 {
                    sketch.insert(ts, item);
                } else {
                    sketch.insert_weighted(ts, item, 1 + rng.gen_range(0..4u64));
                }
            }
        }
    }
    if !batch.is_empty() {
        sketch.ingest_batch(&batch);
    }
    ts
}

fn window_for(spec: &SketchSpec, now: u64) -> WindowSpec {
    match spec.clock() {
        Clock::Time => WindowSpec::time(now, WINDOW),
        Clock::Count => WindowSpec::last(WINDOW),
    }
}

/// Compare two sketches over every query class the backend supports,
/// bit for bit.
fn assert_answers_bit_identical(
    label: &str,
    a: &dyn ecm_suite::ecm::Sketch,
    b: &dyn ecm_suite::ecm::Sketch,
    w: WindowSpec,
) {
    let queries = [
        Query::self_join(),
        Query::total_arrivals(),
        Query::range_sum(0, 100),
        Query::heavy_hitters(Threshold::Relative(0.05)),
        Query::quantile(0.5),
    ];
    let points: Vec<Query<'_>> = (0..200).step_by(7).map(Query::point).collect();
    for q in points.iter().chain(queries.iter()) {
        let ra = a.query(q, w);
        let rb = b.query(q, w);
        match (ra, rb) {
            (Ok(Answer::Value(ea)), Ok(Answer::Value(eb))) => {
                assert_eq!(
                    ea.value.to_bits(),
                    eb.value.to_bits(),
                    "{label}: scalar answers diverged"
                );
            }
            (Ok(Answer::HeavyHitters(ha)), Ok(Answer::HeavyHitters(hb))) => {
                assert_eq!(ha.len(), hb.len(), "{label}: heavy-hitter sets diverged");
                for ((ka, ea), (kb, eb)) in ha.iter().zip(hb.iter()) {
                    assert_eq!(ka, kb, "{label}");
                    assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{label}");
                }
            }
            (Ok(Answer::Quantile(qa)), Ok(Answer::Quantile(qb))) => {
                assert_eq!(qa, qb, "{label}: quantiles diverged");
            }
            (Err(_), Err(_)) => {} // both reject it the same way
            (ra, rb) => panic!("{label}: answers diverged structurally: {ra:?} vs {rb:?}"),
        }
    }
}

#[test]
fn every_backend_round_trips_bit_identically() {
    for (label, spec) in spec_matrix() {
        let mut sketch = spec.build().unwrap_or_else(|e| panic!("{label}: {e}"));
        let now = feed(&mut *sketch, 42);

        let bytes = spec
            .snapshot(&*sketch)
            .unwrap_or_else(|e| panic!("{label}: snapshot: {e}"));
        let restored = spec
            .restore(&bytes)
            .unwrap_or_else(|e| panic!("{label}: restore: {e}"));

        assert_eq!(
            restored.write_clock(),
            sketch.write_clock(),
            "{label}: write clock"
        );
        // Memory accounting counts Vec *capacity*, which is allocation-
        // history dependent: a restored sketch allocates exactly, a grown
        // one amortizes. Restoring must never cost more than the original.
        let (rm, lm) = (restored.memory_bytes(), sketch.memory_bytes());
        assert!(
            rm > 0 && rm <= lm,
            "{label}: restored memory {rm} vs live {lm}"
        );
        assert_answers_bit_identical(label, &*sketch, &*restored, window_for(&spec, now));

        // Re-encoding the restored sketch reproduces the snapshot byte for
        // byte — nothing was lost or renormalized.
        let re = spec.snapshot(&*restored).unwrap();
        assert_eq!(re, bytes, "{label}: re-encode must be byte-identical");

        // And restore_any recovers the spec with zero prior knowledge.
        let (embedded, _) = restore_any(&bytes).unwrap();
        assert_eq!(embedded, spec, "{label}: self-description");
    }
}

#[test]
fn restored_sketches_continue_ingesting_identically() {
    // The clock and arrival-id sequence are state: after restore, feeding
    // the same suffix must produce the same snapshot a never-restored
    // sketch produces. (Decayed and count-based clocks included.)
    for (label, spec) in spec_matrix() {
        let mut live = spec.build().unwrap();
        let now = feed(&mut *live, 7);
        let checkpoint = spec.snapshot(&*live).unwrap();
        let mut restored = spec.restore(&checkpoint).unwrap();

        for t in 0..500u64 {
            live.insert(now + 1 + t / 4, t % 200);
            restored.insert(now + 1 + t / 4, t % 200);
        }
        let a = spec.snapshot(&*live).unwrap();
        let b = spec.snapshot(&*restored).unwrap();
        assert_eq!(a, b, "{label}: post-restore ingest diverged");
    }
}

#[test]
fn corrupted_snapshots_fail_typed_for_every_backend() {
    for (label, spec) in spec_matrix() {
        let mut sketch = spec.build().unwrap();
        feed(&mut *sketch, 11);
        let bytes = spec.snapshot(&*sketch).unwrap();

        // Every truncation point errors; none panics.
        for cut in (0..bytes.len()).step_by(17) {
            assert!(spec.restore(&bytes[..cut]).is_err(), "{label}: cut {cut}");
        }
        // Version bumps are refused before anything else is parsed.
        let mut bad = bytes.clone();
        bad[2] = SNAPSHOT_VERSION + 1;
        assert!(
            matches!(
                spec.restore(&bad),
                Err(SnapshotError::UnsupportedVersion { .. })
            ),
            "{label}"
        );
        // Bit flips anywhere are caught (checksum or structural error).
        let mut rng = SeededRng::seed_from_u64(5);
        for _ in 0..32 {
            let mut bad = bytes.clone();
            let at = rng.gen_range(0..bad.len() as u64) as usize;
            bad[at] ^= 1 << rng.gen_range(0..8u64);
            assert!(spec.restore(&bad).is_err(), "{label}: flip at {at}");
        }
    }
}

#[test]
fn garbage_bytes_never_panic_the_snapshot_decoders() {
    // Deterministic pseudo-random byte soup through the self-describing
    // entry point (the most exposed surface: it parses the spec header from
    // the wire too).
    let mut state = 0x8badf00du64;
    for round in 0..400usize {
        let len = (round * 13) % 160;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        assert!(restore_any(&bytes).is_err());
        // Dress the soup in valid magic + version so parsing goes deeper.
        let mut dressed = vec![b'E', b'S', SNAPSHOT_VERSION];
        dressed.extend_from_slice(&bytes);
        assert!(restore_any(&dressed).is_err());
        // Same for the store format.
        let mut dressed = vec![b'E', b'F', SNAPSHOT_VERSION];
        dressed.extend_from_slice(&bytes);
        assert!(SketchStore::<u64>::load_snapshot(&dressed).is_err());
    }
}

#[test]
fn fleet_snapshot_round_trips_across_backends() {
    // The store path over a non-default backend: a keyed fleet of
    // hierarchies (the heaviest per-key payload) survives full +
    // incremental persistence.
    let spec = SketchSpec::time(WINDOW).epsilon(0.25).hierarchy(8).seed(9);
    let mut store: SketchStore<u64> = SketchStore::new(spec).unwrap();
    for t in 1..=1_000u64 {
        store.insert(t % 7, t, t % 200);
    }
    let full = store.write_snapshot().unwrap();
    for t in 1_001..=1_200u64 {
        store.insert(t % 3, t, t % 200);
    }
    let delta = store.write_incremental().unwrap();

    let mut restored = SketchStore::<u64>::load_snapshot(&full).unwrap();
    restored.apply_incremental(&delta).unwrap();

    let w = WindowSpec::time(1_200, WINDOW);
    assert_eq!(restored.keys(), store.keys());
    for key in store.keys() {
        for q in [
            Query::point(5),
            Query::range_sum(0, 63),
            Query::total_arrivals(),
        ] {
            let a = store.query(&key, &q, w).unwrap().unwrap();
            let b = restored.query(&key, &q, w).unwrap().unwrap();
            match (a, b) {
                (Answer::Value(ea), Answer::Value(eb)) => {
                    assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "key {key}")
                }
                _ => panic!("unexpected answer shape"),
            }
        }
    }
}
