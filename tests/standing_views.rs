//! Differential suite for standing views (`ecm::views`): at **every**
//! publication point, a maintained view's cached answer must be
//! bit-identical to the equivalent on-demand query evaluated at the
//! readout's own `now` — for every backend the spec matrix can build,
//! through cold-key first-read materialization, and across a
//! snapshot → restore of the backing store (post-restore maintenance
//! included).

use ecm_suite::ecm::{
    Answer, Backend, Clock, Estimate, Query, ScalarQuery, SketchSpec, SketchStore, StandingQuery,
    StreamEvent, Threshold, ViewAnswer, ViewDef, ViewError, ViewSet, ViewWindow,
};
use ecm_suite::stream_gen::SeededRng;

const WINDOW: u64 = 2_000;
const EVENTS: usize = 1_500;
const BATCH: usize = 100;

/// The same backend matrix as `tests/snapshot_recovery.rs`.
fn spec_matrix() -> Vec<(&'static str, SketchSpec)> {
    vec![
        ("eh", SketchSpec::time(WINDOW).epsilon(0.2).seed(3)),
        (
            "dw",
            SketchSpec::time(WINDOW)
                .backend(Backend::Dw)
                .epsilon(0.2)
                .seed(3),
        ),
        (
            "rw",
            SketchSpec::time(WINDOW)
                .backend(Backend::Rw)
                .epsilon(0.3)
                .delta(0.2)
                .max_arrivals(2 * EVENTS as u64)
                .seed(3),
        ),
        (
            "exact",
            SketchSpec::time(WINDOW).backend(Backend::Exact).seed(3),
        ),
        (
            "ew",
            SketchSpec::time(WINDOW)
                .backend(Backend::Ew { buckets: 8 })
                .seed(3),
        ),
        (
            "decayed",
            SketchSpec::time(WINDOW).backend(Backend::Decayed).seed(3),
        ),
        (
            "hierarchy",
            SketchSpec::time(WINDOW).epsilon(0.2).hierarchy(8).seed(3),
        ),
        (
            "sharded",
            SketchSpec::time(WINDOW).epsilon(0.2).sharded(3).seed(3),
        ),
        ("count", SketchSpec::count(WINDOW).epsilon(0.2).seed(3)),
        (
            "count-hierarchy",
            SketchSpec::count(WINDOW).epsilon(0.2).hierarchy(8).seed(3),
        ),
    ]
}

fn view_window(spec: &SketchSpec) -> ViewWindow {
    match spec.clock() {
        Clock::Time => ViewWindow::Time { range: WINDOW },
        Clock::Count => ViewWindow::Last { n: WINDOW },
    }
}

/// A deterministic two-tenant batch: bursty items in the 8-bit universe
/// (hierarchies demand it), non-decreasing ticks.
fn batches(seed: u64) -> Vec<Vec<(String, StreamEvent)>> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut ts = 1u64;
    let mut out = Vec::new();
    for _ in 0..EVENTS.div_ceil(BATCH) {
        let mut batch = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            ts += rng.gen_range(0..2u64);
            let key = if rng.gen_bool(0.6) { "a" } else { "b" };
            let item = rng.gen_range(0..200u64);
            batch.push((key.to_string(), StreamEvent::new(item, ts)));
        }
        out.push(batch);
    }
    out
}

/// The standing views a backend can actually answer: threshold-total and
/// point for everyone, self-join where the backend supports it, heavy
/// hitters on hierarchies, and a fleet-wide top-k.
fn views_for(label: &str, spec: &SketchSpec, probe: &SketchStore<String>) -> Vec<ViewDef<String>> {
    let w = view_window(spec);
    let mut defs = vec![
        ViewDef {
            name: "total-a".to_string(),
            key: Some("a".to_string()),
            query: StandingQuery::Threshold {
                query: ScalarQuery::Total,
                limit: 100.0,
            },
            window: w,
        },
        ViewDef {
            name: "point-b".to_string(),
            key: Some("b".to_string()),
            query: StandingQuery::Threshold {
                query: ScalarQuery::Point { item: 7 },
                limit: 3.0,
            },
            window: w,
        },
        ViewDef {
            name: "top".to_string(),
            key: None,
            query: StandingQuery::TopK { k: 2 },
            window: w,
        },
    ];
    // Probe once on a warmed store: a backend that rejects a query class
    // on demand would reject it inside the view identically — nothing to
    // compare.
    let a = "a".to_string();
    let now = probe.get(&a).expect("warmed").write_clock();
    if probe
        .query(&a, &Query::self_join(), w.resolve(now))
        .expect("key resident")
        .is_ok()
    {
        defs.push(ViewDef {
            name: "sj-a".to_string(),
            key: Some("a".to_string()),
            query: StandingQuery::Threshold {
                query: ScalarQuery::SelfJoin,
                limit: 1_000.0,
            },
            window: w,
        });
    }
    if probe
        .query(
            &a,
            &Query::heavy_hitters(Threshold::Relative(0.05)),
            w.resolve(now),
        )
        .expect("key resident")
        .is_ok()
    {
        defs.push(ViewDef {
            name: "hh-a".to_string(),
            key: Some("a".to_string()),
            query: StandingQuery::HeavyHitters {
                threshold: Threshold::Relative(0.05),
            },
            window: w,
        });
    }
    assert!(
        !label.contains("hierarchy") || defs.len() == 5,
        "{label}: hierarchy specs must exercise the heavy-hitter view"
    );
    defs
}

fn assert_estimates_eq(label: &str, a: &Estimate, b: &Estimate) {
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "{label}: estimate diverged"
    );
    assert_eq!(a.guarantee, b.guarantee, "{label}: guarantee diverged");
}

/// Read every registered view and check it bit-identical to the on-demand
/// answer evaluated at the readout's `now`.
fn assert_views_match_on_demand(
    label: &str,
    views: &mut ViewSet<String>,
    store: &SketchStore<String>,
    defs: &[ViewDef<String>],
) {
    for def in defs {
        let readout = match views.read(&def.name, store) {
            Ok(r) => r,
            Err(ViewError::NoData { .. }) => {
                let key = def.key.as_ref().expect("only keyed views lack data");
                assert!(store.get(key).is_none(), "{label}: spurious no-data");
                continue;
            }
            Err(e) => panic!("{label}/{}: {e}", def.name),
        };
        let w = def.window.resolve(readout.now);
        match (&def.query, &readout.answer) {
            (StandingQuery::Threshold { query, limit }, ViewAnswer::Scalar { estimate, above }) => {
                let key = def.key.as_ref().expect("keyed");
                let on_demand = store
                    .query(key, &query.to_query(), w)
                    .expect("key resident")
                    .expect("probed as supported");
                let Answer::Value(expect) = on_demand else {
                    panic!("{label}/{}: unexpected answer shape", def.name);
                };
                assert_estimates_eq(&format!("{label}/{}", def.name), estimate, &expect);
                assert_eq!(*above, expect.value > *limit, "{label}/{}", def.name);
            }
            (StandingQuery::HeavyHitters { threshold }, ViewAnswer::Hitters(rows)) => {
                let key = def.key.as_ref().expect("keyed");
                let on_demand = store
                    .query(key, &Query::heavy_hitters(*threshold), w)
                    .expect("key resident")
                    .expect("probed as supported");
                let Answer::HeavyHitters(expect) = on_demand else {
                    panic!("{label}/{}: unexpected answer shape", def.name);
                };
                assert_eq!(rows.len(), expect.len(), "{label}/{}", def.name);
                for ((ia, ea), (ib, eb)) in rows.iter().zip(expect.iter()) {
                    assert_eq!(ia, ib, "{label}/{}", def.name);
                    assert_estimates_eq(&format!("{label}/{}", def.name), ea, eb);
                }
            }
            (StandingQuery::TopK { k }, ViewAnswer::Ranking(rows)) => {
                let expect = store.top_k(*k, &Query::total_arrivals(), w);
                assert_eq!(rows.len(), expect.len(), "{label}/{}", def.name);
                for ((ka, va), (kb, vb)) in rows.iter().zip(expect.iter()) {
                    assert_eq!(ka, kb, "{label}/{}", def.name);
                    assert_eq!(va.to_bits(), vb.to_bits(), "{label}/{}", def.name);
                }
            }
            _ => panic!("{label}/{}: answer shape does not match its def", def.name),
        }
    }
}

#[test]
fn view_reads_match_on_demand_queries_at_every_publication_point() {
    for (label, spec) in spec_matrix() {
        // Warm a probe store with the first batch to discover which query
        // classes this backend answers.
        let all = batches(42);
        let mut store: SketchStore<String> = SketchStore::new(spec.clone()).unwrap();
        store.ingest(&all[0]);
        let defs = views_for(label, &spec, &store);

        let mut views: ViewSet<String> = ViewSet::new();
        for def in &defs {
            views.create(def.clone()).unwrap();
        }
        // The first read materializes (cold → hot); maintain keeps it
        // fresh from then on. Check the match at every publication point.
        views.maintain(&store);
        assert_views_match_on_demand(label, &mut views, &store, &defs);
        for (i, batch) in all[1..].iter().enumerate() {
            store.ingest(batch);
            views.maintain(&store);
            assert_eq!(views.seq(), (i + 2) as u64, "{label}: seq drifted");
            assert_views_match_on_demand(label, &mut views, &store, &defs);
        }
    }
}

#[test]
fn cold_and_pending_views_materialize_correctly() {
    let spec = SketchSpec::time(WINDOW).epsilon(0.2).hierarchy(8).seed(3);
    let mut store: SketchStore<String> = SketchStore::new(spec.clone()).unwrap();
    let mut views: ViewSet<String> = ViewSet::new();
    let w = view_window(&spec);
    views
        .create(ViewDef {
            name: "ghost".to_string(),
            key: Some("z".to_string()),
            query: StandingQuery::Threshold {
                query: ScalarQuery::Total,
                limit: 5.0,
            },
            window: w,
        })
        .unwrap();

    // No data at all: reading is a typed error, and the failed read parks
    // the view as pending rather than hot.
    assert!(matches!(
        views.read("ghost", &store),
        Err(ViewError::NoData { .. })
    ));

    // Ingest to *other* keys: the pending view's key is untouched, so
    // maintenance must not materialize it (and reads keep saying no-data).
    store.ingest(&[("other".to_string(), StreamEvent::new(1, 1))]);
    views.maintain(&store);
    assert!(matches!(
        views.read("ghost", &store),
        Err(ViewError::NoData { .. })
    ));

    // The key's first write materializes the pending view in the same
    // maintenance pass — and the answer matches on-demand, bit for bit.
    let zs: Vec<(String, StreamEvent)> = (0..10)
        .map(|i| ("z".to_string(), StreamEvent::new(3, 5 + i)))
        .collect();
    store.ingest(&zs);
    let events = views.maintain(&store);
    assert!(
        events.iter().any(|e| e.view() == "ghost"),
        "materializing past the limit must notify"
    );
    let readout = views.read("ghost", &store).unwrap();
    let ViewAnswer::Scalar { estimate, above } = &readout.answer else {
        panic!("threshold views read scalars");
    };
    assert!(*above, "10 arrivals are past the limit of 5");
    let Answer::Value(expect) = store
        .query(
            &"z".to_string(),
            &Query::total_arrivals(),
            w.resolve(readout.now),
        )
        .unwrap()
        .unwrap()
    else {
        panic!("unexpected shape");
    };
    assert_estimates_eq("ghost", estimate, &expect);

    // A view registered *after* the data exists starts cold: maintenance
    // skips it (cold views cost nothing on the write path) until the first
    // read computes it.
    views
        .create(ViewDef {
            name: "late".to_string(),
            key: Some("z".to_string()),
            query: StandingQuery::Threshold {
                query: ScalarQuery::Total,
                limit: 5.0,
            },
            window: w,
        })
        .unwrap();
    let maintenance_before = views.stats().maintenance;
    store.ingest(&[("z".to_string(), StreamEvent::new(3, 40))]);
    views.maintain(&store);
    // Only "ghost" (hot) was recomputed for the touched key — not "late".
    assert_eq!(views.stats().maintenance, maintenance_before + 1);
    let late = views.read("late", &store).unwrap();
    let fresh = store
        .query(
            &"z".to_string(),
            &Query::total_arrivals(),
            w.resolve(late.now),
        )
        .unwrap()
        .unwrap();
    let (ViewAnswer::Scalar { estimate, .. }, Answer::Value(expect)) = (&late.answer, fresh) else {
        panic!("unexpected shapes");
    };
    assert_estimates_eq("late", estimate, &expect);
}

#[test]
fn restored_stores_rebuild_views_bit_identically_and_keep_maintaining() {
    for (label, spec) in spec_matrix() {
        let all = batches(7);
        let mut store: SketchStore<String> = SketchStore::new(spec.clone()).unwrap();
        store.ingest(&all[0]);
        let defs = views_for(label, &spec, &store);
        let mut views: ViewSet<String> = ViewSet::new();
        for def in &defs {
            views.create(def.clone()).unwrap();
        }
        views.maintain(&store);
        for batch in &all[1..8] {
            store.ingest(batch);
            views.maintain(&store);
        }

        // Snapshot the store, restore it, and rebuild a fresh ViewSet from
        // the same definitions — as the server does after a restart.
        let bytes = store
            .write_snapshot()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let restored: SketchStore<String> =
            SketchStore::load_snapshot(&bytes).unwrap_or_else(|e| panic!("{label}: {e}"));
        let mut rebuilt: ViewSet<String> = ViewSet::new();
        for def in &defs {
            rebuilt.create(def.clone()).unwrap();
        }
        rebuilt.rebuild(&restored);

        // The rebuilt views answer exactly like the originals...
        for def in &defs {
            let a = views.read(&def.name, &store).unwrap();
            let b = rebuilt.read(&def.name, &restored).unwrap();
            assert_eq!(a.now, b.now, "{label}/{}: now diverged", def.name);
            match (&a.answer, &b.answer) {
                (
                    ViewAnswer::Scalar {
                        estimate: ea,
                        above: aa,
                    },
                    ViewAnswer::Scalar {
                        estimate: eb,
                        above: ab,
                    },
                ) => {
                    assert_estimates_eq(&format!("{label}/{}", def.name), ea, eb);
                    assert_eq!(aa, ab, "{label}/{}", def.name);
                }
                (ViewAnswer::Hitters(ra), ViewAnswer::Hitters(rb)) => {
                    assert_eq!(ra.len(), rb.len(), "{label}/{}", def.name);
                    for ((ia, ea), (ib, eb)) in ra.iter().zip(rb.iter()) {
                        assert_eq!(ia, ib, "{label}/{}", def.name);
                        assert_estimates_eq(&format!("{label}/{}", def.name), ea, eb);
                    }
                }
                (ViewAnswer::Ranking(ra), ViewAnswer::Ranking(rb)) => {
                    assert_eq!(ra.len(), rb.len(), "{label}/{}", def.name);
                    for ((ka, va), (kb, vb)) in ra.iter().zip(rb.iter()) {
                        assert_eq!(ka, kb, "{label}/{}", def.name);
                        assert_eq!(va.to_bits(), vb.to_bits(), "{label}/{}", def.name);
                    }
                }
                _ => panic!("{label}/{}: answer shapes diverged", def.name),
            }
        }

        // ...and keep maintaining identically on the suffix: feed the same
        // batches to both stores and hold the rebuilt set to the on-demand
        // bit-identity bar at every publication point.
        let mut restored = restored;
        for batch in &all[8..] {
            store.ingest(batch);
            views.maintain(&store);
            restored.ingest(batch);
            rebuilt.maintain(&restored);
            assert_views_match_on_demand(label, &mut rebuilt, &restored, &defs);
        }
        for def in &defs {
            let a = views.read(&def.name, &store).unwrap();
            let b = rebuilt.read(&def.name, &restored).unwrap();
            assert_eq!(
                a.now, b.now,
                "{label}/{}: post-restore now diverged",
                def.name
            );
            assert_eq!(
                format!("{:?}", a.answer),
                format!("{:?}", b.answer),
                "{label}/{}: post-restore answers diverged",
                def.name
            );
        }
    }
}
