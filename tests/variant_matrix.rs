//! The full variant matrix in one place: every window-counter instantiation
//! of the ECM-sketch (EH, DW, RW, exact baseline, equi-width baseline) runs
//! through the same centralized pipeline — insert, query, serialize,
//! deserialize — and the mergeable ones also through tree aggregation. One
//! test per contract the paper states, parameterized over the variants.

use ecm_suite::distributed::aggregate_tree;
use ecm_suite::ecm::{EcmBuilder, EcmConfig, EcmSketch, Query, SketchReader, WindowSpec};
use ecm_suite::sliding_window::traits::{MergeableCounter, WindowCounter};
use ecm_suite::stream_gen::{worldcup_like, WindowOracle};

const WINDOW: u64 = 1_000_000;
const EVENTS: usize = 12_000;
const EPS: f64 = 0.15;

/// Route a point query through the unified typed API.
fn point<W>(sk: &EcmSketch<W>, key: u64, now: u64, range: u64) -> f64
where
    W: WindowCounter + 'static,
    W::Config: 'static,
{
    sk.query(&Query::point(key), WindowSpec::time(now, range))
        .expect("in-window query must succeed")
        .into_value()
        .value
}

/// Insert the trace with globally unique ids, query the hottest keys, and
/// assert the Theorem 1 envelope; then round-trip the codec and require
/// identical answers.
fn centralized_contract<W>(cfg: &EcmConfig<W>, label: &str)
where
    W: WindowCounter + 'static,
    W::Config: 'static,
{
    let events = worldcup_like(EVENTS, 77);
    let oracle = WindowOracle::from_events(&events);
    let mut sk = EcmSketch::new(cfg);
    for (i, e) in events.iter().enumerate() {
        sk.insert_with_id(e.key, e.ts, i as u64 + 1);
    }
    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;

    for key in 0..300u64 {
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        if exact == 0.0 {
            continue;
        }
        let est = point(&sk, key, now, WINDOW);
        assert!(
            (est - exact).abs() <= EPS * norm + 2.0,
            "{label}: key={key} est={est} exact={exact}"
        );
    }

    let mut buf = Vec::new();
    sk.encode(&mut buf);
    let back = EcmSketch::decode(cfg, &mut buf.as_slice()).expect("codec");
    for key in (0..300u64).step_by(17) {
        assert_eq!(
            point(&sk, key, now, WINDOW),
            point(&back, key, now, WINDOW),
            "{label}: codec must preserve answers for key {key}"
        );
    }

    // Truncated wire bytes must never decode successfully.
    for cut in [0usize, 1, buf.len() / 2, buf.len() - 1] {
        assert!(
            EcmSketch::decode(cfg, &mut &buf[..cut]).is_err(),
            "{label}: truncation at {cut} must fail"
        );
    }
}

/// Tree-aggregate per-site sketches and assert the multi-level envelope.
fn distributed_contract<W>(cfg: &EcmConfig<W>, label: &str, envelope: f64)
where
    W: MergeableCounter + 'static,
    W::Config: 'static,
{
    let sites = 8u32;
    let events = worldcup_like(EVENTS, 99);
    let oracle = WindowOracle::from_events(&events);
    // The wc98-like trace has 33 sites; fold them onto the 8-leaf tree.
    let mut site_events: Vec<Vec<(u64, u64, u64)>> = vec![Vec::new(); sites as usize];
    for (i, e) in events.iter().enumerate() {
        site_events[(e.site % sites) as usize].push((e.key, e.ts, i as u64 + 1));
    }
    let out = aggregate_tree(
        sites as usize,
        |i| {
            let mut sk = EcmSketch::new(cfg);
            for &(k, t, id) in &site_events[i] {
                sk.insert_with_id(k, t, id);
            }
            sk
        },
        &cfg.cell,
    )
    .expect("homogeneous merge");
    assert_eq!(out.root.lifetime_arrivals(), EVENTS as u64);
    assert!(out.stats.bytes > 0);

    let now = oracle.last_tick();
    let norm = oracle.total(now, WINDOW) as f64;
    let mut checked = 0u32;
    for key in 0..400u64 {
        let exact = oracle.frequency(key, now, WINDOW) as f64;
        if exact == 0.0 {
            continue;
        }
        checked += 1;
        let est = point(&out.root, key, now, WINDOW);
        assert!(
            (est - exact).abs() <= envelope * norm + 2.0,
            "{label}: key={key} est={est} exact={exact}"
        );
    }
    assert!(checked > 100, "{label}: workload too sparse");
}

#[test]
fn eh_centralized_and_distributed() {
    let b = EcmBuilder::new(EPS, 0.05, WINDOW).seed(3);
    centralized_contract(&b.eh_config(), "ECM-EH");
    // 3 merge levels: h·ε_sw(1+ε_sw) + ε_sw + ε_cm.
    distributed_contract(&b.eh_config(), "ECM-EH", 4.0 * EPS);
}

#[test]
fn dw_centralized_and_distributed() {
    let b = EcmBuilder::new(EPS, 0.05, WINDOW)
        .max_arrivals(EVENTS as u64)
        .seed(4);
    centralized_contract(&b.dw_config(), "ECM-DW");
    distributed_contract(&b.dw_config(), "ECM-DW", 4.0 * EPS);
}

#[test]
fn rw_centralized_and_distributed() {
    let b = EcmBuilder::new(EPS, 0.1, WINDOW)
        .max_arrivals(EVENTS as u64)
        .seed(5);
    centralized_contract(&b.rw_config(), "ECM-RW");
    // Lossless composition: the centralized envelope suffices.
    distributed_contract(&b.rw_config(), "ECM-RW", EPS);
}

#[test]
fn exact_variant_is_a_pure_count_min() {
    let b = EcmBuilder::new(EPS, 0.05, WINDOW).seed(6);
    centralized_contract(&b.exact_config(), "ECM-exact");
}

#[test]
fn ew_baseline_centralized_wide_ranges_only() {
    // The equi-width baseline has no window guarantee on narrow ranges, but
    // whole-window queries land within a slot of the truth — and its
    // grid-aligned merge is exact, so the distributed contract holds with
    // the same (wide-range) envelope.
    let b = EcmBuilder::new(EPS, 0.05, WINDOW).seed(7);
    let cfg = b.ew_config(64);
    centralized_contract(&cfg, "ECM-EW");
    distributed_contract(&cfg, "ECM-EW", EPS + 1.0 / 64.0);
}

#[test]
fn variants_agree_on_empty_sketches() {
    let b = EcmBuilder::new(0.1, 0.1, 1_000).seed(8);
    assert_eq!(point(&EcmSketch::new(&b.eh_config()), 5, 100, 1_000), 0.0);
    assert_eq!(point(&EcmSketch::new(&b.dw_config()), 5, 100, 1_000), 0.0);
    assert_eq!(point(&EcmSketch::new(&b.rw_config()), 5, 100, 1_000), 0.0);
    assert_eq!(
        point(&EcmSketch::new(&b.exact_config()), 5, 100, 1_000),
        0.0
    );
    assert_eq!(point(&EcmSketch::new(&b.ew_config(10)), 5, 100, 1_000), 0.0);
}
