//! Differential suite for the write-ahead log: for **every** backend a
//! `SketchSpec` can build, latest-snapshot + WAL replay must reproduce a
//! store that never crashed — bit-identical answers, byte-identical
//! re-encoded snapshots, and identical continued ingest. Torn tails and
//! corrupted bytes must come back as clean prefixes or typed
//! `SnapshotError`s, never panics — the log is fuzzed by truncating and
//! bit-flipping at every offset, in the same spirit as
//! `tests/snapshot_recovery.rs`.

use ecm_suite::ecm::wal::{
    encode_checkpoint, encode_ingest, encode_segment_header, replay, WalSegment, WalSegmentHeader,
};
use ecm_suite::ecm::{Backend, Query, SketchSpec, SketchStore, StreamEvent, WindowSpec};
use ecm_suite::stream_gen::SeededRng;

const WINDOW: u64 = 2_000;

/// The full backend matrix of the acceptance criterion — the same specs the
/// snapshot differential suite proves round-trip.
fn spec_matrix() -> Vec<(&'static str, SketchSpec)> {
    vec![
        ("eh", SketchSpec::time(WINDOW).epsilon(0.2).seed(3)),
        (
            "dw",
            SketchSpec::time(WINDOW)
                .backend(Backend::Dw)
                .epsilon(0.2)
                .seed(3),
        ),
        (
            "rw",
            SketchSpec::time(WINDOW)
                .backend(Backend::Rw)
                .epsilon(0.3)
                .delta(0.2)
                .max_arrivals(20_000)
                .seed(3),
        ),
        (
            "exact",
            SketchSpec::time(WINDOW).backend(Backend::Exact).seed(3),
        ),
        (
            "ew",
            SketchSpec::time(WINDOW)
                .backend(Backend::Ew { buckets: 8 })
                .seed(3),
        ),
        (
            "decayed",
            SketchSpec::time(WINDOW).backend(Backend::Decayed).seed(3),
        ),
        (
            "hierarchy",
            SketchSpec::time(WINDOW).epsilon(0.2).hierarchy(8).seed(3),
        ),
        (
            "sharded",
            SketchSpec::time(WINDOW).epsilon(0.2).sharded(3).seed(3),
        ),
        ("count", SketchSpec::count(WINDOW).epsilon(0.2).seed(3)),
        (
            "count-hierarchy",
            SketchSpec::count(WINDOW).epsilon(0.2).hierarchy(8).seed(3),
        ),
    ]
}

/// Deterministic keyed batches with globally non-decreasing timestamps
/// (which implies the per-key monotonicity ingest requires) over an 8-bit
/// item universe (hierarchies reject anything wider).
fn batches(seed: u64, count: usize, base_ts: u64) -> Vec<Vec<(u64, StreamEvent)>> {
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut ts = base_ts;
    (0..count)
        .map(|_| {
            (0..48)
                .map(|_| {
                    ts += rng.gen_range(0..2u64);
                    let key = rng.gen_range(0..5u64);
                    let item = rng.gen_range(0..200u64);
                    (key, StreamEvent::new(item, ts))
                })
                .collect()
        })
        .collect()
}

fn fresh_header() -> Vec<u8> {
    encode_segment_header(&WalSegmentHeader {
        shard: 0,
        segment: 1,
        base_record_seq: 0,
        base_checkpoint_seq: 0,
    })
}

fn window_for(spec: &SketchSpec, now: u64) -> WindowSpec {
    match spec.clock() {
        ecm_suite::ecm::Clock::Time => WindowSpec::time(now, WINDOW),
        ecm_suite::ecm::Clock::Count => WindowSpec::last(WINDOW),
    }
}

/// Compare two fleets over point / self-join / total-arrival queries on
/// every key, bit for bit.
fn assert_fleets_bit_identical(
    label: &str,
    a: &SketchStore<u64>,
    b: &SketchStore<u64>,
    w: WindowSpec,
) {
    assert_eq!(a.keys(), b.keys(), "{label}: resident key sets diverged");
    let mut queries: Vec<Query<'_>> = (0..200).step_by(13).map(Query::point).collect();
    queries.push(Query::self_join());
    queries.push(Query::total_arrivals());
    for key in a.keys() {
        for q in &queries {
            let ra = a.query(&key, q, w).unwrap();
            let rb = b.query(&key, q, w).unwrap();
            match (ra, rb) {
                (Ok(va), Ok(vb)) => {
                    let (va, vb) = (va.into_value(), vb.into_value());
                    assert_eq!(
                        va.value.to_bits(),
                        vb.value.to_bits(),
                        "{label}: key {key} diverged on {q:?}"
                    );
                }
                (Err(_), Err(_)) => {} // both reject it the same way
                (ra, rb) => panic!("{label}: answers diverged structurally: {ra:?} vs {rb:?}"),
            }
        }
    }
}

#[test]
fn snapshot_plus_replay_is_bit_identical_for_every_backend() {
    for (label, spec) in spec_matrix() {
        let bs = batches(42, 30, 1);
        let mut live = SketchStore::<u64>::new(spec.clone()).unwrap();
        let mut log = fresh_header();
        encode_checkpoint(1, 0, &mut log);
        let mut seq = 1u64;
        let mut snap: Option<Vec<u8>> = None;
        for (i, b) in bs.iter().enumerate() {
            if i == 18 {
                // Mid-stream checkpoint, in the crash-safe order the server
                // uses: marker into the log first, then the snapshot lands.
                seq += 1;
                encode_checkpoint(seq, live.checkpoint_seq() + 1, &mut log);
                snap = Some(live.write_snapshot().unwrap());
            }
            seq += 1;
            encode_ingest(seq, b, &mut log);
            live.ingest(b);
        }
        let now = bs.last().unwrap().last().unwrap().1.ts;

        let mut restored = SketchStore::<u64>::load_snapshot(&snap.unwrap())
            .unwrap_or_else(|e| panic!("{label}: load: {e}"));
        let report = replay(
            &mut restored,
            0,
            &[WalSegment {
                index: 1,
                bytes: &log,
            }],
        )
        .unwrap_or_else(|e| panic!("{label}: replay: {e}"));
        assert_eq!(report.applied_records, 12, "{label}: records after marker");
        assert!(!report.torn_tail, "{label}");

        assert_fleets_bit_identical(label, &live, &restored, window_for(&spec, now));

        // The strongest form of "never crashed": both fleets re-encode to
        // the very same checkpoint bytes...
        assert_eq!(
            live.write_snapshot().unwrap(),
            restored.write_snapshot().unwrap(),
            "{label}: re-encoded snapshots diverged"
        );
        // ...and keep ingesting identically (clock and arrival-id sequence
        // survive the crash).
        for b in batches(7, 3, now) {
            live.ingest(&b);
            restored.ingest(&b);
        }
        assert_eq!(
            live.write_incremental().unwrap(),
            restored.write_incremental().unwrap(),
            "{label}: post-recovery ingest diverged"
        );
    }
}

#[test]
fn replay_spans_rotated_segments_bit_identically() {
    // The same records split across three rotated segments must replay to
    // the same fleet a single segment produces.
    let spec = SketchSpec::time(WINDOW).epsilon(0.25).seed(11);
    let bs = batches(5, 9, 1);
    let mut single = fresh_header();
    encode_checkpoint(1, 0, &mut single);
    let mut segments: Vec<Vec<u8>> = vec![fresh_header()];
    encode_checkpoint(1, 0, segments.last_mut().unwrap());
    let mut seq = 1u64;
    for (i, b) in bs.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            segments.push(encode_segment_header(&WalSegmentHeader {
                shard: 0,
                segment: segments.len() as u64 + 1,
                base_record_seq: seq,
                base_checkpoint_seq: 0,
            }));
        }
        seq += 1;
        encode_ingest(seq, b, &mut single);
        encode_ingest(seq, b, segments.last_mut().unwrap());
    }

    let mut a = SketchStore::<u64>::new(spec.clone()).unwrap();
    replay(
        &mut a,
        0,
        &[WalSegment {
            index: 1,
            bytes: &single,
        }],
    )
    .unwrap();
    let mut b = SketchStore::<u64>::new(spec).unwrap();
    let segs: Vec<WalSegment<'_>> = segments
        .iter()
        .enumerate()
        .map(|(i, bytes)| WalSegment {
            index: i as u64 + 1,
            bytes,
        })
        .collect();
    let report = replay(&mut b, 0, &segs).unwrap();
    assert_eq!(report.segments, 3);
    assert_eq!(report.applied_records, 9);
    assert_eq!(a.write_snapshot().unwrap(), b.write_snapshot().unwrap());
}

#[test]
fn truncation_at_every_offset_is_a_clean_prefix() {
    let spec = SketchSpec::time(WINDOW).epsilon(0.25).seed(7);
    let bs = batches(9, 4, 1);
    let mut log = fresh_header();
    encode_checkpoint(1, 0, &mut log);
    for (i, b) in bs.iter().enumerate() {
        encode_ingest(2 + i as u64, b, &mut log);
    }
    let total: u64 = bs.iter().map(|b| b.len() as u64).sum();

    let mut applied_so_far = 0u64;
    for cut in 0..=log.len() {
        let mut store = SketchStore::<u64>::new(spec.clone()).unwrap();
        let r = replay(
            &mut store,
            0,
            &[WalSegment {
                index: 1,
                bytes: &log[..cut],
            }],
        )
        .unwrap_or_else(|e| panic!("cut at {cut} must be survivable: {e}"));
        assert!(r.applied_events <= total, "cut {cut}");
        assert!(r.last_segment_valid_len <= cut, "cut {cut}");
        // Longer prefixes never recover fewer events.
        assert!(r.applied_events >= applied_so_far, "cut {cut}");
        applied_so_far = r.applied_events;

        // Truncating the file to the reported valid prefix (what the
        // server does before appending again) yields a clean log with the
        // same recovered events.
        let mut store2 = SketchStore::<u64>::new(spec.clone()).unwrap();
        let r2 = replay(
            &mut store2,
            0,
            &[WalSegment {
                index: 1,
                bytes: &log[..r.last_segment_valid_len],
            }],
        )
        .unwrap();
        assert_eq!(r2.applied_events, r.applied_events, "cut {cut}");
        // An empty valid prefix is a header-torn file — the owner replaces
        // it; any other prefix must scan clean.
        assert!(
            !r2.torn_tail || r.last_segment_valid_len == 0,
            "cut {cut}: truncation to the valid prefix must be clean"
        );
    }
    assert_eq!(applied_so_far, total, "the full log recovers everything");
}

#[test]
fn bit_flips_at_every_offset_fail_typed_or_drop_the_tail() {
    let spec = SketchSpec::time(WINDOW).epsilon(0.25).seed(7);
    let bs = batches(13, 3, 1);
    let mut log = fresh_header();
    encode_checkpoint(1, 0, &mut log);
    for (i, b) in bs.iter().enumerate() {
        encode_ingest(2 + i as u64, b, &mut log);
    }
    let total: u64 = bs.iter().map(|b| b.len() as u64).sum();

    for at in 0..log.len() {
        for bit in [0u32, 3, 7] {
            let mut bad = log.clone();
            bad[at] ^= 1 << bit;
            let mut store = SketchStore::<u64>::new(spec.clone()).unwrap();
            // A typed rejection is the expected outcome; when the flip
            // lands in a length field it can only shorten the decodable
            // log (checksums cover everything else), so whatever replays
            // is a clean prefix, never corrupted state.
            if let Ok(r) = replay(
                &mut store,
                0,
                &[WalSegment {
                    index: 1,
                    bytes: &bad,
                }],
            ) {
                assert!(r.applied_events <= total, "flip at {at} bit {bit}");
            }
        }
    }
}
